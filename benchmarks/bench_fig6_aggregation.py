"""Benchmark: regenerate Fig. 6 (model-aggregation optimization ablation).

Paper artefact: Fig. 6 — Helios vs. "S.T. Only" (soft-training without the
heterogeneity-aware aggregation of Eq. 10) while the number of stragglers
grows from 1 to 4, on LeNet/MNIST.
"""

from repro.experiments import format_fig6, run_fig6

from _bench_utils import write_result


def test_fig6_aggregation_optimization(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_fig6(datasets=("mnist",), straggler_counts=(1, 2, 3, 4),
                         num_capable=2, scale=bench_scale),
        rounds=1, iterations=1)
    text = format_fig6(result)
    write_result(results_dir, "fig6_aggregation_opt", text)
    print("\n" + text)

    rows = result.rows()
    assert len(rows) == 4
    # The aggregation optimization must help on average across straggler
    # counts (the paper reports gains up to 17 points at 4 stragglers).
    mean_improvement = sum(row["improvement_pp"] for row in rows) / len(rows)
    assert mean_improvement > -1.0
    # With more stragglers the ablation gap should not shrink to nothing:
    # the 3-4 straggler settings are where partial models dominate.
    heavy = [row for row in rows if row["stragglers"] >= 3]
    assert all(row["helios_acc"] > 0.2 for row in heavy)
