"""Benchmark: check the abstract's headline claims.

Paper artefact: the abstract / Sec. VII-B summary numbers — "up to 2.5x
training acceleration and maximum 4.64% convergence accuracy improvement".
Derived here from the LeNet/MNIST Fig. 5 panels (2+2 and 3+3 fleets).
"""

from repro.experiments import format_headline, run_headline

from _bench_utils import write_result


def test_headline_speedup_and_accuracy(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        lambda: run_headline(panels=(("mnist", 2, 2), ("mnist", 3, 3)),
                             scale=bench_scale),
        rounds=1, iterations=1)
    text = format_headline(result)
    write_result(results_dir, "headline_claims", text)
    print("\n" + text)

    # Shape checks: Helios accelerates the collaboration (the paper reports
    # up to 2.5x; the simulated fleet should land in the >1.2x regime) and
    # does not give up meaningful accuracy against the best baseline.
    assert result.max_speedup > 1.2
    assert result.max_accuracy_gain_pp > -3.0
    assert len(result.per_panel) == 2
