"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
experiment scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (``smoke`` < ``fast`` < ``full``); the default ``fast`` keeps the
whole harness at laptop scale while producing meaningful curves.  Each
benchmark also writes its formatted output under ``benchmarks/results/`` so
the numbers that went into EXPERIMENTS.md can be re-inspected.
"""

from __future__ import annotations

import os
import sys

import pytest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_SRC, _HERE):
    if path not in sys.path:
        sys.path.insert(0, path)

RESULTS_DIR = os.path.join(_HERE, "results")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Experiment scale for benchmark runs (env: REPRO_BENCH_SCALE)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "fast")
    if scale not in ("smoke", "fast", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke/fast/full, "
                         f"got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where formatted benchmark outputs are written."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
