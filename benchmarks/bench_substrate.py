"""Micro-benchmarks of the substrates themselves.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths every experiment exercises: a CNN training step, neuron-granular
partial aggregation, the soft-training selection, and the analytical cost
model.  They make regressions in the substrate visible independently of the
figure-level experiments.
"""

import numpy as np

from repro.core import SoftTrainingSelector
from repro.fl import ClientUpdate
from repro.fl.aggregation import ModelStructure, aggregate_partial
from repro.hardware import JETSON_NANO_CPU, TrainingCostModel
from repro.nn import SGD, ModelMask, SoftmaxCrossEntropy
from repro.nn.models import build_lenet


def _lenet():
    return build_lenet(width_multiplier=0.4, rng=np.random.default_rng(0))


def test_bench_lenet_train_step(benchmark):
    model = _lenet()
    loss_fn = SoftmaxCrossEntropy()
    optimizer = SGD(model.parameters(), lr=0.05)
    rng = np.random.default_rng(1)
    images = rng.normal(size=(32, 1, 28, 28))
    labels = rng.integers(0, 10, 32)
    benchmark(lambda: model.train_step(images, labels, loss_fn, optimizer))


def test_bench_partial_aggregation(benchmark):
    model = _lenet()
    structure = ModelStructure.from_model(model)
    global_weights = model.get_weights()
    rng = np.random.default_rng(0)
    updates = []
    for client_id in range(6):
        mask = None
        if client_id >= 3:
            mask = ModelMask.random(
                model, {layer.name: 0.3 for layer in model.neuron_layers()},
                rng)
        weights = {name: value + rng.normal(0, 0.01, value.shape)
                   for name, value in global_weights.items()}
        updates.append(ClientUpdate(client_id=client_id,
                                    client_name=f"c{client_id}",
                                    weights=weights, num_samples=100,
                                    train_loss=0.0, mask=mask))
    benchmark(lambda: aggregate_partial(global_weights, updates, structure))


def test_bench_soft_training_selection(benchmark):
    model = _lenet()
    fractions = {layer.name: 0.25 for layer in model.neuron_layers()}
    selector = SoftTrainingSelector(model, fractions, top_share=0.1,
                                    rng=np.random.default_rng(0))
    contributions = {layer.name: np.random.default_rng(1).random(
        layer.num_neurons) for layer in model.neuron_layers()}
    benchmark(lambda: selector.select(contributions))


def test_bench_cost_model_estimate(benchmark):
    model = _lenet()
    cost_model = TrainingCostModel(model, (1, 28, 28),
                                   samples_per_cycle=10_000)
    fractions = {layer.name: 0.4 for layer in model.neuron_layers()}
    benchmark(lambda: cost_model.estimate(JETSON_NANO_CPU, fractions))
