"""Micro-benchmarks of the substrates themselves.

These are conventional pytest-benchmark timings (multiple rounds) of the
hot paths every experiment exercises: a CNN training step, neuron-granular
partial aggregation, the soft-training selection, the analytical cost
model, and the execution backends running one multi-client cycle.  They
make regressions in the substrate visible independently of the
figure-level experiments.

Besides the pytest-benchmark timings, ``test_substrate_report_json``
writes a machine-readable ``benchmarks/results/BENCH_substrate.json``
with per-backend cycle times and dispatch payload bytes, and asserts the
persistent backend's core scaling property: warm dispatch is O(weights),
independent of dataset size, and strictly smaller than the process
backend's whole-client pickling.  Its ``virtual_fleets`` section sweeps
logical fleet sizes through ``run_virtual_cycle`` on a 2-shard fleet and
asserts the hierarchical-aggregation claim: upstream bytes independent
of the fleet size and >=10x below flat at 10^3 clients/shard.  The
``transport`` section records median ping round-trips against a live
shard server with TCP_NODELAY on (the default) and off, so the Nagle
before/after is visible in the report.  The
``arena`` and ``fusion`` sections (also written standalone by
``test_arena_fusion_report_json`` as ``BENCH_arena_fusion.json`` for the
CI smoke artifact) assert the shared-memory dispatch claim (cold pipe
bytes >=10x smaller with descriptor frames) and the stacked-fusion claim
(>=2x clients/sec over the per-client loop, bit-identically).
"""

import json
import os
import time

import numpy as np

from repro.core import SoftTrainingSelector
from repro.data.synthetic import (SyntheticImageSpec, VirtualClientDatasets,
                                  make_classification_images)
from repro.fl import (ClientConfig, ClientUpdate, FLClient, FLServer,
                      FederatedSimulation, VirtualFleet, make_backend)
from repro.fl.aggregation import ModelStructure, aggregate_partial
from repro.hardware import DeviceProfile, JETSON_NANO_CPU, TrainingCostModel
from repro.nn import SGD, ModelMask, SoftmaxCrossEntropy
from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.models import build_lenet


def _lenet():
    return build_lenet(width_multiplier=0.4, rng=np.random.default_rng(0))


def test_bench_lenet_train_step(benchmark):
    model = _lenet()
    loss_fn = SoftmaxCrossEntropy()
    optimizer = SGD(model.parameters(), lr=0.05)
    rng = np.random.default_rng(1)
    images = rng.normal(size=(32, 1, 28, 28))
    labels = rng.integers(0, 10, 32)
    benchmark(lambda: model.train_step(images, labels, loss_fn, optimizer))


def test_bench_partial_aggregation(benchmark):
    model = _lenet()
    structure = ModelStructure.from_model(model)
    global_weights = model.get_weights()
    rng = np.random.default_rng(0)
    updates = []
    for client_id in range(6):
        mask = None
        if client_id >= 3:
            mask = ModelMask.random(
                model, {layer.name: 0.3 for layer in model.neuron_layers()},
                rng)
        weights = {name: value + rng.normal(0, 0.01, value.shape)
                   for name, value in global_weights.items()}
        updates.append(ClientUpdate(client_id=client_id,
                                    client_name=f"c{client_id}",
                                    weights=weights, num_samples=100,
                                    train_loss=0.0, mask=mask))
    benchmark(lambda: aggregate_partial(global_weights, updates, structure))


def _reference_aggregate_partial(global_weights, updates, structure,
                                 client_weights=None):
    """The pre-exact-summation per-update loop, kept as the numerical
    reference for :func:`test_partial_aggregation_vectorization_guard`.

    Since the hierarchical-aggregation work, ``aggregate_partial`` sums
    on the error-free pre-rounding grids (order/partition independent);
    this loop uses plain float sums, so it agrees only to ~1e-12, not
    bit for bit."""
    from repro.fl.aggregation import (_neuron_weight_vector,
                                      normalize_weights,
                                      sample_count_weights)

    if client_weights is None:
        weights = sample_count_weights(updates)
    else:
        weights = normalize_weights(client_weights)
    aggregated = {}
    for name, global_value in global_weights.items():
        info = structure[name] if name in structure else None
        global_value = np.asarray(global_value)
        if info is None or info.layer_name is None or info.neuron_axis is None:
            stacked = np.stack([update.weights[name] for update in updates])
            aggregated[name] = np.tensordot(weights, stacked, axes=1)
            continue
        axis = info.neuron_axis
        num_neurons = global_value.shape[axis]
        numerator = np.zeros_like(global_value, dtype=np.float64)
        denominator = np.zeros(num_neurons, dtype=np.float64)
        for weight, update in zip(weights, updates):
            layer_mask = None
            if update.mask is not None and info.layer_name in update.mask:
                layer_mask = update.mask[info.layer_name]
            neuron_weights = _neuron_weight_vector(layer_mask, num_neurons,
                                                   float(weight))
            denominator += neuron_weights
            broadcast_shape = [1] * global_value.ndim
            broadcast_shape[axis] = num_neurons
            numerator += (neuron_weights.reshape(broadcast_shape)
                          * np.asarray(update.weights[name]))
        covered = denominator > 0
        safe_denominator = np.where(covered, denominator, 1.0)
        broadcast_shape = [1] * global_value.ndim
        broadcast_shape[axis] = num_neurons
        blended = numerator / safe_denominator.reshape(broadcast_shape)
        keep_mask = (~covered).reshape(broadcast_shape)
        aggregated[name] = np.where(keep_mask, global_value, blended)
    return aggregated


def _many_masked_updates(num_updates=32):
    """A wide masked-update batch that makes the per-update loop hurt."""
    model = _lenet()
    structure = ModelStructure.from_model(model)
    global_weights = model.get_weights()
    rng = np.random.default_rng(7)
    updates = []
    for client_id in range(num_updates):
        mask = ModelMask.random(
            model, {layer.name: 0.5 for layer in model.neuron_layers()},
            rng)
        weights = {name: value + rng.normal(0, 0.01, value.shape)
                   for name, value in global_weights.items()}
        updates.append(ClientUpdate(client_id=client_id,
                                    client_name=f"c{client_id}",
                                    weights=weights, num_samples=100,
                                    train_loss=0.0, mask=mask))
    return global_weights, updates, structure


def _per_update_exact_aggregate_partial(global_weights, updates, structure):
    """Per-update Python loop over the *same* exact-summation algorithm:
    fold every update alone and merge the partials.  Level sums add
    exactly, so this is bit-identical to the chunk-vectorized
    ``aggregate_partial`` — it is the one-client-per-shard degenerate
    topology, and the timing baseline the vectorized fold must beat."""
    from repro.fl.aggregation import (finalize_partials, fold_updates,
                                      sample_count_weights)

    weights = sample_count_weights(updates)
    partials = [fold_updates([update], [weight], structure, partial=True)
                for update, weight in zip(updates, weights)]
    return finalize_partials(global_weights, partials, structure=structure)


def test_partial_aggregation_vectorization_guard():
    """The chunk-vectorized aggregate_partial must match the per-update
    exact fold bit for bit (partition invariance), agree with the plain
    float-sum loop numerically, and must not be slower than per-update
    Python looping of the same algorithm."""
    global_weights, updates, structure = _many_masked_updates()
    plain = _reference_aggregate_partial(global_weights, updates,
                                         structure)
    looped = _per_update_exact_aggregate_partial(global_weights, updates,
                                                 structure)
    actual = aggregate_partial(global_weights, updates, structure)
    assert plain.keys() == actual.keys()
    for name in plain:
        np.testing.assert_allclose(actual[name], plain[name],
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_array_equal(actual[name], looped[name],
                                      err_msg=name)
    # Timing guard: best-of-3 each, generous 1.5x margin so the
    # assertion stays robust on loaded CI machines while still catching
    # a regression back to per-update Python looping.
    reference_s = min(_timeit(lambda: _per_update_exact_aggregate_partial(
        global_weights, updates, structure)) for _ in range(3))
    vectorized_s = min(_timeit(lambda: aggregate_partial(
        global_weights, updates, structure)) for _ in range(3))
    print(f"\naggregate_partial ({len(updates)} masked updates): "
          f"per-update exact loop {reference_s * 1000:.1f} ms, vectorized "
          f"{vectorized_s * 1000:.1f} ms "
          f"({reference_s / vectorized_s:.2f}x)")
    assert vectorized_s <= reference_s * 1.5


def _timeit(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_bench_soft_training_selection(benchmark):
    model = _lenet()
    fractions = {layer.name: 0.25 for layer in model.neuron_layers()}
    selector = SoftTrainingSelector(model, fractions, top_share=0.1,
                                    rng=np.random.default_rng(0))
    contributions = {layer.name: np.random.default_rng(1).random(
        layer.num_neurons) for layer in model.neuron_layers()}
    benchmark(lambda: selector.select(contributions))


def test_bench_cost_model_estimate(benchmark):
    model = _lenet()
    cost_model = TrainingCostModel(model, (1, 28, 28),
                                   samples_per_cycle=10_000)
    fractions = {layer.name: 0.4 for layer in model.neuron_layers()}
    benchmark(lambda: cost_model.estimate(JETSON_NANO_CPU, fractions))


# --------------------------------------------------------------------- #
# execution backends: one multi-client cycle, serial vs. concurrent
# --------------------------------------------------------------------- #

#: Emulated per-client device round-trip latency of the backend benches.
_CLIENT_LATENCY_S = 0.03
_NUM_LATENCY_CLIENTS = 6

_BENCH_SPEC = SyntheticImageSpec(
    name="bench", image_shape=(1, 8, 8), num_classes=4, separation=1.2,
    noise_std=0.5, max_shift=1, label_noise=0.0, prototypes_per_class=1,
    smoothness=2)


def _bench_model():
    rng = np.random.default_rng(3)
    return Sequential([
        Flatten(name="flatten"),
        Dense(64, 16, rng=rng, name="fc1"),
        ReLU(name="relu1"),
        Dense(16, 4, rng=rng, name="output"),
    ], name="bench-mlp")


class _LatencyBoundClient(FLClient):
    """A client whose local training hides a device round-trip latency.

    The NumPy trainings of this repo are CPU-bound, so on a single-core
    runner the concurrency win of the pooled backends comes from
    overlapping *latency* (exactly what real edge-device round-trips look
    like); this client makes that latency explicit and measurable.
    """

    def local_train(self, *args, **kwargs):
        time.sleep(_CLIENT_LATENCY_S)
        return super().local_train(*args, **kwargs)


def _latency_fleet(num_clients=_NUM_LATENCY_CLIENTS) -> FederatedSimulation:
    samples = 20
    pool = make_classification_images(samples * num_clients + 40,
                                      _BENCH_SPEC, np.random.default_rng(0))
    device = DeviceProfile(name="bench-node", compute_gflops=50.0,
                           memory_bandwidth_gbps=10.0,
                           network_bandwidth_mbps=100.0,
                           memory_capacity_mb=1024.0)
    config = ClientConfig(batch_size=10, local_epochs=1, learning_rate=0.1)
    clients = [
        _LatencyBoundClient(
            client_id=index,
            dataset=pool.subset(np.arange(index * samples,
                                          (index + 1) * samples)),
            device=device, model_factory=_bench_model, config=config)
        for index in range(num_clients)
    ]
    server = FLServer(_bench_model,
                      test_dataset=pool.subset(
                          np.arange(samples * num_clients, len(pool))))
    return FederatedSimulation(clients, server, input_shape=(1, 8, 8))


def _bench_backend_cycle(benchmark, backend_name):
    sim = _latency_fleet()
    sim.set_backend(make_backend(backend_name,
                                 max_workers=_NUM_LATENCY_CLIENTS)
                    if backend_name != "serial" else "serial")
    indices = sim.client_indices()
    try:
        # Warm the pool (fork/thread startup) outside the timed region.
        sim.train_clients(indices)
        benchmark(lambda: sim.train_clients(indices))
    finally:
        sim.backend.close()


def test_bench_cycle_serial_backend(benchmark):
    _bench_backend_cycle(benchmark, "serial")


def test_bench_cycle_thread_backend(benchmark):
    _bench_backend_cycle(benchmark, "thread")


def test_bench_cycle_process_backend(benchmark):
    _bench_backend_cycle(benchmark, "process")


def test_bench_cycle_persistent_backend(benchmark):
    _bench_backend_cycle(benchmark, "persistent")


def test_bench_cycle_sharded_backend(benchmark):
    _bench_backend_cycle(benchmark, "sharded")


def _timed_cycle(backend_name, **backend_kwargs):
    """Seconds of one warm full-fleet cycle on the latency-bound fleet."""
    sim = _latency_fleet()
    if backend_name != "serial":
        sim.set_backend(make_backend(
            backend_name, max_workers=_NUM_LATENCY_CLIENTS,
            **backend_kwargs))
    indices = sim.client_indices()
    try:
        sim.train_clients(indices)  # pool warm-up outside the timing
        start = time.perf_counter()
        updates = sim.train_clients(indices)
        elapsed = time.perf_counter() - start
    finally:
        sim.backend.close()
    assert len(updates) == len(indices)
    return elapsed


def test_parallel_backends_beat_serial_cycle():
    """Measured speedup: pooled backends overlap a latency-bound cycle."""
    serial_s = _timed_cycle("serial")
    thread_s = _timed_cycle("thread")
    process_s = _timed_cycle("process")
    persistent_s = _timed_cycle("persistent")
    sharded_s = _timed_cycle("sharded")
    print(f"\nmulti-client cycle ({_NUM_LATENCY_CLIENTS} clients, "
          f"{_CLIENT_LATENCY_S * 1000:.0f} ms latency each): "
          f"serial {serial_s * 1000:.1f} ms, "
          f"thread {thread_s * 1000:.1f} ms ({serial_s / thread_s:.2f}x), "
          f"process {process_s * 1000:.1f} ms ({serial_s / process_s:.2f}x), "
          f"persistent {persistent_s * 1000:.1f} ms "
          f"({serial_s / persistent_s:.2f}x), "
          f"sharded {sharded_s * 1000:.1f} ms "
          f"({serial_s / sharded_s:.2f}x)")
    # The serial cycle pays every client's latency back to back; the
    # pooled backends overlap them.  Require a conservative 1.5x so the
    # assertion stays robust on loaded CI machines.
    assert serial_s > 1.5 * thread_s
    assert serial_s > 1.5 * process_s
    assert serial_s > 1.5 * persistent_s
    assert serial_s > 1.5 * sharded_s


# --------------------------------------------------------------------- #
# machine-readable substrate report (BENCH_substrate.json)
# --------------------------------------------------------------------- #

def _payload_fleet(samples_per_client):
    """A plain (no artificial latency) fleet for dispatch-size accounting."""
    num_clients = _NUM_LATENCY_CLIENTS
    pool = make_classification_images(
        samples_per_client * num_clients + 40, _BENCH_SPEC,
        np.random.default_rng(0))
    device = DeviceProfile(name="bench-node", compute_gflops=50.0,
                           memory_bandwidth_gbps=10.0,
                           network_bandwidth_mbps=100.0,
                           memory_capacity_mb=1024.0)
    config = ClientConfig(batch_size=10, local_epochs=1, learning_rate=0.1)
    clients = [
        FLClient(client_id=index,
                 dataset=pool.subset(np.arange(
                     index * samples_per_client,
                     (index + 1) * samples_per_client)),
                 device=device, model_factory=_bench_model, config=config)
        for index in range(num_clients)
    ]
    server = FLServer(_bench_model,
                      test_dataset=pool.subset(
                          np.arange(samples_per_client * num_clients,
                                    len(pool))))
    return FederatedSimulation(clients, server, input_shape=(1, 8, 8))


#: Wire-codec configurations the dispatch accounting sweeps.  ``full``
#: is the pickle-full-snapshot baseline (delta off, raw segments) —
#: byte-wise what the pre-codec wire format shipped per cycle.
_CODEC_CONFIGS = {
    "full": {"delta_shipping": False, "wire_compression": "none"},
    "delta": {"delta_shipping": True, "wire_compression": "none"},
    "delta_zlib": {"delta_shipping": True, "wire_compression": "zlib"},
}


def _dispatch_payloads(samples_per_client, codec_name,
                       include_sharded=True):
    """Warm per-cycle dispatch bytes of the distributed-capable backends.

    Measures the ``persistent`` pipe backend under one codec
    configuration, optionally a 2-shard ``sharded`` socket fleet (the
    wire bytes a multi-host deployment would put on the network each
    cycle — byte-identical to the pipe payload by design) and the
    whole-client-pickling ``process`` baseline.
    """
    from repro.fl import ProcessPoolBackend
    from repro.fl.executor import TrainingJob

    config = _CODEC_CONFIGS[codec_name]
    sim = _payload_fleet(samples_per_client)
    sim.set_backend("persistent", max_workers=2, **config)
    weights = sim.server.get_global_weights()
    jobs = [TrainingJob(index=index, weights=weights)
            for index in sim.client_indices()]
    try:
        cold = sim.backend.dispatch_payload_bytes(sim.clients, jobs)
        sim.run_jobs(jobs)  # ships the specs; replicas become resident
        warm = sim.backend.dispatch_payload_bytes(sim.clients, jobs)
        process = ProcessPoolBackend().dispatch_payload_bytes(sim.clients,
                                                              jobs)
    finally:
        sim.close()
    payloads = {"persistent_cold": cold, "persistent_warm": warm,
                "process": process}
    if not include_sharded:
        return payloads

    sharded_sim = _payload_fleet(samples_per_client)
    sharded_sim.set_backend("sharded", max_workers=2, **config)
    sharded_weights = sharded_sim.server.get_global_weights()
    sharded_jobs = [TrainingJob(index=index, weights=sharded_weights)
                    for index in sharded_sim.client_indices()]
    try:
        sharded_cold = sharded_sim.backend.dispatch_payload_bytes(
            sharded_sim.clients, sharded_jobs)
        sharded_sim.run_jobs(sharded_jobs)
        sharded_warm = sharded_sim.backend.dispatch_payload_bytes(
            sharded_sim.clients, sharded_jobs)
    finally:
        sharded_sim.close()
    payloads.update({"sharded_cold": sharded_cold,
                     "sharded_warm": sharded_warm})
    return payloads


def _evolving_cycle_bytes(codec_name):
    """Dispatch bytes of a warm cycle whose global weights *moved*.

    The identical-resend path (``skip`` deltas) is the best case; this
    measures the realistic one — every cycle the aggregated global
    snapshot differs from the shard's base, so changed parameters ship
    as XOR deltas (optionally compressed).
    """
    from repro.fl.aggregation import aggregate_full
    from repro.fl.executor import TrainingJob

    sim = _payload_fleet(samples_per_client=20)
    sim.set_backend("persistent", max_workers=2,
                    **_CODEC_CONFIGS[codec_name])
    weights = sim.server.get_global_weights()
    jobs = [TrainingJob(index=index, weights=weights)
            for index in sim.client_indices()]
    try:
        updates = sim.run_jobs(jobs)  # cycle 1: specs + full snapshot
        evolved = aggregate_full(updates)
        next_jobs = [TrainingJob(index=index, weights=evolved)
                     for index in sim.client_indices()]
        return sim.backend.dispatch_payload_bytes(sim.clients, next_jobs)
    finally:
        sim.close()


# --------------------------------------------------------------------- #
# shared-memory weight arenas: cold-dispatch bytes on the pipe
# --------------------------------------------------------------------- #

def _arena_sweep_report(samples_per_client=200):
    """Measure and assert the weight-arena claim: cold dispatch on the
    persistent backend's pipes shrinks >=10x when large segments travel
    as shared-memory descriptors instead of inline bytes.

    Uses the ``full`` codec configuration (delta off) on the ``large``
    profile so the cold frames carry the whole weight snapshot — the
    worst case the arena exists for.  Also records the publish cost
    (one memcpy into ``/dev/shm`` per generation) from a real cycle.
    """
    from repro.fl.executor import TrainingJob

    def cold_dispatch(**kwargs):
        sim = _payload_fleet(samples_per_client)
        sim.set_backend("persistent", max_workers=2,
                        **_CODEC_CONFIGS["full"], **kwargs)
        weights = sim.server.get_global_weights()
        jobs = [TrainingJob(index=index, weights=weights)
                for index in sim.client_indices()]
        try:
            cold = sim.backend.dispatch_payload_bytes(sim.clients, jobs)
            sim.run_jobs(jobs)  # a real cold cycle -> publish stats
            arena = sim.backend._arena
            publish = (None if arena is None else
                       {"seconds": arena.last_publish_seconds,
                        "bytes": arena.last_publish_bytes})
        finally:
            sim.close()
        return cold, publish

    plain_cold, _ = cold_dispatch()
    arena_cold, publish = cold_dispatch(weight_arena="shm")
    reduction = plain_cold / arena_cold
    print(f"\nweight arena (large profile, full codec): cold dispatch "
          f"{plain_cold}B inline -> {arena_cold}B descriptors "
          f"({reduction:.1f}x), publish {publish['bytes']}B in "
          f"{publish['seconds'] * 1000:.2f} ms")
    # Descriptor frames still count: the probe reports real bytes …
    assert arena_cold > 0
    # … and the acceptance claim: >=10x smaller than inline dispatch.
    assert plain_cold >= 10 * arena_cold
    return {
        "samples_per_client": samples_per_client,
        "codec": "full",
        "cold_dispatch_bytes": {"inline": plain_cold,
                                "arena": arena_cold},
        "cold_reduction": reduction,
        "publish": publish,
    }


# --------------------------------------------------------------------- #
# stacked fusion: clients/sec of the fused training engine
# --------------------------------------------------------------------- #

_FUSION_CLIENTS = 64
_FUSION_BATCH_SIZE = 5
_FUSION_SAMPLES = 40


def _fusion_fleet():
    """A topology-homogeneous plain-FLClient fleet (fusion-eligible)."""
    pool = make_classification_images(
        _FUSION_SAMPLES * _FUSION_CLIENTS, _BENCH_SPEC,
        np.random.default_rng(0))
    device = DeviceProfile(name="bench-node", compute_gflops=50.0,
                           memory_bandwidth_gbps=10.0,
                           network_bandwidth_mbps=100.0,
                           memory_capacity_mb=1024.0)
    config = ClientConfig(batch_size=_FUSION_BATCH_SIZE, local_epochs=1,
                          learning_rate=0.1)
    return [FLClient(client_id=index,
                     dataset=pool.subset(np.arange(
                         index * _FUSION_SAMPLES,
                         (index + 1) * _FUSION_SAMPLES)),
                     device=device, model_factory=_bench_model,
                     config=config, seed=index)
            for index in range(_FUSION_CLIENTS)]


def _fusion_sweep_report():
    """Measure and assert the stacked-fusion claim: one batched-GEMM
    pass over a topology-homogeneous cluster trains >=2x more
    clients/sec than the per-client serial loop, bit-identically.

    Times the two engines in-process (no backend in between, like the
    aggregation vectorization guard) so the comparison isolates the
    training math from pool scheduling.  Small batches make the
    per-client Python/BLAS call overhead visible — exactly the regime
    stacking exists for.
    """
    from types import SimpleNamespace

    from repro.fl.fusion import cluster_signature, train_cluster

    weights = _bench_model().get_weights()
    serial_fleet = _fusion_fleet()
    fused_fleet = _fusion_fleet()
    members = [(client, SimpleNamespace(weights_ref=0, mask=None,
                                        local_epochs=None, base_cycle=0))
               for client in fused_fleet]
    signatures = {cluster_signature(client, SimpleNamespace(jobs=[job]),
                                    [weights])
                  for client, job in members}
    assert len(signatures) == 1 and None not in signatures

    def serial_cycle():
        return [client.local_train(weights) for client in serial_fleet]

    def fused_cycle():
        return train_cluster(members, [weights])

    # One warm-up cycle each, then bit-identity on the *same* cycle
    # index (both fleets have now trained twice from identical seeds).
    serial_cycle(), fused_cycle()
    for expected, actual in zip(serial_cycle(), fused_cycle()):
        assert expected.train_loss == actual.train_loss
        for key in expected.weights:
            np.testing.assert_array_equal(expected.weights[key],
                                          actual.weights[key])
    # Interleaved best-of-3 so CPU frequency/cache drift between the
    # two measurements hits both engines equally.
    serial_times, fused_times = [], []
    for _ in range(3):
        serial_times.append(_timeit(serial_cycle))
        fused_times.append(_timeit(fused_cycle))
    serial_s, fused_s = min(serial_times), min(fused_times)
    serial_rate = _FUSION_CLIENTS / serial_s
    fused_rate = _FUSION_CLIENTS / fused_s
    print(f"\nstacked fusion ({_FUSION_CLIENTS} homogeneous clients, "
          f"batch {_FUSION_BATCH_SIZE}): serial {serial_rate:.0f} "
          f"clients/s, fused {fused_rate:.0f} clients/s "
          f"({fused_rate / serial_rate:.2f}x)")
    # The acceptance claim: >=2x clients/sec from one stacked pass.
    assert fused_rate >= 2 * serial_rate
    return {
        "num_clients": _FUSION_CLIENTS,
        "batch_size": _FUSION_BATCH_SIZE,
        "samples_per_client": _FUSION_SAMPLES,
        "clients_per_second": {"serial": serial_rate,
                               "stacked": fused_rate},
        "speedup": fused_rate / serial_rate,
    }


def test_arena_fusion_report_json(results_dir):
    """Write BENCH_arena_fusion.json — the CI smoke artifact with the
    arena cold-dispatch sweep and the fused clients/sec measurement."""
    report = {"arena": _arena_sweep_report(),
              "fusion": _fusion_sweep_report()}
    path = os.path.join(results_dir, "BENCH_arena_fusion.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"written {path}")


# --------------------------------------------------------------------- #
# virtual fleets: upstream bytes vs. logical fleet size
# --------------------------------------------------------------------- #

#: Virtual-client counts per aggregation mode of the scale sweep.  The
#: flat topology ships every update upstream, so its largest point stays
#: at 10^3 clients/shard (= 2000 on the 2-shard fleet — the acceptance
#: point for the >=10x reduction claim); hierarchical folds in-shard and
#: is measured one decade further to demonstrate byte-flatness.  Beyond
#: that the bytes are provably constant, so the report carries a
#: projection instead of an hour-long 10^6 measurement.
_VIRTUAL_SWEEP = {
    "flat": (200, 2000),
    "hierarchical": (2000, 10_000),
}
_PROJECTED_FLEET = 1_000_000


def _virtual_fleet(num_clients):
    device = DeviceProfile(name="bench-node", compute_gflops=50.0,
                           memory_bandwidth_gbps=10.0,
                           network_bandwidth_mbps=100.0,
                           memory_capacity_mb=1024.0)
    return VirtualFleet(
        num_clients=num_clients,
        dataset_factory=VirtualClientDatasets(_BENCH_SPEC,
                                              samples_per_client=8, seed=5),
        device=device, model_factory=_bench_model,
        config=ClientConfig(batch_size=8, local_epochs=1, learning_rate=0.1),
        seed=9)


def _virtual_cycle_stats(aggregation, num_clients):
    """Upstream bytes + wall-clock of one warm virtual cycle (2 shards)."""
    sim = _payload_fleet(samples_per_client=8)
    sim.set_backend("sharded", max_workers=2, aggregation=aggregation)
    try:
        sim.run_virtual_cycle(_virtual_fleet(4))  # spawn shards outside
        start = time.perf_counter()
        loss, count = sim.run_virtual_cycle(_virtual_fleet(num_clients))
        elapsed = time.perf_counter() - start
        upstream = sim.backend.last_reply_bytes
    finally:
        sim.close()
    assert count == num_clients and np.isfinite(loss)
    return {"upstream_bytes": upstream, "cycle_seconds": elapsed}


def _virtual_sweep_report():
    """Measure and assert the hierarchical-aggregation claim:
    shard->parent bytes are independent of the logical fleet size,
    >=10x below flat at 10^3 clients/shard, while flat grows linearly."""
    sweep = {mode: {str(n): _virtual_cycle_stats(mode, n) for n in sizes}
             for mode, sizes in _VIRTUAL_SWEEP.items()}
    flat_small, flat_large = (sweep["flat"][str(n)]["upstream_bytes"]
                              for n in _VIRTUAL_SWEEP["flat"])
    hier_small, hier_large = (
        sweep["hierarchical"][str(n)]["upstream_bytes"]
        for n in _VIRTUAL_SWEEP["hierarchical"])
    print(f"\nvirtual fleets (2 shards): flat upstream {flat_small}B@200 "
          f"-> {flat_large}B@2000, hierarchical {hier_small}B@2000 = "
          f"{hier_large}B@10000 "
          f"({flat_large / hier_small:.1f}x reduction at 10^3/shard)")
    # Hierarchical upstream bytes are exactly fleet-size independent …
    assert hier_small == hier_large
    # … flat grows ~linearly with the fleet (10x clients, >5x bytes) …
    assert flat_large > 5 * flat_small
    # … and at the acceptance point (10^3 clients/shard) hierarchical
    # ships at least 10x fewer bytes upstream than flat.
    assert flat_large >= 10 * hier_small
    return {
        "num_shards": 2,
        "samples_per_client": 8,
        "sweep": sweep,
        "upstream_reduction_at_1e3_per_shard": flat_large / hier_small,
        "hierarchical_bytes_independent_of_fleet_size": True,
        "projected_hierarchical_upstream_bytes": {
            str(_PROJECTED_FLEET): hier_large,
        },
    }


def _transport_ping_report(num_pings=50, num_nagle_pings=25):
    """Median ping round-trip against a live :class:`ShardServer`, with
    TCP_NODELAY on (the transport's default since concurrent serving
    landed) and explicitly off for the before/after comparison.

    Recorded, not asserted: small-frame RTT is scheduler noise on a busy
    CI box, and pings are answered inline by the server's event loop
    either way — the record is here so Nagle regressions are visible in
    the report, not to gate merges on microseconds.
    """
    import threading

    from repro.fl.transport import ShardServer, connect_to_shard

    server = ShardServer()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def median_rtt_s(channel, count):
        rtts = []
        for _ in range(count):
            start = time.perf_counter()
            channel.send(("ping", None))
            kind, _ = channel.recv()
            rtts.append(time.perf_counter() - start)
            assert kind == "pong"
        return float(np.median(rtts))

    try:
        channel = connect_to_shard(server.address, timeout=10)
        try:
            median_rtt_s(channel, 5)  # warm-up
            nodelay = median_rtt_s(channel, num_pings)
            channel.set_tcp_nodelay(False)
            nagle = median_rtt_s(channel, num_nagle_pings)
        finally:
            channel.send(("shutdown", None))
            channel.close()
    finally:
        thread.join(timeout=15)
    assert not thread.is_alive()
    print(f"\ntransport ping RTT: nodelay {nodelay * 1e6:.0f}us "
          f"(default), nagle {nagle * 1e6:.0f}us")
    return {
        "ping_rtt_s": {"tcp_nodelay": nodelay, "nagle": nagle},
        "num_pings": num_pings,
        "tcp_nodelay_default": True,
    }


def test_substrate_report_json(results_dir):
    """Write BENCH_substrate.json and assert the dispatch-scaling and
    delta-shipping claims."""
    cycle_seconds = {name: _timed_cycle(name)
                     for name in ("serial", "thread", "process",
                                  "persistent", "sharded")}
    # Warm-cycle latency with the full codec enabled (delta + zlib), so
    # codec overhead regressions show up next to the plain numbers.
    cycle_seconds["persistent_delta_zlib"] = _timed_cycle(
        "persistent", **_CODEC_CONFIGS["delta_zlib"])
    cycle_seconds["sharded_delta_zlib"] = _timed_cycle(
        "sharded", **_CODEC_CONFIGS["delta_zlib"])
    # Warm-cycle latency with the arena dispatch plane enabled — warm
    # delta frames are small, so this guards against the arena adding
    # per-cycle overhead rather than demonstrating a win.
    cycle_seconds["persistent_arena"] = _timed_cycle(
        "persistent", weight_arena="shm")
    codec_payloads = {
        name: {"small": _dispatch_payloads(20, name),
               "large": _dispatch_payloads(200, name,
                                           include_sharded=False)}
        for name in _CODEC_CONFIGS
    }
    evolving = {name: _evolving_cycle_bytes(name) for name in _CODEC_CONFIGS}
    payloads = codec_payloads["delta"]  # the default configuration
    report = {
        "num_clients": _NUM_LATENCY_CLIENTS,
        "num_shards": 2,
        "client_latency_s": _CLIENT_LATENCY_S,
        "cycle_seconds": cycle_seconds,
        "dispatch_payload_bytes": payloads,
        "arena": _arena_sweep_report(),
        "fusion": _fusion_sweep_report(),
        "transport": _transport_ping_report(),
        "virtual_fleets": _virtual_sweep_report(),
        "codec": {
            "configs": _CODEC_CONFIGS,
            "dispatch_payload_bytes": codec_payloads,
            "evolving_cycle_bytes": evolving,
            "warm_reduction_vs_full": {
                name: (codec_payloads["full"]["small"]["persistent_warm"]
                       / codec_payloads[name]["small"]["persistent_warm"])
                for name in _CODEC_CONFIGS
            },
        },
    }
    path = os.path.join(results_dir, "BENCH_substrate.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    full_warm = codec_payloads["full"]["small"]["persistent_warm"]
    delta_warm = codec_payloads["delta"]["small"]["persistent_warm"]
    print(f"\nwritten {path}: warm dispatch full {full_warm}B, "
          f"delta {delta_warm}B ({full_warm / delta_warm:.1f}x), "
          f"evolving cycle full {evolving['full']}B / delta+zlib "
          f"{evolving['delta_zlib']}B "
          f"({evolving['full'] / evolving['delta_zlib']:.2f}x), "
          f"process baseline {payloads['small']['process']}B")
    for name, sizes in codec_payloads.items():
        # Warm resident dispatch ships weights/deltas + RNG digests
        # only: the payload must not grow with the dataset (the digest
        # values encode to ±a few bytes, hence the 1 % tolerance on a
        # 10x dataset-size increase) …
        assert (abs(sizes["large"]["persistent_warm"]
                    - sizes["small"]["persistent_warm"])
                <= 0.01 * sizes["small"]["persistent_warm"])
        # … the 2-shard socket fleet's wire format is byte-identical to
        # the pipe workers' …
        assert (sizes["small"]["sharded_warm"]
                == sizes["small"]["persistent_warm"])
        # … and the process backend re-pickles whole clients, datasets
        # included: strictly larger at every size.
        assert sizes["large"]["process"] > sizes["small"]["process"]
        for size in ("small", "large"):
            assert (sizes[size]["persistent_warm"]
                    < sizes[size]["process"])
    # The tentpole claim: delta shipping cuts the warm-cycle dispatch of
    # the resident backends at least 5x vs. the full-snapshot baseline
    # (identical-resend path — unchanged parameters ship as a bitmap).
    assert full_warm >= 5 * delta_warm
    assert (codec_payloads["full"]["small"]["sharded_warm"]
            >= 5 * codec_payloads["delta"]["small"]["sharded_warm"])
    # An evolving cycle (every parameter moved) still never costs more
    # than the full snapshot, and zlib'd XOR deltas must actually win.
    assert evolving["delta"] <= evolving["full"] * 1.01
    assert evolving["delta_zlib"] < evolving["full"]
