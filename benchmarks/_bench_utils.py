"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os

__all__ = ["write_result"]


def write_result(results_dir: str, name: str, text: str) -> None:
    """Persist one benchmark's formatted output under ``results_dir``."""
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
