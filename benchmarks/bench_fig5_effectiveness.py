"""Benchmark: regenerate Fig. 5 (soft-training effectiveness evaluation).

Paper artefact: Fig. 5 — accuracy vs. aggregation cycles for Asyn. FL,
AFO, Syn. FL, Random and Helios on (a) LeNet/MNIST, (b) AlexNet/CIFAR-10,
(c) ResNet/CIFAR-100, under the 2-straggler + 2-capable and
3-straggler + 3-capable settings.

The MNIST panels run at the configured scale; the CIFAR-10/CIFAR-100 panels
run one fleet setting each (the heavier models dominate the NumPy budget) —
set ``REPRO_BENCH_SCALE=full`` for sharper curves.
"""

import pytest

from repro.experiments import run_fig5_panel
from repro.experiments.fig5_effectiveness import Fig5Result, format_fig5

from _bench_utils import write_result


def _check_panel(panel, accuracy_tolerance=0.05):
    """Shape checks shared by every Fig. 5 panel."""
    accuracies = {name: history.converged_accuracy()
                  for name, history in panel.histories.items()}
    times = {name: history.total_time()
             for name, history in panel.histories.items()}
    # Helios must be competitive with the best baseline...
    best_baseline = max(value for name, value in accuracies.items()
                        if name != "Helios")
    assert accuracies["Helios"] >= best_baseline - accuracy_tolerance
    # ...and must not fall behind the asynchronous baseline.
    assert accuracies["Helios"] >= accuracies["Asyn. FL"] - accuracy_tolerance
    # Synchronous FL pays the straggler wall-clock penalty.
    assert times["Syn. FL"] > times["Helios"]
    assert times["Syn. FL"] > times["Random"]


@pytest.mark.parametrize("num_capable,num_stragglers", [(2, 2), (3, 3)])
def test_fig5_lenet_mnist(benchmark, bench_scale, results_dir, num_capable,
                          num_stragglers):
    panel = benchmark.pedantic(
        lambda: run_fig5_panel("mnist", num_capable, num_stragglers,
                               scale=bench_scale),
        rounds=1, iterations=1)
    text = format_fig5(Fig5Result(panels=[panel]))
    write_result(results_dir,
                 f"fig5a_mnist_{num_stragglers}strag", text)
    print("\n" + text)
    _check_panel(panel)


def test_fig5_alexnet_cifar10(benchmark, bench_scale, results_dir):
    panel = benchmark.pedantic(
        lambda: run_fig5_panel("cifar10", 2, 2, scale=bench_scale),
        rounds=1, iterations=1)
    text = format_fig5(Fig5Result(panels=[panel]))
    write_result(results_dir, "fig5b_cifar10_2strag", text)
    print("\n" + text)
    # The CIFAR-10 stand-in is still far from convergence at the reduced
    # NumPy scale (the paper trains for many more cycles), so the robust
    # shape checks are: soft-training beats random masking, and the
    # synchronous baseline pays the straggler wall-clock penalty.  See
    # EXPERIMENTS.md for the accuracy discussion.
    accuracies = {name: history.converged_accuracy()
                  for name, history in panel.histories.items()}
    times = {name: history.total_time()
             for name, history in panel.histories.items()}
    assert accuracies["Helios"] >= accuracies["Random"] - 0.02
    assert times["Syn. FL"] > times["Helios"]
    assert times["Syn. FL"] > times["Random"]


def test_fig5_resnet_cifar100(benchmark, results_dir):
    # The ResNet/CIFAR-100 pairing is the heaviest; it always runs at the
    # smoke scale unless the full harness is requested explicitly.
    import os
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    scale = "smoke" if scale == "fast" else scale
    panel = benchmark.pedantic(
        lambda: run_fig5_panel("cifar100", 2, 2, scale=scale),
        rounds=1, iterations=1)
    text = format_fig5(Fig5Result(panels=[panel]))
    write_result(results_dir, "fig5c_cifar100_2strag", text)
    print("\n" + text)
    times = {name: history.total_time()
             for name, history in panel.histories.items()}
    # At smoke scale the accuracy curves are noisy; the robust shape check
    # is the wall-clock ordering (Syn. FL pays for its stragglers).
    assert times["Syn. FL"] > times["Helios"]
    assert set(panel.histories) == {"Asyn. FL", "AFO", "Syn. FL", "Random",
                                    "Helios"}
