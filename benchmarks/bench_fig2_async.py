"""Benchmark: regenerate Fig. 2 (sync vs. async aggregation periods).

Paper artefact: Fig. 2 — two collaborating devices; synchronous aggregation
achieves the best convergence accuracy, and stretching the straggler's
aggregation period from 2 to 3 epochs degrades the asynchronous runs.
"""

from repro.experiments import format_fig2, run_fig2

from _bench_utils import write_result


def test_fig2_async_period_analysis(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(lambda: run_fig2(scale=bench_scale),
                                rounds=1, iterations=1)
    text = format_fig2(result)
    write_result(results_dir, "fig2_async", text)
    print("\n" + text)

    accuracies = {row["setting"]: row["converge_accuracy"]
                  for row in result.rows}
    sync = accuracies["Setting 1 (Syn.)"]
    period2 = accuracies["Setting 2 (Asyn. period 2)"]
    period3 = accuracies["Setting 3 (Asyn. period 3)"]
    # Paper shape: synchronous aggregation converges best (small tolerance
    # for the noisy reduced-scale CIFAR-10 stand-in).
    assert sync >= period2 - 0.03
    assert sync >= period3 - 0.03
    # Every setting must clear random guessing (0.1 on ten classes).
    assert all(value > 0.12 for value in accuracies.values())
