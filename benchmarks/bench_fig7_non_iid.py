"""Benchmark: regenerate Fig. 7 (Non-IID evaluation).

Paper artefact: Fig. 7 — the strategy comparison under shard-based Non-IID
client data, on LeNet/MNIST (2 stragglers + 2 capable and 3 + 3) and
AlexNet/CIFAR-10 (2 + 2).
"""

import pytest

from repro.experiments import format_fig7, run_fig7

from _bench_utils import write_result


@pytest.mark.parametrize("dataset,num_capable,num_stragglers",
                         [("mnist", 2, 2), ("mnist", 3, 3),
                          ("cifar10", 2, 2)])
def test_fig7_non_iid(benchmark, bench_scale, results_dir, dataset,
                      num_capable, num_stragglers):
    result = benchmark.pedantic(
        lambda: run_fig7(panels=[(dataset, num_capable, num_stragglers)],
                         scale=bench_scale),
        rounds=1, iterations=1)
    text = format_fig7(result)
    write_result(results_dir,
                 f"fig7_noniid_{dataset}_{num_stragglers}strag", text)
    print("\n" + text)

    panel = result.panels[0]
    accuracies = {name: history.converged_accuracy()
                  for name, history in panel.histories.items()}
    times = {name: history.total_time()
             for name, history in panel.histories.items()}
    # Paper shape under Non-IID: Helios stays ahead of the asynchronous
    # methods (which lose the stragglers' unique label information) and
    # remains much faster than synchronous FL.  The CIFAR-10 stand-in is
    # still far from convergence at this scale, so only the MNIST panels
    # carry the accuracy-ordering assertion; the CIFAR-10 panel checks the
    # soft-training-vs-random ordering and the wall-clock shape.
    if dataset == "mnist":
        assert accuracies["Helios"] >= accuracies["Asyn. FL"] - 0.02
        assert accuracies["Helios"] >= accuracies["AFO"] - 0.02
    else:
        assert accuracies["Helios"] >= accuracies["Random"] - 0.03
    assert times["Syn. FL"] > times["Helios"]
