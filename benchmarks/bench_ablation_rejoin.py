"""Ablation benchmark: the forced-rejoin (neuron rotation regulation) rule.

DESIGN.md calls out the rejoin threshold ``1 + m / Σ P_i n_i`` (paper
Sec. VI-A) as a design choice: without it, low-contribution neurons can be
starved indefinitely, breaking the ``p_i > 0`` requirement of the
convergence proof.  This benchmark compares standard Helios against a
variant whose rejoin threshold is effectively infinite, measuring both the
model accuracy and how starved the most-skipped neuron gets.
"""

from repro.core import HeliosConfig, HeliosStrategy
from repro.experiments import (ExperimentSetting, get_scale,
                               make_simulation_factory)
from repro.metrics import format_table

from _bench_utils import write_result


def run_rejoin_comparison(scale_name):
    scale = get_scale(scale_name)
    setting = ExperimentSetting(dataset="mnist", model="lenet",
                                num_capable=2, num_stragglers=2,
                                partition="iid", seed=0)
    factory, num_cycles = make_simulation_factory(setting, scale)
    results = {}
    for label, margin in (("with rejoin", 1.0),
                          ("without rejoin", 1e9)):
        strategy = HeliosStrategy(HeliosConfig(straggler_top_k=2,
                                               rejoin_margin=margin,
                                               top_share=0.5, seed=0))
        strategy.name = f"Helios ({label})"
        simulation = factory()
        history = simulation.run(strategy, num_cycles=num_cycles)
        max_skip = max(tracker.max_skip_count()
                       for tracker in strategy.trackers.values())
        results[label] = {"history": history, "max_skip": max_skip}
    return results


def test_ablation_forced_rejoin(benchmark, bench_scale, results_dir):
    results = benchmark.pedantic(lambda: run_rejoin_comparison(bench_scale),
                                 rounds=1, iterations=1)
    rows = [{"variant": label,
             "converged_accuracy": round(
                 data["history"].converged_accuracy(), 4),
             "max_skipped_cycles": data["max_skip"]}
            for label, data in results.items()]
    text = format_table(rows, title="Ablation — forced neuron rejoin")
    write_result(results_dir, "ablation_rejoin", text)
    print("\n" + text)

    # The regulated variant must keep every neuron's skip streak bounded by
    # the threshold regime, while the unregulated variant is allowed to
    # starve neurons for longer (with the contribution-heavy Ps=0.5 setting
    # the same "favourite" neurons win every cycle).
    assert (results["with rejoin"]["max_skip"]
            <= results["without rejoin"]["max_skip"])
    assert results["with rejoin"]["history"].converged_accuracy() > 0.3
