"""Benchmark: regenerate Table I (straggler resource profiles).

Paper artefact: Table I — per-straggler computation workload, memory usage
and training-cycle time for AlexNet on CIFAR-10 across the four throttled
device configurations.
"""

from repro.experiments import format_table1, run_table1

from _bench_utils import write_result


def test_table1_straggler_profiles(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(lambda: run_table1(scale=bench_scale),
                                rounds=1, iterations=1)
    text = format_table1(result)
    write_result(results_dir, "table1_profiles", text)
    print("\n" + text)

    # Reproduction checks: four rows, paper ordering, paper time regime.
    assert len(result.rows) == 4
    assert result.ordering_matches_paper
    minutes = [row["cycle_minutes"] for row in result.rows]
    assert minutes == sorted(minutes)
    assert 5.0 < minutes[0] < 60.0
    assert 1.2 < minutes[-1] / minutes[0] < 3.0
