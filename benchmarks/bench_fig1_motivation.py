"""Benchmark: regenerate Fig. 1 (straggler idle-time motivation example).

Paper artefact: Fig. 1 — three heterogeneous devices training the same
model synchronously; the straggler dictates the cycle length and the
capable devices idle for most of it.
"""

from repro.experiments import format_fig1, run_fig1

from _bench_utils import write_result


def test_fig1_idle_time_analysis(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(lambda: run_fig1(scale=bench_scale),
                                rounds=1, iterations=1)
    text = format_fig1(result)
    write_result(results_dir, "fig1_motivation", text)
    print("\n" + text)

    # Reproduction checks: the DeepLens-class device straggles, the fastest
    # device idles for the overwhelming share of the cycle, and the
    # slowdown factor is in the paper's double-digit regime (paper: ~35x).
    assert result.straggler_name == "deeplens-cpu"
    assert result.slowdown_factor > 10.0
    fastest_row = max(result.rows, key=lambda row: row["idle_share"])
    assert fastest_row["idle_share"] > 0.9
