"""Ablation benchmark: the top-contribution share ``Ps``.

DESIGN.md calls out ``Ps`` (the share of each soft-training selection filled
by the highest-contribution neurons, paper Sec. VI-A suggests 0.05–0.1) as a
design choice worth ablating.  This benchmark sweeps ``Ps`` from pure-random
selection (0.0) to contribution-only selection (1.0) on the LeNet/MNIST
2-straggler setting.
"""

from repro.core import HeliosConfig, HeliosStrategy
from repro.experiments import (ExperimentSetting, get_scale,
                               make_simulation_factory, run_strategies)
from repro.metrics import format_table

from _bench_utils import write_result

PS_VALUES = (0.0, 0.1, 0.3, 1.0)


def run_ps_sweep(scale_name):
    scale = get_scale(scale_name)
    setting = ExperimentSetting(dataset="mnist", model="lenet",
                                num_capable=2, num_stragglers=2,
                                partition="iid", seed=0)
    factory, num_cycles = make_simulation_factory(setting, scale)
    strategies = []
    for ps_value in PS_VALUES:
        strategy = HeliosStrategy(HeliosConfig(top_share=ps_value,
                                               straggler_top_k=2, seed=0))
        strategy.name = f"Helios (Ps={ps_value})"
        strategies.append(strategy)
    return run_strategies(factory, strategies, num_cycles)


def test_ablation_top_share(benchmark, bench_scale, results_dir):
    histories = benchmark.pedantic(lambda: run_ps_sweep(bench_scale),
                                   rounds=1, iterations=1)
    rows = [{"Ps": name.split("=")[-1].rstrip(")"),
             "converged_accuracy": round(history.converged_accuracy(), 4),
             "best_accuracy": round(history.best_accuracy(), 4)}
            for name, history in histories.items()]
    text = format_table(rows, title="Ablation — top-contribution share Ps")
    write_result(results_dir, "ablation_ps", text)
    print("\n" + text)

    accuracies = {row["Ps"]: row["converged_accuracy"] for row in rows}
    # Every setting must learn; the mixed selections (the paper's
    # recommended regime) should not be dominated by either extreme by a
    # large margin.
    assert all(value > 0.3 for value in accuracies.values())
    mixed_best = max(accuracies["0.1"], accuracies["0.3"])
    extreme_best = max(accuracies["0.0"], accuracies["1.0"])
    assert mixed_best >= extreme_best - 0.1
