"""Heterogeneous-fleet walkthrough: profiling, identification, soft-training.

This example follows the Helios pipeline step by step on the paper's
motivating scenario (Fig. 1 / Table I):

1. profile every device's expected training-cycle time with the analytical
   cost model,
2. identify the potential stragglers (both identification paths),
3. determine each straggler's expected model volume,
4. run the full collaboration with Helios and print who trained what.

Run with:  python examples/heterogeneous_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (HeliosConfig, HeliosStrategy, OptimizationTargetPolicy,
                        StragglerIdentifier)
from repro.data import load_synthetic_dataset, partition_iid
from repro.fl import ClientConfig, build_simulation
from repro.hardware import FleetProfiler, build_fleet
from repro.metrics import format_table
from repro.nn.models import build_alexnet


def main() -> None:
    input_shape = (3, 32, 32)
    train, test = load_synthetic_dataset("cifar10", num_train=600,
                                         num_test=150, seed=0)
    devices = build_fleet(num_capable=2, num_stragglers=2)
    client_datasets = partition_iid(train, len(devices),
                                    rng=np.random.default_rng(1))

    def model_factory():
        return build_alexnet(input_shape, 10, width_multiplier=0.1,
                             dropout_rate=0.0, rng=np.random.default_rng(7))

    model = model_factory()
    samples_per_cycle = len(client_datasets[0]) * 40  # full-size workload

    # ---------------------------------------------------------------- #
    # Step 1 — resource-based profiling (paper Table I).
    # ---------------------------------------------------------------- #
    profiler = FleetProfiler(model, input_shape,
                             samples_per_cycle=samples_per_cycle)
    rows = [report.as_row() for report in profiler.profile_fleet(devices)]
    print(format_table(rows, title="Step 1 — per-device cycle profile"))

    # ---------------------------------------------------------------- #
    # Step 2 — straggler identification, both paths.
    # ---------------------------------------------------------------- #
    identifier = StragglerIdentifier(model, input_shape,
                                     samples_per_cycle=samples_per_cycle)
    resource_report = identifier.identify_by_resources(devices)
    time_report = identifier.identify_by_time(
        devices, rng=np.random.default_rng(3))
    print("\nStep 2 — stragglers (resource-based):",
          [devices[i].name for i in resource_report.straggler_indices])
    print("Step 2 — stragglers (time-based):    ",
          [devices[i].name for i in time_report.straggler_indices])

    # ---------------------------------------------------------------- #
    # Step 3 — optimization-target determination.
    # ---------------------------------------------------------------- #
    policy = OptimizationTargetPolicy(model, input_shape)
    assignment = policy.assign_resource_adapted(
        resource_report, devices,
        samples_per_cycle={index: samples_per_cycle
                           for index in range(len(devices))})
    volume_rows = [{"device": devices[index].name,
                    "expected_volume": round(volume, 3)}
                   for index, volume in sorted(assignment.volumes.items())]
    print()
    print(format_table(volume_rows,
                       title="Step 3 — expected model volumes"))

    # ---------------------------------------------------------------- #
    # Step 4 — run the collaboration with Helios.
    # ---------------------------------------------------------------- #
    simulation = build_simulation(
        model_factory, client_datasets, devices, test, input_shape,
        client_config=ClientConfig(batch_size=32, learning_rate=0.05),
        workload_scale=40.0, seed=0)
    strategy = HeliosStrategy(HeliosConfig(straggler_top_k=2, seed=0))
    history = simulation.run(strategy, num_cycles=8, verbose=True)

    print(f"\nfinal accuracy: {history.final_accuracy():.3f} "
          f"after {history.total_time() / 60.0:.1f} simulated minutes")
    print("straggler volumes after pace adaptation:",
          {devices[index].name: round(volume, 3)
           for index, volume in strategy.volumes.items()})


if __name__ == "__main__":
    main()
