"""Non-IID collaboration: Helios vs. baselines under label-skewed data.

Reproduces the flavour of the paper's Fig. 7: each client only sees a couple
of classes (shard-based Non-IID partition), which makes the stragglers'
information unique — exactly the situation where dropping or staleness-
discounting them (Asyn. FL / AFO) hurts and Helios' soft-training helps.

Run with:  python examples/non_iid_collaboration.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (AFOStrategy, AsynchronousFLStrategy,
                             SynchronousFLStrategy)
from repro.core import HeliosConfig, HeliosStrategy
from repro.data import load_synthetic_dataset, partition_shards
from repro.fl import ClientConfig, build_simulation
from repro.hardware import build_fleet
from repro.metrics import compare_histories, format_accuracy_curves, format_table
from repro.nn.models import build_lenet


def main() -> None:
    train, test = load_synthetic_dataset("mnist", num_train=1000,
                                         num_test=250, seed=0)
    # Shard partition: every client sees only ~2 classes (strong skew).
    client_datasets = partition_shards(train, num_clients=4,
                                       shards_per_client=2,
                                       rng=np.random.default_rng(1))
    for index, dataset in enumerate(client_datasets):
        present = np.flatnonzero(dataset.class_counts()).tolist()
        print(f"client {index}: {len(dataset)} samples, classes {present}")

    devices = build_fleet(num_capable=2, num_stragglers=2)

    def model_factory():
        return build_lenet(width_multiplier=0.4,
                           rng=np.random.default_rng(7))

    def make_simulation():
        return build_simulation(
            model_factory, client_datasets, devices, test,
            input_shape=(1, 28, 28),
            client_config=ClientConfig(batch_size=32, learning_rate=0.05),
            workload_scale=40.0, seed=0)

    num_cycles = 15
    strategies = [
        AsynchronousFLStrategy(straggler_top_k=2),
        AFOStrategy(straggler_top_k=2),
        SynchronousFLStrategy(straggler_top_k=2),
        HeliosStrategy(HeliosConfig(straggler_top_k=2, seed=0)),
    ]
    histories = {}
    for strategy in strategies:
        histories[strategy.name] = make_simulation().run(
            strategy, num_cycles=num_cycles)
        print(f"{strategy.name:10s} converged accuracy "
              f"{histories[strategy.name].converged_accuracy():.3f}")

    target = 0.9 * histories["Syn. FL"].converged_accuracy()
    print()
    print(format_table(compare_histories(histories, target),
                       title="Non-IID comparison (shard partition)"))
    print()
    print(format_accuracy_curves(
        {name: history.accuracies() for name, history in histories.items()},
        title="accuracy per aggregation cycle"))


if __name__ == "__main__":
    main()
