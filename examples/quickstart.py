"""Quickstart: run Helios against synchronous FL on a small heterogeneous fleet.

This script builds a four-device collaboration (two capable Jetson Nano
nodes, two stragglers), trains a LeNet-style model on a synthetic MNIST
stand-in, and compares Helios with the synchronous-FL baseline on accuracy
and simulated wall-clock time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SynchronousFLStrategy
from repro.core import HeliosConfig, HeliosStrategy
from repro.data import load_synthetic_dataset, partition_iid
from repro.fl import ClientConfig, build_simulation
from repro.hardware import build_fleet
from repro.metrics import compare_histories, format_table, speedup_over
from repro.nn.models import build_lenet


def main() -> None:
    # 1. Data: a synthetic MNIST stand-in, split IID across four clients.
    train, test = load_synthetic_dataset("mnist", num_train=1000,
                                         num_test=250, seed=0)
    client_datasets = partition_iid(train, num_clients=4,
                                    rng=np.random.default_rng(1))

    # 2. Fleet: two capable devices and two stragglers (paper Table I).
    devices = build_fleet(num_capable=2, num_stragglers=2)
    print("fleet:", [device.name for device in devices])

    # 3. Model and local-training configuration.
    def model_factory():
        return build_lenet(width_multiplier=0.4,
                           rng=np.random.default_rng(7))

    config = ClientConfig(batch_size=32, local_epochs=1, learning_rate=0.05)

    def make_simulation():
        return build_simulation(model_factory, client_datasets, devices,
                                test, input_shape=(1, 28, 28),
                                client_config=config, workload_scale=40.0,
                                seed=0)

    # 4. Run Helios and the synchronous baseline on identical simulations.
    num_cycles = 12
    helios_history = make_simulation().run(
        HeliosStrategy(HeliosConfig(straggler_top_k=2, seed=0)),
        num_cycles=num_cycles, verbose=True)
    sync_history = make_simulation().run(
        SynchronousFLStrategy(straggler_top_k=2),
        num_cycles=num_cycles, verbose=True)

    # 5. Report.
    histories = {"Helios": helios_history, "Syn. FL": sync_history}
    target = 0.9 * sync_history.converged_accuracy()
    print()
    print(format_table(compare_histories(histories, target),
                       title="Helios vs. synchronous FL"))
    speedup = speedup_over(helios_history, sync_history, target)
    if speedup is not None:
        print(f"\nHelios reaches {target:.3f} accuracy "
              f"{speedup:.2f}x faster (simulated wall-clock) than Syn. FL")


if __name__ == "__main__":
    main()
