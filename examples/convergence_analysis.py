"""Convergence analysis: checking the Proposition-2 bound numerically.

The paper proves (Sec. V-B) that soft-training keeps the gradient variance
within ``(1 + ε)`` of the full gradient's second moment provided the
``v`` highest-contribution neurons always train and every other neuron keeps
a non-zero selection probability, with the expected number of active
neurons bounded by ``(1 + ρ) v``.

This example extracts a real gradient snapshot from a model, runs the
analysis for several ε values, and verifies the bound empirically by
sampling soft-training masks.

Run with:  python examples/convergence_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.core import analyze_soft_training, contributions_from_gradients
from repro.data import load_synthetic_dataset
from repro.metrics import format_table
from repro.nn import SGD, SoftmaxCrossEntropy
from repro.nn.models import build_lenet


def main() -> None:
    # Train a few steps so the gradient snapshot is not the random init.
    train, _ = load_synthetic_dataset("mnist", num_train=400, num_test=100,
                                      seed=0)
    model = build_lenet(width_multiplier=0.4, rng=np.random.default_rng(7))
    loss_fn = SoftmaxCrossEntropy()
    optimizer = SGD(model.parameters(), lr=0.05)
    rng = np.random.default_rng(1)
    for images, labels in train.batches(32, rng=rng):
        model.train_step(images, labels, loss_fn, optimizer)

    # One more forward/backward to leave fresh gradients on the parameters.
    model.zero_grad()
    logits = model.forward(train.images[:64])
    loss_fn.forward(logits, train.labels[:64])
    model.backward(loss_fn.backward())
    gradients = model.get_gradients()

    # Per-neuron gradient magnitudes across the whole model.
    per_layer = contributions_from_gradients(model, gradients)
    all_neurons = np.concatenate([scores for scores in per_layer.values()])

    rows = []
    for epsilon in (0.1, 0.5, 1.0, 2.0):
        analysis = analyze_soft_training(all_neurons, epsilon=epsilon)
        rows.append({
            "epsilon": epsilon,
            "always_kept_v": analysis.v,
            "expected_active": round(analysis.expected_active, 1),
            "variance_budget_ok": analysis.bound_satisfied,
            "rho_implied": round(analysis.rho_implied, 2),
        })
    print(format_table(rows, title="Proposition 2 — soft-training bounds"))
    print(f"\ntotal neurons in the model: {all_neurons.size}")
    print("Smaller ε forces more neurons to stay active every cycle; "
          "larger ε lets soft-training shrink the per-cycle model further "
          "while the gradient-variance budget (Eq. 7) still holds.  "
          "rho_implied is the ρ that makes the Eq. 9 active-neuron bound "
          "tight for this (not perfectly sparsifiable) gradient snapshot.")


if __name__ == "__main__":
    main()
