"""Dynamic collaboration scaling: a device joins the FL mid-training.

Demonstrates the paper's Sec. VI-C scalability optimization: the
collaboration starts with three devices; after a few aggregation cycles a
fourth (weak) device joins.  Helios profiles it on the fly, classifies it
as a straggler, assigns it an expected model volume and lets it participate
from the next cycle on.

Run with:  python examples/dynamic_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.core import HeliosConfig, HeliosStrategy
from repro.data import load_synthetic_dataset, partition_iid
from repro.fl import ClientConfig, FLClient, build_simulation
from repro.hardware import DEEPLENS_CPU, build_fleet
from repro.nn.models import build_lenet


def main() -> None:
    train, test = load_synthetic_dataset("mnist", num_train=1000,
                                         num_test=250, seed=0)
    # Reserve the last partition for the late-joining device.
    partitions = partition_iid(train, num_clients=4,
                               rng=np.random.default_rng(1))
    initial_datasets, late_dataset = partitions[:3], partitions[3]
    devices = build_fleet(num_capable=2, num_stragglers=1)

    def model_factory():
        return build_lenet(width_multiplier=0.4,
                           rng=np.random.default_rng(7))

    config = ClientConfig(batch_size=32, local_epochs=1, learning_rate=0.05)
    simulation = build_simulation(model_factory, initial_datasets, devices,
                                  test, input_shape=(1, 28, 28),
                                  client_config=config, workload_scale=40.0,
                                  seed=0)
    strategy = HeliosStrategy(HeliosConfig(straggler_top_k=1, seed=0))

    # Phase 1: run the initial three-device collaboration.
    history_before = simulation.run(strategy, num_cycles=5, verbose=True)
    print(f"\naccuracy before join: {history_before.final_accuracy():.3f}")

    # Phase 2: a DeepLens (CPU mode) joins with its own local data.
    newcomer = FLClient(client_id=simulation.num_clients(),
                        dataset=late_dataset,
                        device=DEEPLENS_CPU.scaled(name="late-joiner"),
                        model_factory=model_factory, config=config, seed=99)
    decision = strategy.register_new_client(simulation, newcomer)
    print(f"\nnew device {decision.device_name!r}: "
          f"straggler={decision.is_straggler}, "
          f"expected cycle {decision.expected_cycle_seconds:.1f}s vs pace "
          f"{decision.reference_seconds:.1f}s, "
          f"assigned volume {decision.volume:.2f}")

    # Phase 3: keep training with the enlarged fleet.
    history_after = simulation.run(strategy, num_cycles=7, verbose=True)
    print(f"\naccuracy after join: {history_after.final_accuracy():.3f} "
          f"with {simulation.num_clients()} devices collaborating")


if __name__ == "__main__":
    main()
