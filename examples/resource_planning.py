"""Resource planning: sizing model volumes for a fleet before deployment.

Before starting a collaboration, an operator wants to know: which devices
will straggle, what per-cycle time budget is realistic, what model volume
each straggler needs to stay on pace, and what simply dropping the slow
devices (FedCS-style selection) would cost in participating data.  This
example answers those questions with the hardware cost model alone — no
training required — and archives the resulting plan.

Run with:  python examples/resource_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.hardware import (DEVICE_PRESETS, FleetProfiler, TrainingCostModel,
                            build_fleet)
from repro.metrics import format_table
from repro.nn.models import build_alexnet


def main() -> None:
    input_shape = (3, 32, 32)
    samples_per_cycle = 12_500  # half of CIFAR-10 per device, one epoch
    model = build_alexnet(input_shape, 10, width_multiplier=1.0,
                          dropout_rate=0.0, rng=np.random.default_rng(0))
    fleet = build_fleet(num_capable=2, num_stragglers=4)

    # ---------------------------------------------------------------- #
    # 1. Profile every device on the full-size workload.
    # ---------------------------------------------------------------- #
    profiler = FleetProfiler(model, input_shape,
                             samples_per_cycle=samples_per_cycle)
    reports = profiler.profile_fleet(fleet)
    print(format_table([report.as_row() for report in reports],
                       title="Per-device full-model cycle profile"))

    # ---------------------------------------------------------------- #
    # 2. Choose the collaboration pace and size the straggler volumes.
    # ---------------------------------------------------------------- #
    pace_seconds = min(report.cycle_minutes for report in reports) * 60 * 1.1
    print(f"\ncollaboration pace (fastest device + 10% slack): "
          f"{pace_seconds / 60:.1f} min/cycle")

    cost_model = TrainingCostModel(model, input_shape,
                                   samples_per_cycle=samples_per_cycle)
    plan_rows = []
    for device, report in zip(fleet, reports):
        volume = cost_model.volume_for_budget(device, pace_seconds,
                                              min_fraction=0.05)
        fractions = {layer.name: volume for layer in model.neuron_layers()}
        shrunk_minutes = cost_model.estimate(device, fractions).total_minutes
        plan_rows.append({
            "device": device.name,
            "full_cycle_min": round(report.cycle_minutes, 1),
            "assigned_volume": round(volume, 2),
            "shrunk_cycle_min": round(shrunk_minutes, 1),
            "meets_pace": shrunk_minutes <= pace_seconds / 60 * 1.001,
        })
    print()
    print(format_table(plan_rows, title="Helios deployment plan"))

    # ---------------------------------------------------------------- #
    # 3. What would dropping the stragglers cost instead?
    # ---------------------------------------------------------------- #
    kept = [row for row in plan_rows if row["assigned_volume"] == 1.0]
    dropped = [row for row in plan_rows if row["assigned_volume"] < 1.0]
    data_lost = len(dropped) / len(plan_rows)
    print(f"\nFedCS-style selection at the same pace would drop "
          f"{len(dropped)} of {len(plan_rows)} devices "
          f"(~{data_lost:.0%} of the local data), while Helios keeps them "
          f"training partial models every cycle.")

    print("\navailable device presets:", ", ".join(sorted(DEVICE_PRESETS)))


if __name__ == "__main__":
    main()
