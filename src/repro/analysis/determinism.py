"""Checker 1: nondeterminism sources in determinism-critical modules.

The backends' contract is *bit-identical* histories across serial,
thread, process, persistent and sharded execution under a fixed seed
(README § Determinism guarantees).  Any wall-clock read, global-RNG
call, unordered-set iteration, ``id()``-based ordering or OS entropy
inside the modules that implement that contract is either a bug or a
deliberate exception that deserves a visible ``# lint:
allow[determinism]`` marker.

Codes
-----
* ``REPRO-D101`` — wall-clock call (``time.time``/``monotonic``/
  ``perf_counter``/``datetime.now``…).
* ``REPRO-D102`` — global-state RNG call (``random.*``,
  ``numpy.random.*`` except a *seeded* ``default_rng``).
* ``REPRO-D103`` — iteration over an unordered ``set``/``frozenset``
  (``for x in set(...)``, ``list({...})``, …) without ``sorted``.
* ``REPRO-D104`` — ``id()``-keyed ordering (``sorted(..., key=id)``).
* ``REPRO-D105`` — OS entropy (``os.urandom``, ``uuid.uuid1/4``,
  ``secrets.*``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from .engine import Checker, Finding, SourceModule, resolve_call_name

__all__ = ["DeterminismChecker", "DEFAULT_DETERMINISM_TARGETS"]

#: Modules (by basename) whose results must be bit-identical across
#: backends: the executor dispatch path, fused training, the exact-fold
#: aggregation layer, the wire codec, the shared-memory arena — and the
#: chaos engine, whose whole premise is that injected fault sequences
#: replay exactly from (seed, plan).
DEFAULT_DETERMINISM_TARGETS = frozenset({
    "executor.py", "fusion.py", "aggregation.py", "codec.py", "arena.py",
    "chaos.py", "scenario.py",
})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

_ENTROPY = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})

#: Callables that wrap an iterable without imposing an order, so a set
#: argument leaks its hash ordering into the result.
_ORDER_LEAKING_WRAPPERS = frozenset({
    "list", "tuple", "iter", "enumerate", "reversed",
})


def _is_set_expr(node: ast.expr, aliases: Dict[str, str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = resolve_call_name(node.func, aliases)
        return name in ("set", "frozenset")
    return False


def _is_id_key(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        body = node.body
        return (isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id == "id")
    return False


class DeterminismChecker(Checker):
    name = "determinism"

    def __init__(self, targets: frozenset = DEFAULT_DETERMINISM_TARGETS
                 ) -> None:
        self.targets = frozenset(targets)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.name not in self.targets:
            return
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, aliases):
                    yield self._finding(
                        module, node.iter, "REPRO-D103",
                        "iteration over an unordered set (hash order "
                        "varies between runs); sort it first")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for comp in node.generators:
                    if _is_set_expr(comp.iter, aliases):
                        yield self._finding(
                            module, comp.iter, "REPRO-D103",
                            "comprehension over an unordered set (hash "
                            "order varies between runs); sort it first")

    # ------------------------------------------------------------------ #
    def _check_call(self, module: SourceModule, node: ast.Call,
                    aliases: Dict[str, str]) -> Iterator[Finding]:
        name = resolve_call_name(node.func, aliases)
        if name is None:
            return
        if name in _WALL_CLOCK:
            yield self._finding(
                module, node, "REPRO-D101",
                f"wall-clock call {name}() in a determinism-critical "
                f"module (host timing must never influence results)")
        elif name in _ENTROPY or name.startswith("secrets."):
            yield self._finding(
                module, node, "REPRO-D105",
                f"OS entropy call {name}() in a determinism-critical "
                f"module (seeded generators only)")
        elif self._is_global_rng(name, node):
            yield self._finding(
                module, node, "REPRO-D102",
                f"global-state RNG call {name}() (module-level RNG "
                f"state breaks cross-backend determinism; use a seeded "
                f"Generator)")
        elif (name in ("sorted", "min", "max")
              or name.endswith(".sort")):
            for keyword in node.keywords:
                if keyword.arg == "key" and _is_id_key(keyword.value):
                    yield self._finding(
                        module, node, "REPRO-D104",
                        "ordering keyed on id() (allocation addresses "
                        "vary between runs)")
        elif name in _ORDER_LEAKING_WRAPPERS and node.args:
            if _is_set_expr(node.args[0], aliases):
                yield self._finding(
                    module, node, "REPRO-D103",
                    f"{name}() materializes an unordered set (hash "
                    f"order varies between runs); sort it first")

    @staticmethod
    def _is_global_rng(name: str, node: ast.Call) -> bool:
        if name.startswith("random."):
            return True
        if name.startswith(("numpy.random.", "np.random.")):
            tail = name.rsplit(".", 1)[1]
            if tail == "default_rng":
                # Seeded default_rng(seed) is the sanctioned way to make
                # a Generator; a bare default_rng() pulls OS entropy.
                return not (node.args or node.keywords)
            return True
        return False

    def _finding(self, module: SourceModule, node: ast.AST, code: str,
                 message: str) -> Finding:
        return Finding(path=module.path, line=node.lineno, code=code,
                       message=message, severity="error",
                       checker=self.name)
