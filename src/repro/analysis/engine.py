"""Core of ``repro lint``: parsed modules, findings, suppression, baseline.

The substrate's correctness rests on invariants that no unit test can
watch continuously — bit-identical determinism across the execution
backends, a total wire-kind mapping across codec/transport/executor,
a shard-server event loop that never blocks, teardown paths that never
swallow errors invisibly, resources released on every path.  This
package enforces them *statically*: the engine walks a Python tree with
:mod:`ast`, hands every parsed module to a set of checkers, and renders
their findings as ``path:line: CODE message`` (or JSON).

Three mechanisms keep the gate practical:

* **Suppressions** — a ``# lint: allow[category-or-CODE]`` comment on
  the flagged line silences that finding.  Every suppression is an
  explicit, reviewable statement that the violation is intentional.
* **Baseline** — pre-existing findings recorded in a checked-in JSON
  file (``tools/lint_baseline.json``) don't fail the gate; only *new*
  findings do.  Baseline identity is ``(path, code, message)`` — line
  numbers churn with every edit, messages don't.
* **Severity** — every finding is an ``error`` or a ``warning``; both
  fail CI when new (a warning is "probably fine, say why with an
  allow comment", not "ignore me").
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "SourceModule",
    "Checker",
    "LintReport",
    "dotted_name",
    "import_aliases",
    "resolve_call_name",
    "iter_source_files",
    "parse_modules",
    "run_checkers",
    "load_baseline",
    "write_baseline",
    "baseline_payload",
    "apply_baseline",
    "default_package_root",
    "default_repo_root",
    "default_baseline_path",
]

SEVERITIES = ("error", "warning")

#: ``# lint: allow[determinism]`` / ``# lint: allow[REPRO-D101, swallow]``
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([A-Za-z0-9_\-, ]+)\]")

#: On-disk format version of the baseline file.
BASELINE_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One checker hit.  ``message`` must not embed line numbers —
    ``(path, code, message)`` is the baseline identity and has to
    survive unrelated edits shifting the file around."""

    path: str
    line: int
    code: str
    message: str
    severity: str = "error"
    checker: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.code, self.message)

    def as_json(self, baselined: bool = False) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "severity": self.severity,
            "checker": self.checker,
            "message": self.message,
            "baselined": baselined,
        }


class SourceModule:
    """One parsed source file as the checkers see it.

    ``path`` is the display path (repo-relative where possible);
    ``name`` is the basename, which is what checkers scope on
    (``executor.py``, ``codec.py``, …).
    """

    def __init__(self, path: str, source: str,
                 tree: Optional[ast.AST] = None) -> None:
        self.path = path
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source)
        self.lines = source.splitlines()
        self._allows: Optional[Dict[int, frozenset]] = None
        self._aliases: Optional[Dict[str, str]] = None

    @property
    def name(self) -> str:
        return Path(self.path).name

    @property
    def aliases(self) -> Dict[str, str]:
        """Import aliases: local name -> canonical dotted module path."""
        if self._aliases is None:
            self._aliases = import_aliases(self.tree)
        return self._aliases

    def allowed(self, line: int) -> frozenset:
        """Lower-cased ``# lint: allow[...]`` tokens present on a line."""
        if self._allows is None:
            allows: Dict[int, frozenset] = {}
            for number, text in enumerate(self.lines, start=1):
                match = _ALLOW_RE.search(text)
                if match:
                    allows[number] = frozenset(
                        token.strip().lower()
                        for token in match.group(1).split(",")
                        if token.strip())
            self._allows = allows
        return self._allows.get(line, frozenset())

    def suppresses(self, finding: Finding) -> bool:
        tokens = self.allowed(finding.line)
        if not tokens:
            return False
        return (finding.checker.lower() in tokens
                or finding.code.lower() in tokens)


class Checker:
    """Base checker: per-module and whole-project hooks.

    ``name`` doubles as the suppression category (``# lint:
    allow[<name>]``); per-module checks see one file at a time, the
    project hook sees every parsed module at once (cross-file
    invariants like the wire-kind registry need all three layers).
    """

    name = ""

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(self,
                      modules: Sequence[SourceModule]) -> Iterator[Finding]:
        return iter(())


# --------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------- #

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to canonical dotted paths for a module's imports.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from time import
    sleep as zzz`` -> ``{"zzz": "time.sleep"}``.  Relative imports are
    kept by tail (``from .codec import KIND_RUN`` -> ``codec.KIND_RUN``)
    so checkers can match on suffixes without resolving packages.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                full = f"{base}.{alias.name}" if base else alias.name
                aliases[alias.asname or alias.name] = full
    return aliases


def resolve_call_name(node: ast.expr,
                      aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name of a callable expression.

    The chain root is translated through the module's import aliases, so
    ``np.random.rand`` resolves to ``numpy.random.rand`` and an aliased
    ``from time import sleep as pause`` resolves ``pause`` to
    ``time.sleep``.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    canonical_root = aliases.get(root, root)
    return f"{canonical_root}.{rest}" if rest else canonical_root


# --------------------------------------------------------------------- #
# file discovery / parsing
# --------------------------------------------------------------------- #

def default_package_root() -> Path:
    """The ``src/repro`` tree this engine ships inside."""
    return Path(__file__).resolve().parents[1]


def default_repo_root() -> Path:
    """Best-effort repository root (``src/repro`` -> two levels up)."""
    package = default_package_root()
    if package.parent.name == "src":
        return package.parent.parent
    return package.parent


def default_baseline_path() -> Path:
    return default_repo_root() / "tools" / "lint_baseline.json"


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, sorted for determinism."""
    seen = set()
    collected: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            collected.append(path)
    for path in collected:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            yield path


def parse_modules(paths: Sequence[Path],
                  repo_root: Optional[Path] = None
                  ) -> Tuple[List[SourceModule], List[Finding]]:
    """Parse every file; unparsable files become findings, not crashes."""
    repo_root = repo_root or default_repo_root()
    modules: List[SourceModule] = []
    errors: List[Finding] = []
    for path in iter_source_files(paths):
        try:
            display = path.resolve().relative_to(repo_root).as_posix()
        except ValueError:
            display = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(SourceModule(display, source))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(Finding(
                path=display, line=getattr(exc, "lineno", None) or 1,
                code="REPRO-X001", checker="engine",
                message=f"cannot parse file: {type(exc).__name__}: {exc}"))
    return modules, errors


# --------------------------------------------------------------------- #
# running checkers
# --------------------------------------------------------------------- #

def run_checkers(modules: Sequence[SourceModule],
                 checkers: Sequence[Checker]) -> List[Finding]:
    """All unsuppressed findings, sorted by (path, line, code)."""
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    for checker in checkers:
        for module in modules:
            findings.extend(checker.check_module(module))
        findings.extend(checker.check_project(modules))
    kept = [finding for finding in findings
            if not (finding.path in by_path
                    and by_path[finding.path].suppresses(finding))]
    return sorted(set(kept), key=lambda f: (f.path, f.line, f.code,
                                            f.message))


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #

def load_baseline(path: Path) -> Dict[Tuple[str, str, str], int]:
    """Baseline as a multiset of finding keys (missing file = empty)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable lint baseline {path}: {exc}") from exc
    counts: Dict[Tuple[str, str, str], int] = {}
    for entry in payload.get("findings", []):
        key = (entry["path"], entry["code"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def baseline_payload(findings: Iterable[Finding]) -> Dict[str, Any]:
    """Deterministic JSON payload for the baseline file.

    Stable ordering and stable keys so a regenerated baseline diffs
    cleanly: entries sorted by ``(path, code, message)``, duplicates
    collapsed into a ``count``.
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    for finding in findings:
        counts[finding.key] = counts.get(finding.key, 0) + 1
    entries = []
    for (path, code, message) in sorted(counts):
        entry: Dict[str, Any] = {"path": path, "code": code,
                                 "message": message}
        if counts[(path, code, message)] > 1:
            entry["count"] = counts[(path, code, message)]
        entries.append(entry)
    return {"version": BASELINE_VERSION, "findings": entries}


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = baseline_payload(findings)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(findings: Sequence[Finding],
                   baseline: Dict[Tuple[str, str, str], int]
                   ) -> Tuple[List[Finding], List[Finding], int]:
    """Split findings into (new, baselined); also count stale entries.

    Matching is multiset consumption: a baseline entry with count N
    absorbs at most N identical findings; the N+1st is new.  Baseline
    entries nothing matched are *stale* — reported informationally so
    ``--fix-baseline`` runs stay honest, never a failure.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        left = remaining.get(finding.key, 0)
        if left > 0:
            remaining[finding.key] = left - 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = sum(count for count in remaining.values() if count > 0)
    return new, baselined, stale


@dataclass
class LintReport:
    """Everything one lint run produced, pre-split against the baseline."""

    findings: List[Finding]
    new: List[Finding]
    baselined: List[Finding]
    stale_baseline: int

    @property
    def failed(self) -> bool:
        return bool(self.new)

    def as_json(self) -> Dict[str, Any]:
        baselined_keys: Dict[Tuple[str, str, str], int] = {}
        for finding in self.baselined:
            key = finding.key
            baselined_keys[key] = baselined_keys.get(key, 0) + 1
        rendered = []
        for finding in self.findings:
            left = baselined_keys.get(finding.key, 0)
            is_baselined = left > 0
            if is_baselined:
                baselined_keys[finding.key] = left - 1
            rendered.append(finding.as_json(baselined=is_baselined))
        return {
            "version": 1,
            "summary": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale_baseline": self.stale_baseline,
            },
            "findings": rendered,
        }


def build_report(findings: Sequence[Finding],
                 baseline: Dict[Tuple[str, str, str], int]) -> LintReport:
    new, baselined, stale = apply_baseline(findings, baseline)
    return LintReport(findings=list(findings), new=new,
                      baselined=baselined, stale_baseline=stale)
