"""Checker 4: ``except Exception`` bodies that swallow errors silently.

A broad handler whose whole body is ``pass`` (or a bare ``continue``)
erases the error *and* the fact that anything happened.  Teardown paths
legitimately ignore failures — but they must at least say so on stderr
(see ``repro.fl.executor._note_swallowed``) or carry an explicit
``# lint: allow[swallow]`` on the ``except`` line.

Codes
-----
* ``REPRO-E401`` — ``except Exception:``/bare ``except:`` whose body is
  only ``pass``.
* ``REPRO-E402`` — same, with a bare ``continue`` (silently skips the
  iteration).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .engine import Checker, Finding, SourceModule, dotted_name

__all__ = ["SwallowChecker"]

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:  # bare ``except:``
        return True
    if isinstance(annotation, ast.Tuple):
        return any(_is_broad(element) for element in annotation.elts)
    dotted = dotted_name(annotation)
    if dotted is None:
        return False
    return dotted.rsplit(".", 1)[-1] in _BROAD


class SwallowChecker(Checker):
    name = "swallow"

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not _is_broad(handler.type):
                    continue
                body = handler.body
                if all(isinstance(stmt, ast.Pass) for stmt in body):
                    yield Finding(
                        path=module.path, line=handler.lineno,
                        code="REPRO-E401", checker=self.name,
                        severity="warning",
                        message=("broad exception handler swallows "
                                 "errors silently (body is only "
                                 "'pass'); log, narrow, or re-raise"))
                elif (len(body) == 1
                      and isinstance(body[0], ast.Continue)):
                    yield Finding(
                        path=module.path, line=handler.lineno,
                        code="REPRO-E402", checker=self.name,
                        severity="warning",
                        message=("broad exception handler silently "
                                 "skips the iteration (body is a bare "
                                 "'continue'); log, narrow, or "
                                 "re-raise"))
