"""Checker 2: the wire-kind mapping must stay total across the layers.

The worker-resident backends speak ``(kind, payload)`` messages across
three layers: :mod:`repro.fl.codec` (framing + delta gating),
:mod:`repro.fl.transport` (shard-server loop + handshake) and
:mod:`repro.fl.executor` (dispatch/collect + worker loops).  Historically
a kind added in one layer but not the others surfaced only as a runtime
``MalformedMessage``/``ProtocolError`` under a fuzzer.  This checker
pins the mapping to one canonical table — ``WIRE_KINDS`` in
``codec.py`` — and cross-checks every usage site against it.

A *usage site* is any of:

* a comparison against a kind-carrying name (``kind == "run"``,
  ``control in ("bye", "shutdown")``; the names ``kind``, ``wire_kind``
  and ``control`` are recognized);
* a ``kind=...`` keyword argument;
* any reference to a ``KIND_*`` constant (attribute or bare name) — the
  registry adoption replaces raw literals with these, and this rule
  keeps resolving them;
* a top-level ``KIND_* = "literal"`` definition in the registry module.

Codes
-----
* ``REPRO-W201`` — registry missing or malformed (non-literal keys,
  unknown role values).
* ``REPRO-W202`` — a usage site names a kind that is not registered in
  ``WIRE_KINDS`` (this is what fires when a kind is deleted from the
  registry while any layer still speaks it, or when a new kind is
  introduced in one layer only).
* ``REPRO-W203`` — a kind spelled as a raw string literal in a
  non-registry layer (warning; use the ``KIND_*`` constant).
* ``REPRO-W204`` — a registered kind no layer references (dead registry
  entry — delete it or wire it up).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .engine import Checker, Finding, SourceModule, dotted_name

__all__ = ["WireKindChecker"]

#: Names whose comparisons carry message kinds.
_KIND_NAMES = frozenset({"kind", "wire_kind", "control"})

#: Accepted registry role values.
_ROLES = frozenset({"control", "request", "reply"})


def _top_level_assigns(tree: ast.Module) -> Iterator[Tuple[str, ast.expr,
                                                           int]]:
    """Yield ``(name, value, lineno)`` for simple top-level assignments.

    Covers both ``NAME = value`` and annotated ``NAME: T = value`` forms
    (the registry itself is ``WIRE_KINDS: Dict[str, str] = {...}``).
    """
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            yield node.targets[0].id, node.value, node.lineno
        elif (isinstance(node, ast.AnnAssign)
              and isinstance(node.target, ast.Name)
              and node.value is not None):
            yield node.target.id, node.value, node.lineno


class _Site:
    """One place a kind is spoken: (module, line, kind, how)."""

    __slots__ = ("module", "line", "kind", "literal", "definition")

    def __init__(self, module: SourceModule, line: int, kind: str,
                 literal: bool, definition: bool = False) -> None:
        self.module = module
        self.line = line
        self.kind = kind
        self.literal = literal
        self.definition = definition


class WireKindChecker(Checker):
    name = "wire"

    def __init__(self, registry_module: str = "codec.py",
                 registry_name: str = "WIRE_KINDS",
                 layers: frozenset = frozenset({"codec.py", "transport.py",
                                                "executor.py"})) -> None:
        self.registry_module = registry_module
        self.registry_name = registry_name
        self.layers = frozenset(layers) | {registry_module}

    # ------------------------------------------------------------------ #
    def check_project(self,
                      modules: Sequence[SourceModule]) -> Iterator[Finding]:
        layer_modules = [m for m in modules if m.name in self.layers]
        registry_mods = [m for m in layer_modules
                         if m.name == self.registry_module]
        if not registry_mods:
            # No codec in the linted set (e.g. a partial run): nothing
            # to cross-check against.
            return
        registry_mod = registry_mods[0]
        constants = self._kind_constants(registry_mod)
        registry, registry_findings = self._load_registry(registry_mod,
                                                          constants)
        yield from registry_findings
        if registry is None:
            return

        sites: List[_Site] = []
        for module in layer_modules:
            sites.extend(self._collect_sites(module, constants))

        referenced = set()
        for site in sites:
            if not site.definition:
                referenced.add(site.kind)
            if site.kind not in registry:
                yield Finding(
                    path=site.module.path, line=site.line,
                    code="REPRO-W202", checker=self.name, severity="error",
                    message=(f"message kind '{site.kind}' is not in "
                             f"codec.{self.registry_name}; register it "
                             f"or fix the kind"))
            elif site.literal and site.module.name != self.registry_module:
                yield Finding(
                    path=site.module.path, line=site.line,
                    code="REPRO-W203", checker=self.name,
                    severity="warning",
                    message=(f"message kind '{site.kind}' spelled as a "
                             f"raw string literal; use the KIND_* "
                             f"constant from codec"))
        for kind in sorted(set(registry) - referenced):
            yield Finding(
                path=registry_mod.path, line=registry[kind][1],
                code="REPRO-W204", checker=self.name, severity="error",
                message=(f"kind '{kind}' is registered in "
                         f"{self.registry_name} but never referenced in "
                         f"any wire layer (dead entry — delete it or "
                         f"wire it up)"))

    # ------------------------------------------------------------------ #
    @staticmethod
    def _kind_constants(module: SourceModule) -> Dict[str, str]:
        """Top-level ``KIND_* = "literal"`` constants of the registry."""
        constants: Dict[str, str] = {}
        for name, value, _ in _top_level_assigns(module.tree):
            if (name.startswith("KIND_") and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                constants[name] = value.value
        return constants

    def _load_registry(self, module: SourceModule,
                       constants: Dict[str, str]
                       ) -> Tuple[Optional[Dict[str, Tuple[str, int]]],
                                  List[Finding]]:
        """Parse ``WIRE_KINDS = {...}`` into ``{kind: (role, line)}``."""
        findings: List[Finding] = []
        for name, value_node, lineno in _top_level_assigns(module.tree):
            if name != self.registry_name:
                continue
            if not isinstance(value_node, ast.Dict):
                findings.append(Finding(
                    path=module.path, line=lineno, code="REPRO-W201",
                    checker=self.name,
                    message=(f"{self.registry_name} must be a literal "
                             f"dict of kind -> role")))
                return None, findings
            registry: Dict[str, Tuple[str, int]] = {}
            for key, value in zip(value_node.keys, value_node.values):
                kind = self._resolve_kind_expr(key, constants)
                if kind is None:
                    findings.append(Finding(
                        path=module.path,
                        line=(key or value).lineno, code="REPRO-W201",
                        checker=self.name,
                        message=(f"{self.registry_name} keys must be "
                                 f"string literals or KIND_* constants")))
                    continue
                role = (value.value
                        if isinstance(value, ast.Constant) else None)
                if role not in _ROLES:
                    findings.append(Finding(
                        path=module.path, line=value.lineno,
                        code="REPRO-W201", checker=self.name,
                        message=(f"kind '{kind}' has role {role!r}; "
                                 f"expected one of "
                                 f"{sorted(_ROLES)}")))
                registry[kind] = (role if isinstance(role, str) else "?",
                                  key.lineno if key is not None
                                  else value.lineno)
            return registry, findings
        findings.append(Finding(
            path=module.path, line=1, code="REPRO-W201",
            checker=self.name,
            message=(f"wire-kind registry {self.registry_name} not found "
                     f"in {self.registry_module} (every message kind "
                     f"must be registered)")))
        return None, findings

    @staticmethod
    def _resolve_kind_expr(node: Optional[ast.expr],
                           constants: Dict[str, str]) -> Optional[str]:
        """A kind expression -> its string, via literals or constants."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        dotted = dotted_name(node) if node is not None else None
        if dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            if tail in constants:
                return constants[tail]
        return None

    # ------------------------------------------------------------------ #
    def _collect_sites(self, module: SourceModule,
                       constants: Dict[str, str]) -> List[_Site]:
        sites: List[_Site] = []
        is_registry = module.name == self.registry_module
        registry_dict: Optional[ast.Dict] = None
        definition_lines = set()
        if is_registry:
            for name, value_node, lineno in _top_level_assigns(module.tree):
                if name == self.registry_name:
                    registry_dict = (value_node
                                     if isinstance(value_node, ast.Dict)
                                     else None)
                elif name.startswith("KIND_"):
                    definition_lines.add(lineno)
                    kind = constants.get(name)
                    if kind is not None:
                        sites.append(_Site(module, lineno, kind,
                                           literal=False, definition=True))
        registry_nodes = (set(ast.walk(registry_dict))
                          if registry_dict is not None else set())

        for node in ast.walk(module.tree):
            if node in registry_nodes:
                continue
            if isinstance(node, ast.Compare):
                sites.extend(self._compare_sites(module, node, constants))
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "kind":
                        resolved = self._site_kind(keyword.value, constants)
                        if resolved is not None:
                            sites.append(_Site(module, keyword.value.lineno,
                                               *resolved))
            elif (isinstance(node, (ast.Name, ast.Attribute))
                  and not isinstance(getattr(node, "ctx", None), ast.Store)):
                dotted = dotted_name(node)
                tail = (dotted.rsplit(".", 1)[-1]
                        if dotted is not None else None)
                if tail is not None and tail.startswith("KIND_"):
                    if node.lineno in definition_lines:
                        continue
                    if tail in constants:
                        sites.append(_Site(module, node.lineno,
                                           constants[tail], literal=False))
                    else:
                        # A KIND_* reference with no backing constant:
                        # surface it as an unknown kind (Python itself
                        # would NameError, but the lint runs first).
                        sites.append(_Site(module, node.lineno,
                                           tail, literal=False))
        return sites

    def _compare_sites(self, module: SourceModule, node: ast.Compare,
                       constants: Dict[str, str]) -> Iterator[_Site]:
        operands = [node.left] + list(node.comparators)
        if not any(self._is_kind_ref(operand) for operand in operands):
            return
        for operand, op in zip(node.comparators, node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                resolved = self._site_kind(operand, constants)
                if resolved is not None:
                    yield _Site(module, operand.lineno, *resolved)
            elif isinstance(op, (ast.In, ast.NotIn)):
                if isinstance(operand, (ast.Tuple, ast.List, ast.Set)):
                    for element in operand.elts:
                        resolved = self._site_kind(element, constants)
                        if resolved is not None:
                            yield _Site(module, element.lineno, *resolved)
        # ``"run" == kind`` (reversed operands)
        first = node.left
        if (not self._is_kind_ref(first)
                and any(self._is_kind_ref(c) for c in node.comparators)):
            resolved = self._site_kind(first, constants)
            if resolved is not None:
                yield _Site(module, first.lineno, *resolved)

    @staticmethod
    def _is_kind_ref(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _KIND_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in _KIND_NAMES
        return False

    def _site_kind(self, node: ast.expr, constants: Dict[str, str]
                   ) -> Optional[Tuple[str, bool]]:
        """Resolve one expression to ``(kind, was_literal)`` or None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, True
        dotted = dotted_name(node)
        if dotted is not None:
            tail = dotted.rsplit(".", 1)[-1]
            if tail in constants:
                return constants[tail], False
        return None
