"""Checker 3: no blocking calls on the shard-server event-loop thread.

:class:`repro.fl.transport.ShardServer` multiplexes every parent
session over one ``selectors`` loop; a single blocking call on that
thread (a ``time.sleep``, a blocking ``recv``/``sendall``/``accept``, a
file read) stalls *every* tenant's heartbeats and handshakes at once —
exactly the class of bug the ``settimeout(None)`` wedge fixed in PR 8.

The walk is a bounded call-graph over one module (``transport.py`` by
default):

* *loop classes* are classes that create or poll a selector
  (``selectors.DefaultSelector()`` / ``.select(...)``);
* methods handed to ``threading.Thread(target=...)`` run on another
  thread and are excluded, together with everything only they reach;
* classes *constructed* inside loop-reachable code (e.g. the
  per-connection state machines) join the walk, so their methods are
  loop code too;
* a socket is considered non-blocking once ``setblocking(False)`` or a
  finite ``settimeout(...)`` is applied to it (assignment aliases of
  the form ``self.x = sock`` are followed), which is what "without a
  deadline" means statically.

Codes
-----
* ``REPRO-B301`` — ``time.sleep`` on the loop thread.
* ``REPRO-B302`` — blocking socket call (``accept``/``recv``/
  ``recv_into``/``recvfrom``/``sendall``/``sendmsg``/``connect``) on a
  socket never marked non-blocking and never given a deadline.
* ``REPRO-B303`` — file I/O (``open``/``os.open``/``io.open``) on the
  loop thread.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .engine import (Checker, Finding, SourceModule, dotted_name,
                     resolve_call_name)

__all__ = ["EventLoopChecker"]

_BLOCKING_SOCKET_METHODS = frozenset({
    "accept", "recv", "recv_into", "recvfrom", "recvmsg",
    "sendall", "sendmsg", "connect",
})

_FILE_IO = frozenset({"open", "io.open", "os.open"})


def _function_defs(tree: ast.Module
                   ) -> Tuple[Dict[str, ast.FunctionDef],
                              Dict[str, Dict[str, ast.FunctionDef]]]:
    """(module-level functions, class -> {method name -> def})."""
    functions: Dict[str, ast.FunctionDef] = {}
    classes: Dict[str, Dict[str, ast.FunctionDef]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            methods: Dict[str, ast.FunctionDef] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    methods[item.name] = item
            classes[node.name] = methods
    return functions, classes


class EventLoopChecker(Checker):
    name = "event-loop"

    def __init__(self, targets: frozenset = frozenset({"transport.py"})
                 ) -> None:
        self.targets = frozenset(targets)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        if module.name not in self.targets:
            return
        aliases = module.aliases
        functions, classes = _function_defs(module.tree)

        loop_classes = {name for name, methods in classes.items()
                        if any(self._uses_selector(body, aliases)
                               for body in methods.values())}
        if not loop_classes:
            return

        # Methods offloaded to worker threads (threading.Thread(target=…))
        # run off the loop; everything only they reach is out of scope.
        offloaded: Set[Tuple[str, str]] = set()
        for cls in loop_classes:
            for method in classes[cls].values():
                for target in self._thread_targets(method, aliases):
                    offloaded.add((cls, target))

        reachable: Set[Tuple[str, str]] = set()
        owned_classes: Set[str] = set(loop_classes)
        worklist: List[Tuple[str, str]] = []
        for cls in loop_classes:
            for name in classes[cls]:
                if (cls, name) not in offloaded:
                    worklist.append((cls, name))

        while worklist:
            cls, name = worklist.pop()
            if (cls, name) in reachable:
                continue
            defs = classes.get(cls) if cls else functions
            body = defs.get(name) if defs else None
            if body is None:
                continue
            reachable.add((cls, name))
            for call in (n for n in ast.walk(body)
                         if isinstance(n, ast.Call)):
                callee = call.func
                if isinstance(callee, ast.Name):
                    if callee.id in classes:
                        # Constructing a same-module class from loop
                        # code: its methods become loop code.
                        if callee.id not in owned_classes:
                            owned_classes.add(callee.id)
                        worklist.append((callee.id, "__init__"))
                    elif callee.id in functions:
                        worklist.append(("", callee.id))
                elif isinstance(callee, ast.Attribute):
                    dotted = dotted_name(callee)
                    if dotted is not None and dotted.startswith("self."):
                        if dotted.count(".") == 1 and cls:
                            worklist.append((cls, callee.attr))
                            continue
                    # A method call on some object: conservatively
                    # follow it into every loop-owned class defining it.
                    for owner in sorted(owned_classes):
                        if (callee.attr in classes.get(owner, {})
                                and (owner, callee.attr) not in offloaded):
                            worklist.append((owner, callee.attr))

        nonblocking = self._nonblocking_receivers(classes, owned_classes)
        seen: Set[Tuple[int, str]] = set()
        for cls, name in sorted(reachable):
            defs = classes.get(cls) if cls else functions
            body = defs.get(name)
            if body is None:
                continue
            for finding in self._scan_function(module, cls or "<module>",
                                               name, body, aliases,
                                               nonblocking):
                marker = (finding.line, finding.code)
                if marker not in seen:
                    seen.add(marker)
                    yield finding

    # ------------------------------------------------------------------ #
    @staticmethod
    def _uses_selector(body: ast.AST, aliases: Dict[str, str]) -> bool:
        for node in ast.walk(body):
            if isinstance(node, ast.Call):
                name = resolve_call_name(node.func, aliases)
                if name is not None and name.startswith("selectors."):
                    return True
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "select"
                        and dotted_name(node.func) not in (None,)
                        and "selector" in (dotted_name(node.func) or "")):
                    return True
        return False

    @staticmethod
    def _thread_targets(body: ast.AST,
                        aliases: Dict[str, str]) -> Iterator[str]:
        for node in ast.walk(body):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, aliases)
            if name not in ("threading.Thread", "Thread"):
                continue
            for keyword in node.keywords:
                if keyword.arg == "target":
                    dotted = dotted_name(keyword.value)
                    if dotted is not None and "." in dotted:
                        yield dotted.rsplit(".", 1)[-1]

    @staticmethod
    def _nonblocking_receivers(classes: Dict[str, Dict[str,
                                                       ast.FunctionDef]],
                               owned: Set[str]) -> Set[str]:
        """Dotted receivers proven non-blocking (or deadline-bounded).

        ``sock.setblocking(False)``/``sock.settimeout(5)`` clears
        ``sock``; a subsequent ``self.x = sock`` clears ``self.x`` too.
        The scan covers every method of the loop-owned classes
        (``__init__`` included — that is where sockets are configured).
        """
        cleared: Set[str] = set()
        assignments: List[Tuple[str, str]] = []
        for cls in owned:
            for method in classes.get(cls, {}).values():
                for node in ast.walk(method):
                    if isinstance(node, ast.Call) and isinstance(
                            node.func, ast.Attribute):
                        receiver = dotted_name(node.func.value)
                        if receiver is None:
                            continue
                        if node.func.attr == "setblocking":
                            args = node.args
                            if (args
                                    and isinstance(args[0], ast.Constant)
                                    and args[0].value is False):
                                cleared.add(receiver)
                        elif node.func.attr == "settimeout":
                            args = node.args
                            if args and not (
                                    isinstance(args[0], ast.Constant)
                                    and args[0].value is None):
                                cleared.add(receiver)
                    elif isinstance(node, ast.Assign):
                        value = dotted_name(node.value)
                        if value is None:
                            continue
                        for target in node.targets:
                            target_name = dotted_name(target)
                            if target_name is not None:
                                assignments.append((target_name, value))
        # One propagation pass is enough for the ``self.x = sock`` idiom.
        for _ in range(2):
            for target_name, value in assignments:
                if value in cleared:
                    cleared.add(target_name)
        return cleared

    def _scan_function(self, module: SourceModule, cls: str, name: str,
                       body: ast.AST, aliases: Dict[str, str],
                       nonblocking: Set[str]) -> Iterator[Finding]:
        where = f"{cls}.{name}" if cls != "<module>" else name
        for node in ast.walk(body):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node.func, aliases)
            if dotted == "time.sleep":
                yield Finding(
                    path=module.path, line=node.lineno, code="REPRO-B301",
                    checker=self.name,
                    message=(f"time.sleep() in {where} runs on the "
                             f"event-loop thread and stalls every "
                             f"session; use a selector deadline"))
            elif dotted in _FILE_IO:
                yield Finding(
                    path=module.path, line=node.lineno, code="REPRO-B303",
                    checker=self.name,
                    message=(f"file I/O ({dotted}) in {where} runs on "
                             f"the event-loop thread; move it off the "
                             f"loop or behind the worker"))
            elif (isinstance(node.func, ast.Attribute)
                  and node.func.attr in _BLOCKING_SOCKET_METHODS):
                receiver = dotted_name(node.func.value)
                if receiver is not None and receiver in nonblocking:
                    continue
                label = receiver or "<expression>"
                yield Finding(
                    path=module.path, line=node.lineno, code="REPRO-B302",
                    checker=self.name,
                    message=(f"blocking socket call "
                             f"{label}.{node.func.attr}() in {where} "
                             f"has no deadline and runs on the "
                             f"event-loop thread (setblocking(False) "
                             f"or settimeout(...) first)"))
