"""Checker 5: resource acquisitions must be released on every path.

Shared-memory blocks leak into ``/dev/shm`` past process death, sockets
hold ports and peer state, delta-encoder bases desynchronize a wire
conversation when they outlive their transport.  An acquisition is
accepted when the code visibly hands its lifetime to something:

* it is the context expression of a ``with`` block;
* it happens anywhere inside a ``try`` that has a ``finally``;
* it is stored on ``self`` (directly, tuple-unpacked, or passed into a
  call rooted at ``self``, e.g. ``self._published.append(shm)``) *and*
  the enclosing class defines a teardown method (``close``/``stop``/
  ``shutdown``/``release``/``__exit__``/``__del__``);
* its name escapes the function (returned, or passed to another call —
  ownership transferred to the caller/wrapper);
* its name visibly receives a teardown call (``close``/``release``/…)
  later in the function — the ``x = acquire(); try: … finally:
  x.close()`` idiom acquires *before* the try.

Everything else is ``REPRO-R501``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .engine import Checker, Finding, SourceModule, resolve_call_name

__all__ = ["ResourceChecker", "DEFAULT_RESOURCE_CALLS"]

#: Canonical call-name suffixes that acquire a resource.
DEFAULT_RESOURCE_CALLS = frozenset({
    "SharedMemory",
    "socket.socket",
    "socket.create_connection",
    "socket.socketpair",
    "DeltaEncoderState",
})

_TEARDOWN_METHODS = frozenset({
    "close", "stop", "shutdown", "release", "__exit__", "__del__",
})


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_self_rooted(node: ast.expr) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


class ResourceChecker(Checker):
    name = "resource"

    def __init__(self,
                 resource_calls: frozenset = DEFAULT_RESOURCE_CALLS
                 ) -> None:
        self.resource_calls = frozenset(resource_calls)

    def check_module(self, module: SourceModule) -> Iterator[Finding]:
        aliases = module.aliases
        parents = _parent_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            label = self._resource_label(node, aliases)
            if label is None:
                continue
            if self._is_managed(node, parents):
                continue
            yield Finding(
                path=module.path, line=node.lineno, code="REPRO-R501",
                checker=self.name, severity="warning",
                message=(f"{label}(...) acquired without an enclosing "
                         f"'with'/'try/finally', an instance teardown "
                         f"hook, or an ownership hand-off; it leaks on "
                         f"the error path"))

    # ------------------------------------------------------------------ #
    def _resource_label(self, node: ast.Call,
                        aliases: Dict[str, str]) -> Optional[str]:
        name = resolve_call_name(node.func, aliases)
        if name is None:
            return None
        for candidate in self.resource_calls:
            if name == candidate or name.endswith("." + candidate):
                return name.rsplit(".", 1)[-1] if "." in name else name
            # Suffix classes (``SharedMemory``) match any dotted spelling.
            if ("." not in candidate
                    and name.rsplit(".", 1)[-1] == candidate):
                return candidate
        return None

    # ------------------------------------------------------------------ #
    def _is_managed(self, node: ast.Call,
                    parents: Dict[ast.AST, ast.AST]) -> bool:
        # Walk up: with-statements, try/finally, the assignment target,
        # the enclosing function and class.
        child: ast.AST = node
        assign: Optional[ast.Assign] = None
        enclosing_call: Optional[ast.Call] = None
        function: Optional[ast.AST] = None
        cls: Optional[ast.ClassDef] = None
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.withitem):
                return True
            if isinstance(current, ast.Try) and current.finalbody:
                return True
            if isinstance(current, ast.Assign) and assign is None:
                assign = current
            if (isinstance(current, ast.Call) and current is not node
                    and enclosing_call is None):
                enclosing_call = current
            if isinstance(current, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                if function is None:
                    function = current
            if isinstance(current, ast.ClassDef) and cls is None:
                cls = current
            child = current
            current = parents.get(current)

        has_teardown = cls is not None and any(
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name in _TEARDOWN_METHODS for item in cls.body)

        # ``self._things.append(resource)`` / ``self.x = wrap(resource)``:
        # the instance owns it — accepted when the class can tear down.
        if enclosing_call is not None and has_teardown:
            if _is_self_rooted(enclosing_call.func):
                return True
        if assign is not None:
            for target in assign.targets:
                for element in (target.elts
                                if isinstance(target, ast.Tuple)
                                else [target]):
                    if isinstance(element, (ast.Attribute, ast.Subscript)):
                        if _is_self_rooted(element) and has_teardown:
                            return True
            # Plain-name assignment: accepted when the name escapes the
            # function (returned or handed to another call — ownership
            # moved on), or when the function visibly tears it down
            # (the ``x = acquire(); try: … finally: x.close()`` idiom
            # acquires *before* the try).
            names = self._assigned_names(assign)
            if names and function is not None:
                if self._name_escapes(function, names, assign):
                    return True
                if self._name_torn_down(function, names):
                    return True
        if enclosing_call is not None and assign is None:
            # Used directly as an argument (``MessageChannel(
            # socket.create_connection(...))``): the wrapper owns it.
            return True
        return False

    @staticmethod
    def _assigned_names(assign: ast.Assign) -> Set[str]:
        names: Set[str] = set()
        for target in assign.targets:
            elements = (target.elts if isinstance(target, ast.Tuple)
                        else [target])
            for element in elements:
                if isinstance(element, ast.Name):
                    names.add(element.id)
        return names

    @staticmethod
    def _name_torn_down(function: ast.AST, names: Set[str]) -> bool:
        for node in ast.walk(function):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TEARDOWN_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in names):
                return True
        return False

    @staticmethod
    def _name_escapes(function: ast.AST, names: Set[str],
                      assign: ast.Assign) -> bool:
        for node in ast.walk(function):
            if isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id in names:
                        return True
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        if (isinstance(sub, ast.Name)
                                and sub.id in names
                                and isinstance(sub.ctx, ast.Load)):
                            return True
        return False
