"""Static analysis for the repro substrate (``repro lint``).

AST-based invariant checkers that make the substrate's hand-maintained
guarantees machine-checkable at CI time instead of fuzzer-discovered at
runtime:

* :mod:`~repro.analysis.determinism` — no nondeterminism sources in the
  bit-identical backends' modules;
* :mod:`~repro.analysis.wire_kinds` — the wire message-kind mapping is
  total across codec/transport/executor (``codec.WIRE_KINDS``);
* :mod:`~repro.analysis.event_loop` — no blocking calls on the shard
  server's event-loop thread;
* :mod:`~repro.analysis.swallow` — no silent ``except Exception: pass``;
* :mod:`~repro.analysis.resources` — resources released on all paths.

The engine (:mod:`~repro.analysis.engine`) is stdlib-only — no numpy —
so the lint gate can run in a bare interpreter.
"""

from .determinism import DeterminismChecker
from .engine import (Checker, Finding, LintReport, SourceModule,
                     load_baseline, run_checkers, write_baseline)
from .event_loop import EventLoopChecker
from .resources import ResourceChecker
from .swallow import SwallowChecker
from .wire_kinds import WireKindChecker

__all__ = [
    "Checker",
    "Finding",
    "LintReport",
    "SourceModule",
    "DeterminismChecker",
    "WireKindChecker",
    "EventLoopChecker",
    "SwallowChecker",
    "ResourceChecker",
    "default_checkers",
    "load_baseline",
    "run_checkers",
    "write_baseline",
]


def default_checkers():
    """The checker set ``repro lint`` runs, in reporting order."""
    return [
        DeterminismChecker(),
        WireKindChecker(),
        EventLoopChecker(),
        SwallowChecker(),
        ResourceChecker(),
    ]
