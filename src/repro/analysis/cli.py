"""``repro lint`` command: run the checkers, gate on the baseline.

Exit codes: ``0`` — no findings beyond the committed baseline (or the
baseline was regenerated with ``--fix-baseline``); ``1`` — new
findings; ``2`` — usage or I/O errors.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import default_checkers
from .engine import (build_report, default_baseline_path,
                     default_package_root, load_baseline, parse_modules,
                     run_checkers, write_baseline)

__all__ = ["run_lint"]


def run_lint(paths: Sequence[str] = (), output_format: str = "text",
             baseline: Optional[str] = None, fix_baseline: bool = False,
             output: Optional[str] = None) -> int:
    """Run the full checker set and report against the baseline."""
    targets = ([Path(p) for p in paths] if paths
               else [default_package_root()])
    for target in targets:
        if not target.exists():
            print(f"error: no such path: {target}", file=sys.stderr)
            return 2
    baseline_path = (Path(baseline) if baseline is not None
                     else default_baseline_path())

    modules, parse_errors = parse_modules(targets)
    findings = list(parse_errors)
    findings.extend(run_checkers(modules, default_checkers()))
    findings.sort(key=lambda f: (f.path, f.line, f.code, f.message))

    if fix_baseline:
        write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    try:
        baseline_counts = load_baseline(baseline_path)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = build_report(findings, baseline_counts)

    if output_format == "json":
        text = json.dumps(report.as_json(), indent=2, sort_keys=True)
    else:
        text = _render_text(report)
    if output:
        Path(output).write_text(text + "\n", encoding="utf-8")
    try:
        print(text)
    except BrokenPipeError:
        # Downstream pager/head hung up; the exit code still stands.
        try:
            sys.stdout.close()
        except OSError:
            pass
    return 1 if report.failed else 0


def _render_text(report) -> str:
    lines: List[str] = [finding.render() for finding in report.new]
    summary = (f"{len(report.findings)} finding(s): "
               f"{len(report.new)} new, "
               f"{len(report.baselined)} baselined")
    if report.stale_baseline:
        summary += (f" ({report.stale_baseline} stale baseline entr"
                    f"{'y' if report.stale_baseline == 1 else 'ies'} — "
                    f"regenerate with 'repro lint --fix-baseline')")
    lines.append(summary)
    return "\n".join(lines)
