"""Analytical training-cost model (paper Sec. IV-B, resource-based profiling).

The paper models a straggler's per-cycle training time as

    Te = W / Ccpu + M / Vmc + M / Bn

where ``W`` is the training computation workload, ``M`` the memory usage,
``Ccpu`` the device computation bandwidth, ``Vmc`` the memory transfer
speed and ``Bn`` the communication bandwidth.  This module evaluates that
expression from a :class:`~repro.nn.flops.ModelCost` and a
:class:`~repro.hardware.device.DeviceProfile`, including the effect of
Helios' per-layer neuron fractions (the expected model volume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..nn.flops import ModelCost, estimate_model_cost
from ..nn.model import Sequential
from .device import DeviceProfile

__all__ = ["TrainingCostEstimate", "TrainingCostModel"]


@dataclass(frozen=True)
class TrainingCostEstimate:
    """Breakdown of one local training cycle on one device."""

    device_name: str
    workload_gflops: float
    memory_mb: float
    compute_seconds: float
    memory_seconds: float
    communication_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total per-cycle time ``Te``."""
        return (self.compute_seconds + self.memory_seconds
                + self.communication_seconds)

    @property
    def total_minutes(self) -> float:
        """Total per-cycle time in minutes (the unit of the paper's Table I)."""
        return self.total_seconds / 60.0


class TrainingCostModel:
    """Estimate local-training-cycle time for a model/workload on a device.

    Parameters
    ----------
    model:
        The model being trained locally.
    input_shape:
        Shape of one input sample, e.g. ``(3, 32, 32)``.
    samples_per_cycle:
        Number of training samples processed in one local training cycle
        (local epochs x local dataset size).
    batch_size:
        Mini-batch size; the memory term scales with it.
    """

    def __init__(self, model: Sequential, input_shape: Tuple[int, ...],
                 samples_per_cycle: int, batch_size: int = 32) -> None:
        if samples_per_cycle <= 0:
            raise ValueError("samples_per_cycle must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.input_shape = tuple(input_shape)
        self.samples_per_cycle = samples_per_cycle
        self.batch_size = batch_size
        self._full_cost = estimate_model_cost(model, self.input_shape)

    # ------------------------------------------------------------------ #
    @property
    def full_model_cost(self) -> ModelCost:
        """Cost of the unshrunk model (cached)."""
        return self._full_cost

    def model_cost(self, neuron_fractions: Optional[Dict[str, float]] = None
                   ) -> ModelCost:
        """Cost of the model, optionally shrunk to per-layer neuron fractions."""
        if not neuron_fractions:
            return self._full_cost
        return estimate_model_cost(self.model, self.input_shape,
                                   neuron_fractions=neuron_fractions)

    def workload_gflops(self, neuron_fractions: Optional[Dict[str, float]] = None
                        ) -> float:
        """Training workload ``W`` for one local cycle, in GFLOPs."""
        cost = self.model_cost(neuron_fractions)
        return cost.training_gflops(self.samples_per_cycle)

    def memory_megabytes(self, neuron_fractions: Optional[Dict[str, float]] = None
                         ) -> float:
        """Training memory usage ``M`` in MB."""
        cost = self.model_cost(neuron_fractions)
        return cost.memory_megabytes(self.batch_size)

    # ------------------------------------------------------------------ #
    def estimate(self, device: DeviceProfile,
                 neuron_fractions: Optional[Dict[str, float]] = None
                 ) -> TrainingCostEstimate:
        """Evaluate ``Te = W/Ccpu + M/Vmc + M/Bn`` on ``device``."""
        cost = self.model_cost(neuron_fractions)
        workload_flops = cost.training_flops * self.samples_per_cycle
        memory_bytes = cost.memory_bytes(self.batch_size)
        compute_seconds = workload_flops / device.compute_flops_per_second
        memory_seconds = memory_bytes / device.memory_bytes_per_second
        communication_seconds = (cost.parameter_bytes
                                 / device.network_bytes_per_second)
        return TrainingCostEstimate(
            device_name=device.name,
            workload_gflops=workload_flops / 1e9,
            memory_mb=memory_bytes / 1e6,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            communication_seconds=communication_seconds,
        )

    def fits_in_memory(self, device: DeviceProfile,
                       neuron_fractions: Optional[Dict[str, float]] = None
                       ) -> bool:
        """Whether the (possibly shrunk) model's footprint fits the device."""
        return self.memory_megabytes(neuron_fractions) <= device.memory_capacity_mb

    def volume_for_budget(self, device: DeviceProfile,
                          target_seconds: float,
                          min_fraction: float = 0.05,
                          tolerance: float = 1e-3) -> float:
        """Largest uniform neuron fraction whose cycle time fits ``target_seconds``.

        This implements the paper's optimization-target determination for
        the resource-profiling path: "select each layer with ``P_i n_i``
        neurons simultaneously until the model consumption approaches the
        resource constraints".  A uniform fraction is searched by bisection
        because per-cycle time is monotone in the fraction.
        """
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError("min_fraction must be in (0, 1]")
        full_time = self.estimate(device).total_seconds
        if full_time <= target_seconds:
            return 1.0
        layer_names = [layer.name for layer in self.model.neuron_layers()]

        def cycle_time(fraction: float) -> float:
            fractions = {name: fraction for name in layer_names}
            return self.estimate(device, fractions).total_seconds

        low, high = min_fraction, 1.0
        if cycle_time(low) > target_seconds:
            return min_fraction
        while high - low > tolerance:
            mid = 0.5 * (low + high)
            if cycle_time(mid) <= target_seconds:
                low = mid
            else:
                high = mid
        return low
