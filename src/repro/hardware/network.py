"""Parameter-exchange communication model.

The FL scheduler charges every device an upload and a download time per
aggregation cycle, computed from the number of parameter values it actually
exchanges (Helios stragglers upload only the selected neurons' parameters)
and the device's network bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceProfile

__all__ = ["CommunicationModel"]

BYTES_PER_VALUE = 4  # float32 on the wire


@dataclass
class CommunicationModel:
    """Simple bandwidth/latency model for parameter exchange.

    Attributes
    ----------
    per_message_latency_s:
        Fixed latency added to every upload or download (handshake,
        serialization).
    server_bandwidth_mbps:
        Aggregation-server downlink/uplink bandwidth; the effective rate of
        a transfer is the minimum of the device and server bandwidths.
    """

    per_message_latency_s: float = 0.05
    server_bandwidth_mbps: float = 1000.0

    def __post_init__(self) -> None:
        if self.per_message_latency_s < 0:
            raise ValueError("per_message_latency_s must be non-negative")
        if self.server_bandwidth_mbps <= 0:
            raise ValueError("server_bandwidth_mbps must be positive")

    def _effective_bytes_per_second(self, device: DeviceProfile) -> float:
        server_bps = self.server_bandwidth_mbps * 1e6 / 8.0
        return min(device.network_bytes_per_second, server_bps)

    def transfer_seconds(self, device: DeviceProfile,
                         num_values: float) -> float:
        """Time to move ``num_values`` float32 parameters one way."""
        if num_values < 0:
            raise ValueError("num_values must be non-negative")
        payload = num_values * BYTES_PER_VALUE
        return (self.per_message_latency_s
                + payload / self._effective_bytes_per_second(device))

    def round_trip_seconds(self, device: DeviceProfile,
                           upload_values: float,
                           download_values: float) -> float:
        """Upload + download time for one aggregation cycle."""
        return (self.transfer_seconds(device, upload_values)
                + self.transfer_seconds(device, download_values))
