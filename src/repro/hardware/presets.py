"""Device presets matching the paper's testbed.

The paper emulates its heterogeneous fleet with Jetson Nano boards whose
CPU/GPU bandwidth and memory are throttled to imitate a Jetson Nano (GPU and
CPU mode), an AWS DeepLens (GPU and CPU mode) and a Raspberry Pi.  The
effective-bandwidth numbers below are chosen so the analytical cost model
reproduces the *ordering and rough ratios* of the paper's Fig. 1 idle-time
example and Table I per-cycle training times (Nano CPU < Raspberry Pi <
DeepLens GPU < DeepLens CPU), which is what the experiments depend on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .device import DeviceProfile

__all__ = [
    "JETSON_NANO_GPU",
    "JETSON_NANO_CPU",
    "RASPBERRY_PI_4",
    "DEEPLENS_GPU",
    "DEEPLENS_CPU",
    "DEVICE_PRESETS",
    "get_device",
    "available_devices",
    "table1_stragglers",
    "build_fleet",
]


JETSON_NANO_GPU = DeviceProfile(
    name="jetson-nano-gpu",
    compute_gflops=230.0,
    memory_bandwidth_gbps=25.6,
    network_bandwidth_mbps=100.0,
    memory_capacity_mb=4096.0,
    has_gpu=True,
)

JETSON_NANO_CPU = DeviceProfile(
    name="jetson-nano-cpu",
    compute_gflops=14.0,
    memory_bandwidth_gbps=8.0,
    network_bandwidth_mbps=100.0,
    memory_capacity_mb=2048.0,
    has_gpu=False,
)

RASPBERRY_PI_4 = DeviceProfile(
    name="raspberry-pi-4",
    compute_gflops=12.0,
    memory_bandwidth_gbps=4.0,
    network_bandwidth_mbps=50.0,
    memory_capacity_mb=1024.0,
    has_gpu=False,
)

DEEPLENS_GPU = DeviceProfile(
    name="deeplens-gpu",
    compute_gflops=10.5,
    memory_bandwidth_gbps=3.0,
    network_bandwidth_mbps=30.0,
    memory_capacity_mb=1024.0,
    has_gpu=True,
)

DEEPLENS_CPU = DeviceProfile(
    name="deeplens-cpu",
    compute_gflops=8.4,
    memory_bandwidth_gbps=2.5,
    network_bandwidth_mbps=30.0,
    memory_capacity_mb=768.0,
    has_gpu=False,
)


DEVICE_PRESETS: Dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in (JETSON_NANO_GPU, JETSON_NANO_CPU, RASPBERRY_PI_4,
                    DEEPLENS_GPU, DEEPLENS_CPU)
}


def available_devices() -> Tuple[str, ...]:
    """Names accepted by :func:`get_device`."""
    return tuple(sorted(DEVICE_PRESETS))


def get_device(name: str) -> DeviceProfile:
    """Look up a device preset by name."""
    if name not in DEVICE_PRESETS:
        raise KeyError(
            f"unknown device {name!r}; available: {available_devices()}")
    return DEVICE_PRESETS[name]


def table1_stragglers() -> List[DeviceProfile]:
    """The four straggler profiles of the paper's Table I, in table order."""
    return [JETSON_NANO_CPU, RASPBERRY_PI_4, DEEPLENS_GPU, DEEPLENS_CPU]


def build_fleet(num_capable: int, num_stragglers: int) -> List[DeviceProfile]:
    """Build a fleet like the paper's experiment settings.

    Capable devices are Jetson Nano (GPU); stragglers cycle through the
    Table I profiles (Strag. 1 = Nano CPU, Strag. 2 = Raspberry Pi,
    Strag. 3 = DeepLens GPU, Strag. 4 = DeepLens CPU).
    """
    if num_capable < 0 or num_stragglers < 0:
        raise ValueError("device counts must be non-negative")
    fleet: List[DeviceProfile] = []
    for index in range(num_capable):
        fleet.append(JETSON_NANO_GPU.scaled(
            name=f"capable-{index + 1}"))
    straggler_cycle = table1_stragglers()
    for index in range(num_stragglers):
        base = straggler_cycle[index % len(straggler_cycle)]
        fleet.append(base.scaled(name=f"straggler-{index + 1}"))
    return fleet
