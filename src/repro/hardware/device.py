"""Edge-device resource descriptions.

A :class:`DeviceProfile` captures the heterogeneous hardware resources the
paper enumerates in Fig. 1 (battery, memory, CPU, GPU, bandwidth) in the
form consumed by the analytical cost model of Sec. IV-B:
computation bandwidth ``Ccpu``, memory transfer speed ``Vmc`` and network
bandwidth ``Bn``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["DeviceProfile"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static resource description of one edge device.

    Attributes
    ----------
    name:
        Device identifier, e.g. ``"jetson-nano-gpu"``.
    compute_gflops:
        Effective training compute bandwidth ``Ccpu`` in GFLOP/s.  This is
        deliberately *effective* throughput (it folds in framework
        overheads), not the datasheet peak.
    memory_bandwidth_gbps:
        Memory transfer speed ``Vmc`` in GB/s.
    network_bandwidth_mbps:
        Communication bandwidth ``Bn`` in Mbit/s.
    memory_capacity_mb:
        Available RAM for training, in MB.  Models whose footprint exceeds
        this cannot be deployed unshrunk.
    has_gpu:
        Whether the compute bandwidth comes from a GPU (informational).
    battery_mwh:
        Remaining battery budget in mWh (informational; the paper lists
        battery among the heterogeneous resources but the cost model does
        not consume it).
    """

    name: str
    compute_gflops: float
    memory_bandwidth_gbps: float
    network_bandwidth_mbps: float
    memory_capacity_mb: float
    has_gpu: bool = False
    battery_mwh: float = field(default=10_000.0)

    def __post_init__(self) -> None:
        for attribute in ("compute_gflops", "memory_bandwidth_gbps",
                          "network_bandwidth_mbps", "memory_capacity_mb"):
            if getattr(self, attribute) <= 0:
                raise ValueError(f"{attribute} must be positive")

    # ------------------------------------------------------------------ #
    # unit helpers used by the cost model
    # ------------------------------------------------------------------ #
    @property
    def compute_flops_per_second(self) -> float:
        """``Ccpu`` in FLOP/s."""
        return self.compute_gflops * 1e9

    @property
    def memory_bytes_per_second(self) -> float:
        """``Vmc`` in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9

    @property
    def network_bytes_per_second(self) -> float:
        """``Bn`` in bytes/s."""
        return self.network_bandwidth_mbps * 1e6 / 8.0

    def scaled(self, compute: float = 1.0, memory_bandwidth: float = 1.0,
               network: float = 1.0, memory_capacity: float = 1.0,
               name: str = "") -> "DeviceProfile":
        """A derived profile with scaled resources.

        Mirrors the paper's testbed methodology, where Jetson Nano boards
        are throttled (CPU/GPU bandwidth and memory caps) to emulate weaker
        devices.
        """
        return replace(
            self,
            name=name or f"{self.name}-scaled",
            compute_gflops=self.compute_gflops * compute,
            memory_bandwidth_gbps=self.memory_bandwidth_gbps * memory_bandwidth,
            network_bandwidth_mbps=self.network_bandwidth_mbps * network,
            memory_capacity_mb=self.memory_capacity_mb * memory_capacity,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used by reporting)."""
        return {
            "compute_gflops": self.compute_gflops,
            "memory_bandwidth_gbps": self.memory_bandwidth_gbps,
            "network_bandwidth_mbps": self.network_bandwidth_mbps,
            "memory_capacity_mb": self.memory_capacity_mb,
        }
