"""Device profiling front-ends used by straggler identification.

The paper proposes two identification paths (Sec. IV-B):

* *time-based approximation* (black box): run a lightweight test bench on
  every device and rank them by measured time;
* *resource-based profiling* (white box): evaluate the analytical cost
  model from the devices' published resource figures.

In this reproduction the "measured" time of the black-box path is produced
by the same simulator clock that drives the experiments (optionally with
measurement noise), so both paths exercise realistic code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.model import Sequential
from .cost_model import TrainingCostEstimate, TrainingCostModel
from .device import DeviceProfile

__all__ = ["DeviceProfileReport", "FleetProfiler"]


@dataclass(frozen=True)
class DeviceProfileReport:
    """Profiling result for one device (one row of the paper's Table I)."""

    device: DeviceProfile
    workload_gflops: float
    memory_mb: float
    cycle_minutes: float

    def as_row(self) -> Dict[str, float]:
        """Row dictionary used by the reporting helpers."""
        return {
            "device": self.device.name,
            "workload_gflops": round(self.workload_gflops, 2),
            "memory_mb": round(self.memory_mb, 1),
            "cycle_minutes": round(self.cycle_minutes, 1),
        }


class FleetProfiler:
    """Profiles a fleet of devices for a given training workload."""

    def __init__(self, model: Sequential, input_shape: Tuple[int, ...],
                 samples_per_cycle: int, batch_size: int = 32) -> None:
        self.cost_model = TrainingCostModel(
            model, input_shape, samples_per_cycle, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    # white-box path
    # ------------------------------------------------------------------ #
    def profile_device(self, device: DeviceProfile,
                       neuron_fractions: Optional[Dict[str, float]] = None
                       ) -> DeviceProfileReport:
        """Resource-based profile of one device (paper Table I row)."""
        estimate = self.cost_model.estimate(device, neuron_fractions)
        return DeviceProfileReport(
            device=device,
            workload_gflops=estimate.workload_gflops,
            memory_mb=estimate.memory_mb,
            cycle_minutes=estimate.total_minutes,
        )

    def profile_fleet(self, devices: Sequence[DeviceProfile]
                      ) -> List[DeviceProfileReport]:
        """Resource-based profile of every device in the fleet."""
        return [self.profile_device(device) for device in devices]

    def estimate(self, device: DeviceProfile,
                 neuron_fractions: Optional[Dict[str, float]] = None
                 ) -> TrainingCostEstimate:
        """Raw cost-model estimate (compute/memory/communication split)."""
        return self.cost_model.estimate(device, neuron_fractions)

    # ------------------------------------------------------------------ #
    # black-box path
    # ------------------------------------------------------------------ #
    def measure_test_bench(self, devices: Sequence[DeviceProfile],
                           bench_fraction: float = 0.05,
                           noise_std: float = 0.02,
                           rng: Optional[np.random.Generator] = None
                           ) -> Dict[str, float]:
        """Simulate the lightweight test bench of time-based approximation.

        Each device "runs" a small fraction of a training cycle; the
        returned measurement includes multiplicative noise to mimic real
        timing jitter.  Devices are keyed by name.
        """
        if not 0.0 < bench_fraction <= 1.0:
            raise ValueError("bench_fraction must be in (0, 1]")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        rng = rng if rng is not None else np.random.default_rng(0)
        measurements: Dict[str, float] = {}
        for device in devices:
            estimate = self.cost_model.estimate(device)
            noise = rng.normal(1.0, noise_std) if noise_std else 1.0
            measurements[device.name] = max(
                1e-9, estimate.total_seconds * bench_fraction * noise)
        return measurements
