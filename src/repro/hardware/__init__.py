"""Hardware substrate: device profiles, cost model, profiling, communication."""

from .cost_model import TrainingCostEstimate, TrainingCostModel
from .device import DeviceProfile
from .energy import (DEFAULT_POWER_PROFILES, DevicePowerProfile,
                     EnergyEstimate, EnergyModel)
from .network import CommunicationModel
from .presets import (DEEPLENS_CPU, DEEPLENS_GPU, DEVICE_PRESETS,
                      JETSON_NANO_CPU, JETSON_NANO_GPU, RASPBERRY_PI_4,
                      available_devices, build_fleet, get_device,
                      table1_stragglers)
from .profiler import DeviceProfileReport, FleetProfiler

__all__ = [
    "DeviceProfile",
    "TrainingCostModel",
    "TrainingCostEstimate",
    "CommunicationModel",
    "EnergyModel",
    "EnergyEstimate",
    "DevicePowerProfile",
    "DEFAULT_POWER_PROFILES",
    "FleetProfiler",
    "DeviceProfileReport",
    "DEVICE_PRESETS",
    "JETSON_NANO_GPU",
    "JETSON_NANO_CPU",
    "RASPBERRY_PI_4",
    "DEEPLENS_GPU",
    "DEEPLENS_CPU",
    "available_devices",
    "get_device",
    "table1_stragglers",
    "build_fleet",
]
