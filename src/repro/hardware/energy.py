"""Per-cycle energy model (extension beyond the paper's evaluation).

The paper lists battery among the heterogeneous edge resources (Fig. 1) but
its cost model only covers time.  This module extends the same analytical
approach to energy: a training cycle's energy is the device's compute power
draw over the compute/memory time plus its radio power draw over the
communication time, and a battery budget translates into a number of
cycles the device can sustain.  Helios' model shrinking therefore extends
battery life on stragglers in direct proportion to the cycle-time savings —
a useful planning quantity even though the paper does not evaluate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cost_model import TrainingCostEstimate
from .device import DeviceProfile

__all__ = ["DevicePowerProfile", "EnergyEstimate", "EnergyModel",
           "DEFAULT_POWER_PROFILES"]


@dataclass(frozen=True)
class DevicePowerProfile:
    """Power draw characteristics of one device class.

    Attributes
    ----------
    compute_watts:
        Average power while training (CPU/GPU + memory).
    radio_watts:
        Average power while transmitting or receiving parameters.
    idle_watts:
        Power while waiting for the aggregation cycle to finish.
    """

    compute_watts: float
    radio_watts: float
    idle_watts: float

    def __post_init__(self) -> None:
        for field_name in ("compute_watts", "radio_watts", "idle_watts"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")


#: Representative power profiles for the paper's device classes (datasheet
#: ballpark figures; used by the planning example and tests).
DEFAULT_POWER_PROFILES: Dict[str, DevicePowerProfile] = {
    "jetson-nano-gpu": DevicePowerProfile(compute_watts=10.0,
                                          radio_watts=1.5, idle_watts=1.25),
    "jetson-nano-cpu": DevicePowerProfile(compute_watts=7.5,
                                          radio_watts=1.5, idle_watts=1.25),
    "raspberry-pi-4": DevicePowerProfile(compute_watts=6.4,
                                         radio_watts=1.2, idle_watts=2.1),
    "deeplens-gpu": DevicePowerProfile(compute_watts=9.0,
                                       radio_watts=1.3, idle_watts=2.0),
    "deeplens-cpu": DevicePowerProfile(compute_watts=8.0,
                                       radio_watts=1.3, idle_watts=2.0),
}


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one training cycle on one device."""

    device_name: str
    compute_joules: float
    communication_joules: float
    idle_joules: float

    @property
    def active_joules(self) -> float:
        """Energy spent actually training and communicating."""
        return self.compute_joules + self.communication_joules

    @property
    def total_joules(self) -> float:
        """Total energy including idle waiting."""
        return self.active_joules + self.idle_joules

    @property
    def total_milliwatt_hours(self) -> float:
        """Total energy in mWh (the unit of ``DeviceProfile.battery_mwh``)."""
        return self.total_joules / 3.6


class EnergyModel:
    """Translate cost-model time estimates into energy and battery figures."""

    def __init__(self, power_profiles: Optional[Dict[str, DevicePowerProfile]]
                 = None) -> None:
        self.power_profiles = dict(DEFAULT_POWER_PROFILES)
        if power_profiles:
            self.power_profiles.update(power_profiles)

    def power_profile_for(self, device: DeviceProfile) -> DevicePowerProfile:
        """Look up (or approximate) the power profile of a device.

        Scaled presets keep their base name as a prefix (e.g.
        ``straggler-1`` derived from ``deeplens-cpu`` via ``scaled``), so an
        exact match is tried first and a prefix match second; unknown
        devices fall back to a conservative generic profile.
        """
        if device.name in self.power_profiles:
            return self.power_profiles[device.name]
        for name, profile in self.power_profiles.items():
            if device.name.startswith(name) or name.startswith(device.name):
                return profile
        return DevicePowerProfile(compute_watts=8.0, radio_watts=1.5,
                                  idle_watts=1.5)

    def estimate_cycle(self, device: DeviceProfile,
                       cost: TrainingCostEstimate,
                       cycle_length_s: Optional[float] = None
                       ) -> EnergyEstimate:
        """Energy of one cycle given its time breakdown.

        Parameters
        ----------
        device:
            The device executing the cycle.
        cost:
            Time breakdown from :class:`TrainingCostModel.estimate`.
        cycle_length_s:
            Length of the full aggregation cycle; the gap between the
            device's own busy time and the cycle length is charged at idle
            power (the Fig. 1 waiting time).  ``None`` means no idle time.
        """
        profile = self.power_profile_for(device)
        busy_compute = cost.compute_seconds + cost.memory_seconds
        compute_joules = profile.compute_watts * busy_compute
        communication_joules = (profile.radio_watts
                                * cost.communication_seconds)
        idle_seconds = 0.0
        if cycle_length_s is not None:
            if cycle_length_s < 0:
                raise ValueError("cycle_length_s must be non-negative")
            idle_seconds = max(0.0, cycle_length_s - cost.total_seconds)
        idle_joules = profile.idle_watts * idle_seconds
        return EnergyEstimate(device_name=device.name,
                              compute_joules=compute_joules,
                              communication_joules=communication_joules,
                              idle_joules=idle_joules)

    def sustainable_cycles(self, device: DeviceProfile,
                           estimate: EnergyEstimate) -> float:
        """How many such cycles the device's battery budget can sustain."""
        per_cycle_mwh = estimate.total_milliwatt_hours
        if per_cycle_mwh <= 0:
            return float("inf")
        return device.battery_mwh / per_cycle_mwh
