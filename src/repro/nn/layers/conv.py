"""2-D convolution implemented with im2col.

Data layout is ``(batch, channels, height, width)`` throughout, matching the
conventional CNN layout the paper's models (LeNet/AlexNet/ResNet) use.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..initializers import get_initializer
from ..parameter import Parameter
from .base import Layer

__all__ = ["Conv2D", "im2col", "col2im"]


def _pair(value) -> Tuple[int, int]:
    """Normalize an int or 2-tuple into a 2-tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected length-2 tuple, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: input={size}, kernel={kernel}, "
            f"stride={stride}, pad={pad}")
    return out


def im2col(inputs: np.ndarray, kernel: Tuple[int, int],
           stride: Tuple[int, int], pad: Tuple[int, int]) -> np.ndarray:
    """Unfold image patches into a matrix.

    Returns an array of shape
    ``(batch * out_h * out_w, channels * kh * kw)``.
    """
    batch, channels, height, width = inputs.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    out_h = conv_output_size(height, kh, sh, ph)
    out_w = conv_output_size(width, kw, sw, pw)

    padded = np.pad(inputs, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                    mode="constant")
    cols = np.empty((batch, channels, kh, kw, out_h, out_w),
                    dtype=inputs.dtype)
    for y in range(kh):
        y_max = y + sh * out_h
        for x in range(kw):
            x_max = x + sw * out_w
            cols[:, :, y, x, :, :] = padded[:, :, y:y_max:sh, x:x_max:sw]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, -1)
    return cols


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           pad: Tuple[int, int]) -> np.ndarray:
    """Fold a column matrix back into image space (adjoint of im2col)."""
    batch, channels, height, width = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    out_h = conv_output_size(height, kh, sh, ph)
    out_w = conv_output_size(width, kw, sw, pw)

    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((batch, channels, height + 2 * ph, width + 2 * pw),
                      dtype=cols.dtype)
    for y in range(kh):
        y_max = y + sh * out_h
        for x in range(kw):
            x_max = x + sw * out_w
            padded[:, :, y:y_max:sh, x:x_max:sw] += cols[:, :, y, x, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph:height + ph, pw:width + pw]


class Conv2D(Layer):
    """2-D convolution layer with neuron (filter) masking support.

    The *neurons* of a convolution layer are its output filters; Helios'
    soft-training masks whole filters, which is the structured unit the
    paper shrinks.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, use_bias: bool = True,
                 weight_init: str = "he_normal",
                 rng: Optional[np.random.Generator] = None,
                 name: str = "") -> None:
        super().__init__(name=name or "conv2d")
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(weight_init)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.use_bias = use_bias
        kh, kw = self.kernel_size
        self.weight = Parameter(
            init((out_channels, in_channels, kh, kw), rng),
            name=f"{self.name}/weight", neuron_axis=0)
        self.bias: Optional[Parameter] = None
        if use_bias:
            self.bias = Parameter(np.zeros(out_channels),
                                  name=f"{self.name}/bias", neuron_axis=0)
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    # ------------------------------------------------------------------ #
    @property
    def num_neurons(self) -> int:
        return self.out_channels

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Spatial output shape ``(channels, height, width)`` for one sample."""
        _, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size[0],
                                 self.stride[0], self.padding[0])
        out_w = conv_output_size(width, self.kernel_size[1],
                                 self.stride[1], self.padding[1])
        return self.out_channels, out_h, out_w

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(
                f"Conv2D expects 4-D input (batch, channels, h, w); "
                f"got shape {inputs.shape}")
        if inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D {self.name!r} expects {self.in_channels} channels, "
                f"got {inputs.shape[1]}")
        batch = inputs.shape[0]
        out_c, out_h, out_w = self.output_shape(inputs.shape[1:])
        cols = im2col(inputs, self.kernel_size, self.stride, self.padding)
        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        outputs = cols @ weight_mat.T
        if self.bias is not None:
            outputs = outputs + self.bias.data
        outputs = outputs.reshape(batch, out_h, out_w, out_c)
        outputs = outputs.transpose(0, 3, 1, 2)
        if self._neuron_mask is not None:
            outputs = outputs * self._neuron_mask[np.newaxis, :, np.newaxis,
                                                  np.newaxis]
        self._cols = cols
        self._input_shape = inputs.shape
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        if self._neuron_mask is not None:
            grad_output = grad_output * self._neuron_mask[np.newaxis, :,
                                                          np.newaxis,
                                                          np.newaxis]
        batch, out_c, out_h, out_w = grad_output.shape
        grad_mat = grad_output.transpose(0, 2, 3, 1).reshape(-1, out_c)
        weight_mat = self.weight.data.reshape(self.out_channels, -1)
        self.weight.grad += (grad_mat.T @ self._cols).reshape(
            self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ weight_mat
        grad_input = col2im(grad_cols, self._input_shape, self.kernel_size,
                            self.stride, self.padding)
        return grad_input
