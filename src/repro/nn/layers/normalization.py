"""Normalization layers."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..parameter import Parameter
from .base import Layer

__all__ = ["BatchNorm1D", "BatchNorm2D"]


class _BatchNormBase(Layer):
    """Shared implementation for 1-D and 2-D batch normalization.

    The per-channel scale/shift (``gamma``/``beta``) are the layer's
    neurons, so soft-training can mask them together with the convolution
    filters that feed them.
    """

    def __init__(self, num_features: int, momentum: float = 0.9,
                 epsilon: float = 1e-5, name: str = "") -> None:
        super().__init__(name=name or "batchnorm")
        if num_features <= 0:
            raise ValueError("num_features must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.num_features = num_features
        self.momentum = momentum
        self.epsilon = epsilon
        self.gamma = Parameter(np.ones(num_features),
                               name=f"{self.name}/gamma", neuron_axis=0)
        self.beta = Parameter(np.zeros(num_features),
                              name=f"{self.name}/beta", neuron_axis=0)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[tuple] = None

    @property
    def num_neurons(self) -> int:
        return self.num_features

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def buffers(self):
        return {f"{self.name}/running_mean": self.running_mean,
                f"{self.name}/running_var": self.running_var}

    def set_buffer(self, name: str, value) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.num_features,):
            raise ValueError(
                f"buffer {name!r} must have shape ({self.num_features},); "
                f"got {value.shape}")
        if name == f"{self.name}/running_mean":
            self.running_mean = value.copy()
        elif name == f"{self.name}/running_var":
            self.running_var = value.copy()
        else:
            raise KeyError(f"layer {self.name!r} has no buffer {name!r}")

    # Subclasses reshape to (N, C) where N pools batch and spatial dims.
    def _to_2d(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _from_2d(self, flat: np.ndarray, like: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        flat = self._to_2d(inputs)
        if self.training:
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            self.running_mean = (self.momentum * self.running_mean
                                 + (1.0 - self.momentum) * mean)
            self.running_var = (self.momentum * self.running_var
                                + (1.0 - self.momentum) * var)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        normalized = (flat - mean) * inv_std
        out = normalized * self.gamma.data + self.beta.data
        if self._neuron_mask is not None:
            out = out * self._neuron_mask[np.newaxis, :]
        self._cache = (normalized, inv_std, flat.shape[0], inputs)
        return self._from_2d(out, inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, inv_std, count, inputs = self._cache
        grad_flat = self._to_2d(grad_output)
        if self._neuron_mask is not None:
            grad_flat = grad_flat * self._neuron_mask[np.newaxis, :]
        self.gamma.grad += (grad_flat * normalized).sum(axis=0)
        self.beta.grad += grad_flat.sum(axis=0)
        if self.training:
            grad_norm = grad_flat * self.gamma.data
            grad_input_flat = (inv_std / count) * (
                count * grad_norm
                - grad_norm.sum(axis=0)
                - normalized * (grad_norm * normalized).sum(axis=0))
        else:
            grad_input_flat = grad_flat * self.gamma.data * inv_std
        return self._from_2d(grad_input_flat, inputs)


class BatchNorm1D(_BatchNormBase):
    """Batch normalization over a ``(batch, features)`` tensor."""

    def _to_2d(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 2:
            raise ValueError(
                f"BatchNorm1D expects 2-D input; got {inputs.shape}")
        return inputs

    def _from_2d(self, flat: np.ndarray, like: np.ndarray) -> np.ndarray:
        return flat


class BatchNorm2D(_BatchNormBase):
    """Batch normalization over a ``(batch, channels, h, w)`` tensor."""

    def _to_2d(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(
                f"BatchNorm2D expects 4-D input; got {inputs.shape}")
        batch, channels, height, width = inputs.shape
        return inputs.transpose(0, 2, 3, 1).reshape(-1, channels)

    def _from_2d(self, flat: np.ndarray, like: np.ndarray) -> np.ndarray:
        batch, channels, height, width = like.shape
        return flat.reshape(batch, height, width, channels).transpose(
            0, 3, 1, 2)
