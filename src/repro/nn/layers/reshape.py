"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import Layer

__all__ = ["Flatten", "Dropout"]


class Flatten(Layer):
    """Flatten all non-batch dimensions into one feature axis."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name or "flatten")
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._input_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._input_shape)


class Dropout(Layer):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, rate: float = 0.5,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "") -> None:
        super().__init__(name=name or "dropout")
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
