"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Layer

__all__ = ["ReLU", "LeakyReLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name or "relu")
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky rectified linear unit with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.01, name: str = "") -> None:
        super().__init__(name=name or "leakyrelu")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self._mask: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.alpha * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, self.alpha * grad_output)


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name or "sigmoid")
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(inputs, -60.0, 60.0)))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name or "tanh")
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output ** 2)


class Softmax(Layer):
    """Softmax over the last axis.

    Usually the loss (softmax cross-entropy) fuses this computation; the
    standalone layer exists for models that need explicit probabilities.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name or "softmax")
        self._output: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        shifted = inputs - inputs.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        self._output = exp / exp.sum(axis=-1, keepdims=True)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        dot = (grad_output * self._output).sum(axis=-1, keepdims=True)
        return self._output * (grad_output - dot)
