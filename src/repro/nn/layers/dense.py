"""Fully connected layer."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..initializers import get_initializer
from ..parameter import Parameter
from .base import Layer

__all__ = ["Dense"]


class Dense(Layer):
    """Affine transform ``y = x W^T + b``.

    Parameters
    ----------
    in_features:
        Size of the input feature dimension.
    out_features:
        Number of output units (the layer's *neurons*).
    use_bias:
        Whether to add a learned bias vector.
    weight_init:
        Name of the weight initializer (see :mod:`repro.nn.initializers`).
    rng:
        Random generator used for initialization; a default generator is
        created when omitted (non-reproducible — prefer passing one).
    """

    def __init__(self, in_features: int, out_features: int,
                 use_bias: bool = True, weight_init: str = "he_normal",
                 rng: Optional[np.random.Generator] = None,
                 name: str = "") -> None:
        super().__init__(name=name or "dense")
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        init = get_initializer(weight_init)
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        self.weight = Parameter(init((out_features, in_features), rng),
                                name=f"{self.name}/weight", neuron_axis=0)
        self.bias: Optional[Parameter] = None
        if use_bias:
            self.bias = Parameter(np.zeros(out_features),
                                  name=f"{self.name}/bias", neuron_axis=0)
        self._inputs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def num_neurons(self) -> int:
        return self.out_features

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 2:
            raise ValueError(
                f"Dense expects 2-D input (batch, features); "
                f"got shape {inputs.shape}")
        if inputs.shape[1] != self.in_features:
            raise ValueError(
                f"Dense {self.name!r} expects {self.in_features} features, "
                f"got {inputs.shape[1]}")
        self._inputs = inputs
        outputs = inputs @ self.weight.data.T
        if self.bias is not None:
            outputs = outputs + self.bias.data
        if self._neuron_mask is not None:
            outputs = outputs * self._neuron_mask[np.newaxis, :]
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        if self._neuron_mask is not None:
            grad_output = grad_output * self._neuron_mask[np.newaxis, :]
        self.weight.grad += grad_output.T @ self._inputs
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        grad_input = grad_output @ self.weight.data
        return grad_input
