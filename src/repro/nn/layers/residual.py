"""Residual block (the building block of the ResNet-style model)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .activations import ReLU
from .base import CompositeLayer
from .conv import Conv2D
from .normalization import BatchNorm2D

__all__ = ["ResidualBlock"]


class ResidualBlock(CompositeLayer):
    """A basic two-convolution residual block: ``y = relu(F(x) + shortcut(x))``.

    ``F`` is conv-bn-relu-conv-bn; the shortcut is the identity when the
    shapes match, otherwise a 1x1 strided convolution (with batch-norm).
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "") -> None:
        super().__init__(name=name or "resblock")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride

        self.conv1 = Conv2D(in_channels, out_channels, 3, stride=stride,
                            padding=1, use_bias=False, rng=rng,
                            name=f"{self.name}/conv1")
        self.bn1 = BatchNorm2D(out_channels, name=f"{self.name}/bn1")
        self.relu1 = ReLU(name=f"{self.name}/relu1")
        self.conv2 = Conv2D(out_channels, out_channels, 3, stride=1,
                            padding=1, use_bias=False, rng=rng,
                            name=f"{self.name}/conv2")
        self.bn2 = BatchNorm2D(out_channels, name=f"{self.name}/bn2")
        self.relu2 = ReLU(name=f"{self.name}/relu2")

        self.shortcut_conv: Optional[Conv2D] = None
        self.shortcut_bn: Optional[BatchNorm2D] = None
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = Conv2D(in_channels, out_channels, 1,
                                        stride=stride, padding=0,
                                        use_bias=False, rng=rng,
                                        name=f"{self.name}/shortcut_conv")
            self.shortcut_bn = BatchNorm2D(out_channels,
                                           name=f"{self.name}/shortcut_bn")

        self.sublayers = [self.conv1, self.bn1, self.relu1, self.conv2,
                          self.bn2, self.relu2]
        if self.shortcut_conv is not None:
            self.sublayers.extend([self.shortcut_conv, self.shortcut_bn])

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        out = self.conv1.forward(inputs)
        out = self.bn1.forward(out)
        out = self.relu1.forward(out)
        out = self.conv2.forward(out)
        out = self.bn2.forward(out)
        if self.shortcut_conv is not None:
            shortcut = self.shortcut_conv.forward(inputs)
            shortcut = self.shortcut_bn.forward(shortcut)
        else:
            shortcut = inputs
        return self.relu2.forward(out + shortcut)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu2.backward(grad_output)
        grad_main = self.bn2.backward(grad_sum)
        grad_main = self.conv2.backward(grad_main)
        grad_main = self.relu1.backward(grad_main)
        grad_main = self.bn1.backward(grad_main)
        grad_main = self.conv1.backward(grad_main)
        if self.shortcut_conv is not None:
            grad_short = self.shortcut_bn.backward(grad_sum)
            grad_short = self.shortcut_conv.backward(grad_short)
        else:
            grad_short = grad_sum
        return grad_main + grad_short
