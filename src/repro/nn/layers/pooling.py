"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .base import Layer
from .conv import _pair, conv_output_size, im2col, col2im

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool2D"]


class MaxPool2D(Layer):
    """Max pooling over non-overlapping (or strided) spatial windows."""

    def __init__(self, kernel_size, stride=None, padding=0,
                 name: str = "") -> None:
        super().__init__(name=name or "maxpool2d")
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._argmax: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Output ``(channels, height, width)`` for a single sample."""
        channels, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size[0],
                                 self.stride[0], self.padding[0])
        out_w = conv_output_size(width, self.kernel_size[1],
                                 self.stride[1], self.padding[1])
        return channels, out_h, out_w

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(
                f"MaxPool2D expects 4-D input; got shape {inputs.shape}")
        batch, channels, height, width = inputs.shape
        kh, kw = self.kernel_size
        out_c, out_h, out_w = self.output_shape(inputs.shape[1:])
        # Treat each channel independently so that im2col columns hold one
        # pooling window per row.
        reshaped = inputs.reshape(batch * channels, 1, height, width)
        cols = im2col(reshaped, self.kernel_size, self.stride, self.padding)
        cols = cols.reshape(-1, kh * kw)
        self._argmax = np.argmax(cols, axis=1)
        outputs = cols[np.arange(cols.shape[0]), self._argmax]
        outputs = outputs.reshape(batch, channels, out_h, out_w)
        self._input_shape = inputs.shape
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None or self._argmax is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        kh, kw = self.kernel_size
        grad_flat = grad_output.reshape(-1)
        grad_cols = np.zeros((grad_flat.size, kh * kw), dtype=grad_output.dtype)
        grad_cols[np.arange(grad_flat.size), self._argmax] = grad_flat
        grad_input = col2im(grad_cols,
                            (batch * channels, 1, height, width),
                            self.kernel_size, self.stride, self.padding)
        return grad_input.reshape(self._input_shape)


class AvgPool2D(Layer):
    """Average pooling over spatial windows."""

    def __init__(self, kernel_size, stride=None, padding=0,
                 name: str = "") -> None:
        super().__init__(name=name or "avgpool2d")
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride) if stride is not None else self.kernel_size
        self.padding = _pair(padding)
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Output ``(channels, height, width)`` for a single sample."""
        channels, height, width = input_shape
        out_h = conv_output_size(height, self.kernel_size[0],
                                 self.stride[0], self.padding[0])
        out_w = conv_output_size(width, self.kernel_size[1],
                                 self.stride[1], self.padding[1])
        return channels, out_h, out_w

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(
                f"AvgPool2D expects 4-D input; got shape {inputs.shape}")
        batch, channels, height, width = inputs.shape
        kh, kw = self.kernel_size
        out_c, out_h, out_w = self.output_shape(inputs.shape[1:])
        reshaped = inputs.reshape(batch * channels, 1, height, width)
        cols = im2col(reshaped, self.kernel_size, self.stride, self.padding)
        cols = cols.reshape(-1, kh * kw)
        outputs = cols.mean(axis=1).reshape(batch, channels, out_h, out_w)
        self._input_shape = inputs.shape
        return outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        kh, kw = self.kernel_size
        grad_flat = grad_output.reshape(-1)
        grad_cols = np.repeat(grad_flat[:, np.newaxis], kh * kw, axis=1)
        grad_cols /= float(kh * kw)
        grad_input = col2im(grad_cols,
                            (batch * channels, 1, height, width),
                            self.kernel_size, self.stride, self.padding)
        return grad_input.reshape(self._input_shape)


class GlobalAvgPool2D(Layer):
    """Average over all spatial positions, producing ``(batch, channels)``."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name or "globalavgpool2d")
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if inputs.ndim != 4:
            raise ValueError(
                f"GlobalAvgPool2D expects 4-D input; got {inputs.shape}")
        self._input_shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._input_shape
        scale = 1.0 / float(height * width)
        grad = grad_output[:, :, np.newaxis, np.newaxis] * scale
        return np.broadcast_to(grad, self._input_shape).copy()
