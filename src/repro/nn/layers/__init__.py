"""Layer zoo for the NumPy neural-network substrate."""

from .activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .base import CompositeLayer, Layer
from .conv import Conv2D
from .dense import Dense
from .normalization import BatchNorm1D, BatchNorm2D
from .pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .reshape import Dropout, Flatten
from .residual import ResidualBlock

__all__ = [
    "Layer",
    "CompositeLayer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Dropout",
    "Flatten",
    "ResidualBlock",
]
