"""Layer abstraction for the NumPy neural-network substrate.

Every layer implements ``forward`` / ``backward`` with explicit NumPy
arrays.  Layers that own neuron-structured parameters (dense, convolution,
batch-norm) additionally support a *neuron mask*: a boolean vector with one
entry per output neuron.  Helios' soft-training sets this mask every training
cycle; masked-out neurons produce zero activations and receive zero gradient,
which is the functional equivalent of removing them from the shrunk model.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..parameter import Parameter

__all__ = ["Layer", "CompositeLayer"]


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str = "") -> None:
        self.name = name or self.__class__.__name__.lower()
        self.training = True
        self._neuron_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # core protocol
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the layer output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and accumulate parameter grads."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters owned by this layer (may be empty)."""
        return []

    def buffers(self) -> "dict[str, np.ndarray]":
        """Non-trainable state exchanged alongside the parameters.

        Batch-normalization running statistics are the canonical example:
        they are not updated by gradients but must travel with the model in
        federated aggregation, otherwise the global model evaluates with
        initialization statistics.
        """
        return {}

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Install one buffer previously exported by :meth:`buffers`."""
        raise KeyError(f"layer {self.name!r} has no buffer {name!r}")

    def zero_grad(self) -> None:
        """Clear gradients of every owned parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> None:
        """Switch the layer (and sub-layers) to training mode."""
        self.training = True
        for child in self.children():
            child.train()

    def eval(self) -> None:
        """Switch the layer (and sub-layers) to evaluation mode."""
        self.training = False
        for child in self.children():
            child.eval()

    def children(self) -> Iterable["Layer"]:
        """Direct sub-layers (empty for leaf layers)."""
        return []

    # ------------------------------------------------------------------ #
    # neuron masking (soft-training hook)
    # ------------------------------------------------------------------ #
    @property
    def num_neurons(self) -> int:
        """Number of maskable output neurons (0 for stateless layers)."""
        return 0

    @property
    def neuron_mask(self) -> Optional[np.ndarray]:
        """Current boolean neuron mask (``None`` means all active)."""
        return self._neuron_mask

    def set_neuron_mask(self, mask: Optional[np.ndarray]) -> None:
        """Install a boolean mask over the layer's output neurons.

        Parameters
        ----------
        mask:
            Boolean array of length :attr:`num_neurons`, or ``None`` to
            clear the mask (train the full layer).
        """
        if mask is None:
            self._neuron_mask = None
            return
        if self.num_neurons == 0:
            raise ValueError(f"layer {self.name!r} has no maskable neurons")
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_neurons,):
            raise ValueError(
                f"mask shape {mask.shape} does not match layer "
                f"{self.name!r} with {self.num_neurons} neurons")
        self._neuron_mask = mask

    def clear_neuron_mask(self) -> None:
        """Remove any installed neuron mask."""
        self._neuron_mask = None

    def active_neuron_fraction(self) -> float:
        """Fraction of neurons currently active (1.0 when unmasked)."""
        if self._neuron_mask is None or self.num_neurons == 0:
            return 1.0
        return float(self._neuron_mask.sum()) / float(self.num_neurons)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class CompositeLayer(Layer):
    """A layer made of sub-layers (e.g. a residual block).

    Sub-classes populate :attr:`sublayers` and implement ``forward`` /
    ``backward`` in terms of them.  Parameter collection and train/eval
    switching recurse automatically.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__(name=name)
        self.sublayers: List[Layer] = []

    def children(self) -> Iterable[Layer]:
        return list(self.sublayers)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for child in self.sublayers:
            params.extend(child.parameters())
        return params

    def buffers(self) -> "dict[str, np.ndarray]":
        collected: "dict[str, np.ndarray]" = {}
        for child in self.sublayers:
            collected.update(child.buffers())
        return collected

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        for child in self.sublayers:
            if name in child.buffers():
                child.set_buffer(name, value)
                return
        raise KeyError(f"layer {self.name!r} has no buffer {name!r}")
