"""Structured (per-neuron) model masks.

A :class:`ModelMask` records, for every maskable layer of a model, which
output neurons participate in the current training cycle.  It is the data
structure exchanged between Helios' neuron-selection policy, the model
(which applies the masks during forward/backward), and the server-side
aggregation (which needs to know which neurons each device actually
updated).
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from .model import Sequential

__all__ = ["ModelMask"]


class ModelMask:
    """Boolean neuron masks keyed by maskable-layer name."""

    def __init__(self, masks: Mapping[str, np.ndarray]) -> None:
        self._masks: Dict[str, np.ndarray] = {
            name: np.asarray(mask, dtype=bool).copy()
            for name, mask in masks.items()
        }

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def full(cls, model: Sequential) -> "ModelMask":
        """Mask with every neuron active (the full model)."""
        return cls({layer.name: np.ones(layer.num_neurons, dtype=bool)
                    for layer in model.neuron_layers()})

    @classmethod
    def empty(cls, model: Sequential) -> "ModelMask":
        """Mask with no neuron active (useful as an accumulator)."""
        return cls({layer.name: np.zeros(layer.num_neurons, dtype=bool)
                    for layer in model.neuron_layers()})

    @classmethod
    def random(cls, model: Sequential, fractions: Mapping[str, float],
               rng: np.random.Generator) -> "ModelMask":
        """Randomly activate a fraction of each layer's neurons.

        At least one neuron per layer is always kept so the network never
        degenerates to a disconnected graph.
        """
        masks: Dict[str, np.ndarray] = {}
        for layer in model.neuron_layers():
            fraction = float(fractions.get(layer.name, 1.0))
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"fraction for layer {layer.name!r} must be in (0, 1]")
            count = max(1, int(round(fraction * layer.num_neurons)))
            chosen = rng.choice(layer.num_neurons, size=count, replace=False)
            mask = np.zeros(layer.num_neurons, dtype=bool)
            mask[chosen] = True
            masks[layer.name] = mask
        return cls(masks)

    # ------------------------------------------------------------------ #
    # dict-like access
    # ------------------------------------------------------------------ #
    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self._masks

    def __getitem__(self, layer_name: str) -> np.ndarray:
        return self._masks[layer_name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._masks)

    def __len__(self) -> int:
        return len(self._masks)

    def items(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Iterate over ``(layer_name, mask)`` pairs."""
        return iter(self._masks.items())

    def layer_names(self) -> Tuple[str, ...]:
        """Names of the layers covered by this mask."""
        return tuple(self._masks)

    def as_dict(self) -> Dict[str, np.ndarray]:
        """Copy of the underlying mapping."""
        return {name: mask.copy() for name, mask in self._masks.items()}

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def active_counts(self) -> Dict[str, int]:
        """Number of active neurons per layer."""
        return {name: int(mask.sum()) for name, mask in self._masks.items()}

    def total_neurons(self) -> int:
        """Total neurons covered by the mask."""
        return sum(mask.size for mask in self._masks.values())

    def total_active(self) -> int:
        """Total active neurons."""
        return sum(int(mask.sum()) for mask in self._masks.values())

    def active_fraction(self) -> float:
        """Overall fraction of active neurons."""
        total = self.total_neurons()
        if total == 0:
            return 1.0
        return self.total_active() / total

    def layer_fractions(self) -> Dict[str, float]:
        """Per-layer active fraction."""
        return {name: (float(mask.sum()) / mask.size if mask.size else 1.0)
                for name, mask in self._masks.items()}

    # ------------------------------------------------------------------ #
    # set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "ModelMask") -> "ModelMask":
        """Neuron-wise OR of two masks over the same layers."""
        self._check_compatible(other)
        return ModelMask({name: self._masks[name] | other[name]
                          for name in self._masks})

    def intersection(self, other: "ModelMask") -> "ModelMask":
        """Neuron-wise AND of two masks over the same layers."""
        self._check_compatible(other)
        return ModelMask({name: self._masks[name] & other[name]
                          for name in self._masks})

    def _check_compatible(self, other: "ModelMask") -> None:
        if set(self._masks) != set(other._masks):
            raise ValueError("masks cover different layers")
        for name in self._masks:
            if self._masks[name].shape != other[name].shape:
                raise ValueError(f"mask size mismatch for layer {name!r}")

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply(self, model: Sequential) -> None:
        """Install these masks on the model's maskable layers."""
        model.set_neuron_masks({name: mask
                                for name, mask in self._masks.items()})

    def copy(self) -> "ModelMask":
        """Deep copy."""
        return ModelMask(self._masks)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"ModelMask(layers={len(self._masks)}, "
                f"active={self.total_active()}/{self.total_neurons()})")
