"""Sequential model container.

The :class:`Sequential` model is the unit that federated clients train and
the server aggregates.  It exposes:

* the usual ``forward`` / ``backward`` / ``train_step`` API,
* parameter (de)serialization as flat dictionaries (used by FL aggregation),
* per-layer neuron enumeration and masking (used by Helios soft-training).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .layers.base import CompositeLayer, Layer
from .losses import Loss
from .optimizers import Optimizer
from .parameter import Parameter

__all__ = ["Sequential", "iter_leaf_layers"]


def iter_leaf_layers(layers: Sequence[Layer]) -> Iterator[Layer]:
    """Yield leaf layers, recursing into composite layers in order."""
    for layer in layers:
        if isinstance(layer, CompositeLayer):
            yield from iter_leaf_layers(list(layer.children()))
        else:
            yield layer


class Sequential:
    """A plain feed-forward stack of layers."""

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = name
        self.training = True

    # ------------------------------------------------------------------ #
    # mode switching
    # ------------------------------------------------------------------ #
    def train(self) -> None:
        """Put every layer into training mode."""
        self.training = True
        for layer in self.layers:
            layer.train()

    def eval(self) -> None:
        """Put every layer into evaluation mode."""
        self.training = False
        for layer in self.layers:
            layer.eval()

    # ------------------------------------------------------------------ #
    # forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the input through all layers."""
        out = inputs
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers in reverse order."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train_step(self, inputs: np.ndarray, targets: np.ndarray,
                   loss_fn: Loss, optimizer: Optimizer) -> float:
        """One optimization step on a mini-batch; returns the loss value."""
        self.zero_grad()
        logits = self.forward(inputs)
        loss_value = loss_fn.forward(logits, targets)
        grad = loss_fn.backward()
        self.backward(grad)
        optimizer.step()
        return loss_value

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All trainable parameters in layer order."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def named_parameters(self) -> Dict[str, Parameter]:
        """Mapping from unique parameter name to :class:`Parameter`.

        Names are made unique by appending an index when layers share a
        name (which only happens if callers construct layers carelessly).
        """
        named: Dict[str, Parameter] = {}
        for param in self.parameters():
            key = param.name
            suffix = 1
            while key in named:
                suffix += 1
                key = f"{param.name}#{suffix}"
            named[key] = param
        return named

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------ #
    # state (de)serialization — the FL exchange format
    # ------------------------------------------------------------------ #
    def named_buffers(self) -> Dict[str, np.ndarray]:
        """Non-trainable exchanged state (e.g. batch-norm running stats)."""
        buffers: Dict[str, np.ndarray] = {}
        for layer in iter_leaf_layers(self.layers):
            buffers.update(layer.buffers())
        return buffers

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Copy of all exchanged tensors (parameters + buffers) by name.

        Buffers (batch-norm running statistics) are included because
        federated aggregation must ship them with the model: a global model
        evaluated with initialization statistics is useless even if its
        trainable parameters are perfectly aggregated.
        """
        weights = {name: param.data.copy()
                   for name, param in self.named_parameters().items()}
        for name, value in self.named_buffers().items():
            weights[name] = np.asarray(value).copy()
        return weights

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load tensors previously produced by :meth:`get_weights`.

        Every trainable parameter must be present; buffers are loaded when
        provided (older checkpoints without them remain loadable).
        """
        named = self.named_parameters()
        missing = set(named) - set(weights)
        if missing:
            raise KeyError(f"missing weights for parameters: {sorted(missing)}")
        for name, param in named.items():
            value = np.asarray(weights[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected "
                    f"{param.data.shape}, got {value.shape}")
            param.data = value.astype(param.data.dtype, copy=True)
        buffer_names = self.named_buffers()
        buffer_owners = {name: layer
                         for layer in iter_leaf_layers(self.layers)
                         for name in layer.buffers()}
        for name in buffer_names:
            if name in weights:
                buffer_owners[name].set_buffer(name, weights[name])

    def get_gradients(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter gradients keyed by parameter name."""
        return {name: param.grad.copy()
                for name, param in self.named_parameters().items()}

    # ------------------------------------------------------------------ #
    # neuron structure (soft-training hooks)
    # ------------------------------------------------------------------ #
    def neuron_layers(self) -> List[Layer]:
        """Leaf layers that own maskable neurons, in forward order."""
        return [layer for layer in iter_leaf_layers(self.layers)
                if layer.num_neurons > 0]

    def neuron_counts(self) -> List[int]:
        """Number of neurons per maskable layer (same order as above)."""
        return [layer.num_neurons for layer in self.neuron_layers()]

    def total_neurons(self) -> int:
        """Total number of maskable neurons across the model."""
        return sum(self.neuron_counts())

    def set_neuron_masks(self,
                         masks: Dict[str, Optional[np.ndarray]]) -> None:
        """Install per-layer neuron masks keyed by layer name."""
        by_name = {layer.name: layer for layer in self.neuron_layers()}
        unknown = set(masks) - set(by_name)
        if unknown:
            raise KeyError(f"unknown maskable layers: {sorted(unknown)}")
        for name, mask in masks.items():
            by_name[name].set_neuron_mask(mask)

    def clear_neuron_masks(self) -> None:
        """Remove every neuron mask so the full model trains."""
        for layer in self.neuron_layers():
            layer.clear_neuron_mask()

    def active_neuron_fraction(self) -> float:
        """Overall fraction of neurons currently active across the model."""
        layers = self.neuron_layers()
        if not layers:
            return 1.0
        total = sum(layer.num_neurons for layer in layers)
        active = sum(layer.num_neurons * layer.active_neuron_fraction()
                     for layer in layers)
        return active / total

    # ------------------------------------------------------------------ #
    # inference helpers
    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions for ``inputs`` (argmax over logits)."""
        was_training = self.training
        self.eval()
        predictions = []
        for start in range(0, inputs.shape[0], batch_size):
            logits = self.forward(inputs[start:start + batch_size])
            predictions.append(np.argmax(logits, axis=1))
        if was_training:
            self.train()
        return np.concatenate(predictions) if predictions else np.array([])

    def evaluate_accuracy(self, inputs: np.ndarray, targets: np.ndarray,
                          batch_size: int = 256) -> float:
        """Classification accuracy on the given data."""
        predictions = self.predict(inputs, batch_size=batch_size)
        targets = np.asarray(targets)
        if predictions.size == 0:
            return 0.0
        return float(np.mean(predictions == targets))

    def clone_structure(self, factory: Callable[[], "Sequential"]) -> "Sequential":
        """Create a fresh model via ``factory`` and copy this model's weights."""
        clone = factory()
        clone.set_weights(self.get_weights())
        return clone

    def summary(self) -> str:
        """Human-readable layer-by-layer summary."""
        lines = [f"Sequential {self.name!r}"]
        for layer in iter_leaf_layers(self.layers):
            count = sum(param.size for param in layer.parameters())
            lines.append(
                f"  {layer.name:<28} neurons={layer.num_neurons:<6} "
                f"params={count}")
        lines.append(f"  total parameters: {self.num_parameters()}")
        return "\n".join(lines)
