"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the benchmark harness is reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "get_initializer",
]

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in and fan-out for dense and convolutional shapes.

    Dense weights are ``(out, in)``; convolution kernels are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_out = shape[0] * receptive
    fan_in = shape[1] * receptive
    return fan_in, fan_out


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases, batch-norm shift)."""
    del rng
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-one initialization (batch-norm scale)."""
    del rng
    return np.ones(shape, dtype=np.float64)


def uniform(shape: Tuple[int, ...], rng: np.random.Generator,
            low: float = -0.05, high: float = 0.05) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator,
           std: float = 0.05) -> np.ndarray:
    """Zero-mean Gaussian initialization."""
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...],
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...],
                  rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...],
               rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization (ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, ...],
              rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization (ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


_REGISTRY: Dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "uniform": uniform,
    "normal": normal,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name: str) -> Initializer:
    """Look up an initializer by name.

    Raises
    ------
    KeyError
        If ``name`` is not a registered initializer.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown initializer {name!r}; "
            f"available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]
