"""Learning-rate schedules.

The paper trains each dataset with a fixed learning rate, but longer
collaborations (the ``full`` experiment scale) benefit from decaying the
local learning rate as the global model converges.  Schedules operate on an
optimizer in place: call :meth:`step` once per aggregation cycle.
"""

from __future__ import annotations

import math
from typing import Dict

from .optimizers import Optimizer

__all__ = ["LRScheduler", "StepDecay", "ExponentialDecay", "CosineDecay",
           "get_scheduler"]


class LRScheduler:
    """Base class: adjusts an optimizer's learning rate over cycles."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.current_cycle = 0

    def learning_rate_at(self, cycle: int) -> float:
        """Learning rate for the given (0-based) cycle index."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one cycle and install the new learning rate."""
        self.current_cycle += 1
        new_lr = self.learning_rate_at(self.current_cycle)
        self.optimizer.lr = new_lr
        return new_lr

    @property
    def current_lr(self) -> float:
        """The optimizer's current learning rate."""
        return self.optimizer.lr


class StepDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` cycles."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10,
                 gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def learning_rate_at(self, cycle: int) -> float:
        return self.base_lr * (self.gamma ** (cycle // self.step_size))


class ExponentialDecay(LRScheduler):
    """Multiply the learning rate by ``gamma`` every cycle."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma

    def learning_rate_at(self, cycle: int) -> float:
        return self.base_lr * (self.gamma ** cycle)


class CosineDecay(LRScheduler):
    """Cosine annealing from the base rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_cycles: int,
                 min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        self.total_cycles = total_cycles
        self.min_lr = min_lr

    def learning_rate_at(self, cycle: int) -> float:
        progress = min(1.0, cycle / self.total_cycles)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


_REGISTRY: Dict[str, type] = {
    "step": StepDecay,
    "exponential": ExponentialDecay,
    "cosine": CosineDecay,
}


def get_scheduler(name: str, optimizer: Optimizer, **kwargs) -> LRScheduler:
    """Instantiate a scheduler by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](optimizer, **kwargs)
