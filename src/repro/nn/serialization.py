"""Model-weight serialization.

Checkpoints use NumPy's ``.npz`` container: one array per named parameter
plus a small metadata record.  They are used by the examples to persist the
global model of a finished collaboration and by downstream users to
evaluate or fine-tune it later.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

import numpy as np

from .model import Sequential

__all__ = ["save_weights", "load_weights", "save_model", "load_model_into"]

_METADATA_KEY = "__repro_metadata__"


def save_weights(weights: Dict[str, np.ndarray], path: str,
                 metadata: Optional[Dict[str, str]] = None) -> None:
    """Write a weight dictionary (plus optional metadata) to ``path``.

    The ``.npz`` suffix is appended automatically when missing.
    """
    if not weights:
        raise ValueError("cannot save an empty weight dictionary")
    if _METADATA_KEY in weights:
        raise ValueError(f"{_METADATA_KEY!r} is a reserved key")
    payload = {name: np.asarray(value) for name, value in weights.items()}
    payload[_METADATA_KEY] = np.array(
        json.dumps(metadata or {}), dtype=np.str_)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **payload)


def load_weights(path: str) -> Dict[str, np.ndarray]:
    """Load a weight dictionary previously written by :func:`save_weights`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files
                if name != _METADATA_KEY}


def load_metadata(path: str) -> Dict[str, str]:
    """Load the metadata record stored next to the weights."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        if _METADATA_KEY not in archive.files:
            return {}
        return json.loads(str(archive[_METADATA_KEY]))


def save_model(model: Sequential, path: str,
               metadata: Optional[Dict[str, str]] = None) -> None:
    """Save a model's weights (convenience wrapper)."""
    info = {"model_name": model.name,
            "num_parameters": str(model.num_parameters())}
    info.update(metadata or {})
    save_weights(model.get_weights(), path, metadata=info)


def load_model_into(model: Sequential, path: str) -> Sequential:
    """Load weights from ``path`` into an existing model instance."""
    model.set_weights(load_weights(path))
    return model
