"""Loss functions.

Each loss exposes ``forward(predictions, targets) -> float`` and
``backward() -> np.ndarray`` returning the gradient with respect to the
predictions, averaged over the batch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "get_loss"]


class Loss:
    """Base class for losses."""

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Compute the scalar loss value."""
        raise NotImplementedError

    def backward(self) -> np.ndarray:
        """Gradient of the loss w.r.t. the predictions of the last forward."""
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)


class SoftmaxCrossEntropy(Loss):
    """Fused softmax + cross-entropy for integer class targets."""

    def __init__(self) -> None:
        self._probs: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if predictions.ndim != 2:
            raise ValueError(
                f"expected 2-D logits (batch, classes); got {predictions.shape}")
        targets = np.asarray(targets)
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ValueError(
                f"targets shape {targets.shape} incompatible with logits "
                f"{predictions.shape}")
        if targets.min() < 0 or targets.max() >= predictions.shape[1]:
            raise ValueError("target labels out of range for logits")
        shifted = predictions - predictions.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._targets = targets
        batch = predictions.shape[0]
        log_likelihood = -np.log(
            np.clip(probs[np.arange(batch), targets], 1e-12, None))
        return float(log_likelihood.mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        batch = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(batch), self._targets] -= 1.0
        return grad / batch


class MeanSquaredError(Loss):
    """Mean squared error over all entries."""

    def __init__(self) -> None:
        self._diff: Optional[np.ndarray] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        targets = np.asarray(targets, dtype=predictions.dtype)
        if targets.shape != predictions.shape:
            raise ValueError(
                f"targets shape {targets.shape} must match predictions "
                f"{predictions.shape}")
        self._diff = predictions - targets
        return float(np.mean(self._diff ** 2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size


_REGISTRY = {
    "softmax_cross_entropy": SoftmaxCrossEntropy,
    "cross_entropy": SoftmaxCrossEntropy,
    "mse": MeanSquaredError,
}


def get_loss(name: str) -> Loss:
    """Instantiate a loss by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name]()
