"""Pure-NumPy neural-network substrate.

This package replaces the PyTorch dependency of the original Helios
implementation with a small but complete training stack: layers,
losses, optimizers, model containers, FLOP/memory estimation, and
structured (per-neuron) masking — the hook Helios' soft-training uses.
"""

from .parameter import Parameter
from .model import Sequential, iter_leaf_layers
from .masking import ModelMask
from .flops import ModelCost, LayerCost, estimate_model_cost, trace_shapes
from .losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, get_loss
from .optimizers import SGD, Adam, MomentumSGD, Optimizer, get_optimizer
from .schedulers import (CosineDecay, ExponentialDecay, LRScheduler,
                         StepDecay, get_scheduler)
from .serialization import (load_model_into, load_weights, save_model,
                            save_weights)
from . import initializers, layers, models

__all__ = [
    "Parameter",
    "Sequential",
    "iter_leaf_layers",
    "ModelMask",
    "ModelCost",
    "LayerCost",
    "estimate_model_cost",
    "trace_shapes",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "get_loss",
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "Adam",
    "get_optimizer",
    "LRScheduler",
    "StepDecay",
    "ExponentialDecay",
    "CosineDecay",
    "get_scheduler",
    "save_weights",
    "load_weights",
    "save_model",
    "load_model_into",
    "initializers",
    "layers",
    "models",
]
