"""Model factories for the architectures the paper evaluates."""

from .mlp import build_mlp
from .lenet import build_lenet
from .alexnet import build_alexnet
from .resnet import build_resnet
from .registry import build_model, available_models

__all__ = [
    "build_mlp",
    "build_lenet",
    "build_alexnet",
    "build_resnet",
    "build_model",
    "available_models",
]
