"""Name-based model construction used by experiment configs."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..model import Sequential
from .alexnet import build_alexnet
from .lenet import build_lenet
from .mlp import build_mlp
from .resnet import build_resnet

__all__ = ["build_model", "available_models"]


def _build_mlp_for_images(input_shape: Tuple[int, int, int],
                          num_classes: int, width_multiplier: float,
                          rng: Optional[np.random.Generator]) -> Sequential:
    channels, height, width = input_shape
    hidden = (max(8, int(64 * width_multiplier)),
              max(8, int(32 * width_multiplier)))
    return build_mlp(channels * height * width, num_classes,
                     hidden_sizes=hidden, rng=rng, flatten_input=True)


_BUILDERS: Dict[str, Callable[..., Sequential]] = {
    "mlp": _build_mlp_for_images,
    "lenet": lambda input_shape, num_classes, width_multiplier, rng:
        build_lenet(input_shape, num_classes,
                    width_multiplier=width_multiplier, rng=rng),
    # Dropout is disabled for registry-built AlexNets: the experiment
    # harness trains width-reduced models on reduced datasets, where a 0.5
    # dropout rate prevents convergence within the simulated cycle budget.
    "alexnet": lambda input_shape, num_classes, width_multiplier, rng:
        build_alexnet(input_shape, num_classes,
                      width_multiplier=width_multiplier, dropout_rate=0.0,
                      rng=rng),
    "resnet": lambda input_shape, num_classes, width_multiplier, rng:
        build_resnet(input_shape, num_classes,
                     width_multiplier=width_multiplier, rng=rng),
}


def available_models() -> Tuple[str, ...]:
    """Names accepted by :func:`build_model`."""
    return tuple(sorted(_BUILDERS))


def build_model(name: str, input_shape: Tuple[int, int, int],
                num_classes: int, width_multiplier: float = 1.0,
                rng: Optional[np.random.Generator] = None) -> Sequential:
    """Build one of the paper's model families by name.

    Parameters
    ----------
    name:
        One of :func:`available_models` (``lenet``, ``alexnet``, ``resnet``,
        ``mlp``).
    input_shape:
        ``(channels, height, width)`` of a single input sample.
    num_classes:
        Number of classifier outputs.
    width_multiplier:
        Width scale used to shrink models for fast simulation.
    rng:
        Random generator controlling initialization.
    """
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[name](input_shape, num_classes, width_multiplier, rng)
