"""LeNet-5 style model (paper setting: LeNet on MNIST)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from ..model import Sequential

__all__ = ["build_lenet"]


def build_lenet(input_shape: Tuple[int, int, int] = (1, 28, 28),
                num_classes: int = 10,
                width_multiplier: float = 1.0,
                rng: Optional[np.random.Generator] = None,
                name: str = "lenet") -> Sequential:
    """Build a LeNet-5 style CNN.

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of a single sample.  The default
        matches MNIST-shaped data.
    num_classes:
        Number of output classes.
    width_multiplier:
        Scales the channel/unit counts; values < 1 produce smaller models
        for fast tests while keeping the architecture shape.
    rng:
        Random generator for weight initialization.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape

    def scaled(base: int) -> int:
        return max(2, int(round(base * width_multiplier)))

    c1, c2 = scaled(6), scaled(16)
    f1, f2 = scaled(120), scaled(84)

    conv1 = Conv2D(channels, c1, 5, padding=2, rng=rng, name=f"{name}/conv1")
    pool1 = MaxPool2D(2, name=f"{name}/pool1")
    conv2 = Conv2D(c1, c2, 5, padding=0, rng=rng, name=f"{name}/conv2")
    pool2 = MaxPool2D(2, name=f"{name}/pool2")

    # Trace the spatial dimensions to size the first dense layer.
    h1 = height  # conv1 keeps size (padding=2, kernel=5)
    w1 = width
    h1, w1 = h1 // 2, w1 // 2                     # pool1
    h2, w2 = h1 - 4, w1 - 4                       # conv2 valid 5x5
    h2, w2 = h2 // 2, w2 // 2                     # pool2
    flat_dim = c2 * h2 * w2
    if flat_dim <= 0:
        raise ValueError(
            f"input shape {input_shape} too small for the LeNet topology")

    layers = [
        conv1, ReLU(name=f"{name}/relu1"), pool1,
        conv2, ReLU(name=f"{name}/relu2"), pool2,
        Flatten(name=f"{name}/flatten"),
        Dense(flat_dim, f1, rng=rng, name=f"{name}/fc1"),
        ReLU(name=f"{name}/relu3"),
        Dense(f1, f2, rng=rng, name=f"{name}/fc2"),
        ReLU(name=f"{name}/relu4"),
        Dense(f2, num_classes, rng=rng, name=f"{name}/output"),
    ]
    return Sequential(layers, name=name)
