"""AlexNet-style model (paper setting: AlexNet on CIFAR-10).

The original AlexNet targets 224x224 ImageNet inputs; CIFAR-scale
adaptations (as used by the paper's testbed) shrink the stem.  This factory
keeps the five-convolution + three-dense topology with a width multiplier so
the NumPy substrate can train it at laptop scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..layers import (BatchNorm2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D,
                      ReLU)
from ..model import Sequential

__all__ = ["build_alexnet"]


def build_alexnet(input_shape: Tuple[int, int, int] = (3, 32, 32),
                  num_classes: int = 10,
                  width_multiplier: float = 1.0,
                  dropout_rate: float = 0.5,
                  rng: Optional[np.random.Generator] = None,
                  name: str = "alexnet") -> Sequential:
    """Build a CIFAR-scale AlexNet-style CNN.

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of one sample; height/width must be
        divisible by 8 (three 2x2 poolings).
    num_classes:
        Number of output classes.
    width_multiplier:
        Scales every channel/unit count (default 1.0 = 64..256 channels).
    dropout_rate:
        Dropout used between the dense layers (0 disables dropout).
    rng:
        Random generator for weight initialization and dropout.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    rng = rng if rng is not None else np.random.default_rng(0)
    channels, height, width = input_shape
    if height % 8 != 0 or width % 8 != 0:
        raise ValueError("input height/width must be divisible by 8")

    def scaled(base: int) -> int:
        return max(4, int(round(base * width_multiplier)))

    c1, c2, c3, c4, c5 = (scaled(64), scaled(192), scaled(384),
                          scaled(256), scaled(256))
    f1, f2 = scaled(1024), scaled(512)
    flat_dim = c5 * (height // 8) * (width // 8)

    layers = [
        Conv2D(channels, c1, 3, padding=1, rng=rng, name=f"{name}/conv1"),
        BatchNorm2D(c1, name=f"{name}/bn1"),
        ReLU(name=f"{name}/relu1"),
        MaxPool2D(2, name=f"{name}/pool1"),

        Conv2D(c1, c2, 3, padding=1, rng=rng, name=f"{name}/conv2"),
        BatchNorm2D(c2, name=f"{name}/bn2"),
        ReLU(name=f"{name}/relu2"),
        MaxPool2D(2, name=f"{name}/pool2"),

        Conv2D(c2, c3, 3, padding=1, rng=rng, name=f"{name}/conv3"),
        ReLU(name=f"{name}/relu3"),
        Conv2D(c3, c4, 3, padding=1, rng=rng, name=f"{name}/conv4"),
        ReLU(name=f"{name}/relu4"),
        Conv2D(c4, c5, 3, padding=1, rng=rng, name=f"{name}/conv5"),
        ReLU(name=f"{name}/relu5"),
        MaxPool2D(2, name=f"{name}/pool3"),

        Flatten(name=f"{name}/flatten"),
        Dense(flat_dim, f1, rng=rng, name=f"{name}/fc1"),
        ReLU(name=f"{name}/relu6"),
    ]
    if dropout_rate > 0:
        layers.append(Dropout(dropout_rate, rng=rng, name=f"{name}/drop1"))
    layers.extend([
        Dense(f1, f2, rng=rng, name=f"{name}/fc2"),
        ReLU(name=f"{name}/relu7"),
    ])
    if dropout_rate > 0:
        layers.append(Dropout(dropout_rate, rng=rng, name=f"{name}/drop2"))
    layers.append(Dense(f2, num_classes, rng=rng, name=f"{name}/output"))
    return Sequential(layers, name=name)
