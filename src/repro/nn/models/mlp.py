"""Multi-layer perceptron factory (used by quick tests and examples)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..layers import Dense, Flatten, ReLU
from ..model import Sequential

__all__ = ["build_mlp"]


def build_mlp(input_dim: int, num_classes: int,
              hidden_sizes: Sequence[int] = (64, 32),
              rng: Optional[np.random.Generator] = None,
              flatten_input: bool = False,
              name: str = "mlp") -> Sequential:
    """Build a fully connected classifier.

    Parameters
    ----------
    input_dim:
        Number of input features (after flattening, if requested).
    num_classes:
        Output dimensionality.
    hidden_sizes:
        Width of each hidden layer.
    rng:
        Random generator for weight initialization.
    flatten_input:
        Insert a :class:`Flatten` layer first so image tensors can be fed
        directly.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    layers = []
    if flatten_input:
        layers.append(Flatten(name=f"{name}/flatten"))
    previous = input_dim
    for index, width in enumerate(hidden_sizes):
        layers.append(Dense(previous, width, rng=rng,
                            name=f"{name}/fc{index + 1}"))
        layers.append(ReLU(name=f"{name}/relu{index + 1}"))
        previous = width
    layers.append(Dense(previous, num_classes, rng=rng,
                        name=f"{name}/output"))
    return Sequential(layers, name=name)
