"""ResNet-18 style model (paper setting: ResNet-18 on CIFAR-100).

The CIFAR variant of ResNet-18: a 3x3 stem followed by four stages of basic
residual blocks with channel doubling, global average pooling and a linear
classifier.  ``blocks_per_stage`` and ``width_multiplier`` let tests run a
much smaller instance while keeping the residual topology.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..layers import (BatchNorm2D, Conv2D, Dense, GlobalAvgPool2D, ReLU,
                      ResidualBlock)
from ..model import Sequential

__all__ = ["build_resnet"]


def build_resnet(input_shape: Tuple[int, int, int] = (3, 32, 32),
                 num_classes: int = 100,
                 blocks_per_stage: Sequence[int] = (2, 2, 2, 2),
                 width_multiplier: float = 1.0,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "resnet") -> Sequential:
    """Build a CIFAR-scale ResNet.

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of one sample.
    num_classes:
        Number of output classes (100 for the paper's CIFAR-100 setting).
    blocks_per_stage:
        Number of residual blocks per stage; ``(2, 2, 2, 2)`` matches the
        ResNet-18 layout.
    width_multiplier:
        Scales all channel counts (base widths 64/128/256/512).
    rng:
        Random generator for weight initialization.
    """
    if width_multiplier <= 0:
        raise ValueError("width_multiplier must be positive")
    if not blocks_per_stage:
        raise ValueError("blocks_per_stage must not be empty")
    rng = rng if rng is not None else np.random.default_rng(0)
    in_channels = input_shape[0]

    def scaled(base: int) -> int:
        return max(4, int(round(base * width_multiplier)))

    stage_widths = [scaled(64 * (2 ** index))
                    for index in range(len(blocks_per_stage))]

    layers = [
        Conv2D(in_channels, stage_widths[0], 3, padding=1, use_bias=False,
               rng=rng, name=f"{name}/stem_conv"),
        BatchNorm2D(stage_widths[0], name=f"{name}/stem_bn"),
        ReLU(name=f"{name}/stem_relu"),
    ]
    previous = stage_widths[0]
    for stage_index, (blocks, width) in enumerate(
            zip(blocks_per_stage, stage_widths)):
        for block_index in range(blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            layers.append(ResidualBlock(
                previous, width, stride=stride, rng=rng,
                name=f"{name}/stage{stage_index + 1}_block{block_index + 1}"))
            previous = width
    layers.extend([
        GlobalAvgPool2D(name=f"{name}/gap"),
        Dense(previous, num_classes, rng=rng, name=f"{name}/output"),
    ])
    return Sequential(layers, name=name)
