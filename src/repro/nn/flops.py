"""Training-cost estimation (FLOPs, parameters, memory) for models.

The Helios resource-based profiling (paper Sec. IV-B) needs the training
computation workload ``W`` and memory usage ``M`` of a model so that the
analytical cost model ``Te = W/Ccpu + M/Vmc + M/Bn`` can predict per-cycle
training time on a device.  This module derives both quantities from the
actual layer graph by tracing one forward pass and applying standard
per-layer FLOP formulas.

The estimator also accepts per-layer *neuron fractions* so the expected cost
of a soft-trained (shrunk) model can be computed: training only a fraction
``p`` of a layer's neurons removes the corresponding fraction of that
layer's multiply–accumulate work and of the next layer's input work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layers.base import Layer
from .layers.conv import Conv2D
from .layers.dense import Dense
from .layers.normalization import _BatchNormBase
from .layers.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from .model import Sequential, iter_leaf_layers

__all__ = ["LayerCost", "ModelCost", "trace_shapes", "estimate_model_cost"]

# A backward pass costs roughly twice the forward pass (one pass for the
# input gradients and one for the weight gradients); training FLOPs are
# therefore taken as 3x inference FLOPs, the convention used by most
# training-cost calculators.
TRAINING_FLOP_MULTIPLIER = 3.0
BYTES_PER_VALUE = 4  # float32 storage assumed by the deployment cost model


@dataclass
class LayerCost:
    """Per-layer cost record."""

    name: str
    layer_type: str
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    inference_flops: float
    parameters: int
    activation_values: int
    num_neurons: int = 0
    neuron_fraction: float = 1.0

    @property
    def training_flops(self) -> float:
        """FLOPs of one training pass (forward + backward) for one sample."""
        return self.inference_flops * TRAINING_FLOP_MULTIPLIER


@dataclass
class ModelCost:
    """Aggregate model cost, the input of the hardware cost model."""

    layer_costs: List[LayerCost] = field(default_factory=list)

    @property
    def inference_flops(self) -> float:
        """Per-sample inference FLOPs."""
        return sum(cost.inference_flops for cost in self.layer_costs)

    @property
    def training_flops(self) -> float:
        """Per-sample training FLOPs (forward + backward)."""
        return sum(cost.training_flops for cost in self.layer_costs)

    @property
    def parameters(self) -> int:
        """Total parameter count."""
        return sum(cost.parameters for cost in self.layer_costs)

    @property
    def parameter_bytes(self) -> float:
        """Parameter storage in bytes."""
        return self.parameters * BYTES_PER_VALUE

    @property
    def activation_values(self) -> int:
        """Total activation values stored for one sample."""
        return sum(cost.activation_values for cost in self.layer_costs)

    def memory_bytes(self, batch_size: int = 1) -> float:
        """Training memory footprint: parameters + gradients + activations."""
        return (2.0 * self.parameter_bytes
                + self.activation_values * BYTES_PER_VALUE * batch_size)

    def memory_megabytes(self, batch_size: int = 1) -> float:
        """Training memory footprint in MB."""
        return self.memory_bytes(batch_size) / 1e6

    def training_gflops(self, num_samples: int = 1) -> float:
        """Training workload in GFLOPs for ``num_samples`` samples."""
        return self.training_flops * num_samples / 1e9


def trace_shapes(model: Sequential,
                 input_shape: Tuple[int, ...]) -> List[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]]:
    """Record every leaf layer's input/output shape for a single sample.

    Runs one forward pass on a zero batch of size 1 in evaluation mode and
    captures the shapes seen by each leaf layer (shapes exclude the batch
    dimension).
    """
    records: List[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]] = []
    leaves = list(iter_leaf_layers(model.layers))
    originals = {id(layer): layer.forward for layer in leaves}

    def make_wrapper(layer: Layer):
        original = originals[id(layer)]

        def wrapped(inputs: np.ndarray) -> np.ndarray:
            outputs = original(inputs)
            records.append((layer, tuple(inputs.shape[1:]),
                            tuple(outputs.shape[1:])))
            return outputs

        return wrapped

    was_training = model.training
    model.eval()
    try:
        for layer in leaves:
            layer.forward = make_wrapper(layer)  # type: ignore[method-assign]
        dummy = np.zeros((1,) + tuple(input_shape), dtype=np.float64)
        model.forward(dummy)
    finally:
        for layer in leaves:
            layer.forward = originals[id(layer)]  # type: ignore[method-assign]
        if was_training:
            model.train()
    return records


def _layer_inference_flops(layer: Layer, in_shape: Tuple[int, ...],
                           out_shape: Tuple[int, ...]) -> float:
    """Per-sample inference FLOPs for one leaf layer."""
    out_values = float(np.prod(out_shape)) if out_shape else 0.0
    in_values = float(np.prod(in_shape)) if in_shape else 0.0
    if isinstance(layer, Conv2D):
        kh, kw = layer.kernel_size
        macs = out_values * layer.in_channels * kh * kw
        return 2.0 * macs
    if isinstance(layer, Dense):
        macs = float(layer.in_features * layer.out_features)
        return 2.0 * macs
    if isinstance(layer, _BatchNormBase):
        return 4.0 * out_values
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        kh, kw = layer.kernel_size
        return out_values * kh * kw
    if isinstance(layer, GlobalAvgPool2D):
        return in_values
    # Activations, dropout, flatten: one (or zero) op per value.
    return out_values


def estimate_model_cost(model: Sequential, input_shape: Tuple[int, ...],
                        neuron_fractions: Optional[Dict[str, float]] = None
                        ) -> ModelCost:
    """Estimate the per-sample cost of training ``model``.

    Parameters
    ----------
    model:
        The model to profile.
    input_shape:
        Shape of a single input sample, e.g. ``(3, 32, 32)``.
    neuron_fractions:
        Optional mapping from maskable-layer name to the fraction of its
        neurons that participate in training (Helios' expected model
        volume).  Each layer's compute shrinks proportionally to its own
        fraction and to the fraction of the *previous* maskable layer
        (fewer input channels/features survive).
    """
    neuron_fractions = neuron_fractions or {}
    records = trace_shapes(model, input_shape)
    layer_costs: List[LayerCost] = []
    previous_fraction = 1.0
    for layer, in_shape, out_shape in records:
        flops = _layer_inference_flops(layer, in_shape, out_shape)
        fraction = 1.0
        if layer.num_neurons > 0:
            fraction = float(neuron_fractions.get(layer.name, 1.0))
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"neuron fraction for {layer.name!r} must be in (0, 1]; "
                    f"got {fraction}")
            flops *= fraction * previous_fraction
            previous_fraction = fraction
        params = sum(param.size for param in layer.parameters())
        if layer.num_neurons > 0 and fraction < 1.0:
            params = int(round(params * fraction))
        layer_costs.append(LayerCost(
            name=layer.name,
            layer_type=type(layer).__name__,
            input_shape=in_shape,
            output_shape=out_shape,
            inference_flops=flops,
            parameters=params,
            activation_values=int(np.prod(out_shape)) if out_shape else 0,
            num_neurons=layer.num_neurons,
            neuron_fraction=fraction,
        ))
    return ModelCost(layer_costs=layer_costs)
