"""Parameter container for the pure-NumPy neural-network substrate.

A :class:`Parameter` bundles a weight tensor with its gradient and a small
amount of metadata (a name and an ``axis`` describing which dimension indexes
*output neurons*).  The neuron axis is what the Helios soft-training logic
masks: selecting a subset of neurons in a layer means selecting a subset of
slices along this axis of every parameter that belongs to the layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor with an associated gradient buffer.

    Parameters
    ----------
    data:
        Initial value.  Stored as ``float64`` by default to keep numerical
        tests (gradient checks) tight; callers may pass ``float32`` data.
    name:
        Human-readable identifier, e.g. ``"conv1/weight"``.
    neuron_axis:
        The axis of ``data`` that indexes output neurons (filters for
        convolutions, output units for dense layers).  ``None`` means the
        parameter is not neuron-structured (e.g. a scalar temperature).
    """

    def __init__(self, data: np.ndarray, name: str = "param",
                 neuron_axis: Optional[int] = 0) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.neuron_axis = neuron_axis

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        """Shape of the underlying tensor."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Total number of scalar entries."""
        return int(self.data.size)

    @property
    def num_neurons(self) -> int:
        """Number of neurons along :attr:`neuron_axis` (0 if unstructured)."""
        if self.neuron_axis is None:
            return 0
        return int(self.data.shape[self.neuron_axis])

    def zero_grad(self) -> None:
        """Reset the gradient buffer to zeros."""
        self.grad = np.zeros_like(self.data)

    # ------------------------------------------------------------------ #
    # neuron-structured views
    # ------------------------------------------------------------------ #
    def neuron_slice(self, index: int) -> np.ndarray:
        """Return a view of the parameter slice belonging to one neuron."""
        if self.neuron_axis is None:
            raise ValueError(f"parameter {self.name!r} has no neuron axis")
        return np.take(self.data, index, axis=self.neuron_axis)

    def neuron_norms(self) -> np.ndarray:
        """L2 norm of each neuron's slice (used by contribution metrics)."""
        if self.neuron_axis is None:
            raise ValueError(f"parameter {self.name!r} has no neuron axis")
        moved = np.moveaxis(self.data, self.neuron_axis, 0)
        flat = moved.reshape(moved.shape[0], -1)
        return np.linalg.norm(flat, axis=1)

    def copy(self) -> "Parameter":
        """Deep copy of data, grad and metadata."""
        clone = Parameter(self.data.copy(), name=self.name,
                          neuron_axis=self.neuron_axis)
        clone.grad = self.grad.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Parameter(name={self.name!r}, shape={self.data.shape}, "
                f"neuron_axis={self.neuron_axis})")
