"""First-order optimizers operating on lists of :class:`Parameter`."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .parameter import Parameter

__all__ = ["Optimizer", "SGD", "MomentumSGD", "Adam", "get_optimizer"]


class Optimizer:
    """Base class.  Sub-classes implement :meth:`step`."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = lr

    def step(self) -> None:
        """Apply one update using the gradients stored on each parameter."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.weight_decay = weight_decay

    def step(self) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            param.data -= self.lr * grad


class MomentumSGD(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity = self._velocity.get(id(param))
            if velocity is None:
                velocity = np.zeros_like(param.data)
            velocity = self.momentum * velocity - self.lr * grad
            self._velocity[id(param)] = velocity
            param.data += velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999,
                 epsilon: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1.0 - self.beta1 ** self._t)
            v_hat = v / (1.0 - self.beta2 ** self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.epsilon)


_REGISTRY = {
    "sgd": SGD,
    "momentum": MomentumSGD,
    "adam": Adam,
}


def get_optimizer(name: str, parameters: Iterable[Parameter],
                  **kwargs) -> Optimizer:
    """Instantiate an optimizer by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown optimizer {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](parameters, **kwargs)
