"""AFO — asynchronous federated optimization (Xie et al., paper ref. [6]).

AFO improves plain asynchronous FL by discounting stale updates: when an
update arrives that was computed from the global model of ``τ`` cycles ago,
it is mixed into the current global model with weight

    α_t = α · (1 + staleness)^(-a)

instead of being averaged at full strength.  Fresh updates (staleness 0)
are mixed with weight ``α``.  This reduces — but does not eliminate — the
staleness damage of asynchronous stragglers, which is how the paper
positions AFO in its comparison.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fl.client import ClientUpdate
from ..fl.executor import TrainingJob
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome
from .async_fl import AsynchronousFLStrategy, PendingJob

__all__ = ["AFOStrategy"]


class AFOStrategy(AsynchronousFLStrategy):
    """Staleness-aware asynchronous aggregation."""

    name = "AFO"

    def __init__(self, mixing_alpha: float = 0.9,
                 staleness_exponent: float = 1.0, **kwargs) -> None:
        """
        Parameters
        ----------
        mixing_alpha:
            Base mixing weight ``α`` of a fresh update.
        staleness_exponent:
            Exponent ``a`` of the polynomial staleness discount.
        """
        super().__init__(**kwargs)
        if not 0.0 < mixing_alpha <= 1.0:
            raise ValueError("mixing_alpha must be in (0, 1]")
        if staleness_exponent < 0:
            raise ValueError("staleness_exponent must be non-negative")
        self.mixing_alpha = mixing_alpha
        self.staleness_exponent = staleness_exponent

    # ------------------------------------------------------------------ #
    def _staleness_weight(self, staleness: int) -> float:
        return self.mixing_alpha * (1.0 + staleness) ** (-self.staleness_exponent)

    def _mix_into_global(self, sim: FederatedSimulation,
                         update_weights: Dict[str, np.ndarray],
                         mixing: float) -> None:
        current = sim.server.get_global_weights()
        blended = {
            name: (1.0 - mixing) * current[name]
            + mixing * np.asarray(update_weights[name])
            for name in current
        }
        sim.server.set_global_weights(blended)

    # ------------------------------------------------------------------ #
    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        global_weights = sim.server.get_global_weights()
        capable = self.capable_indices(sim)
        stragglers = self.straggler_indices()

        losses: List[float] = []

        fresh_updates: List[ClientUpdate] = sim.train_clients(
            capable, weights=global_weights, base_cycle=cycle)
        durations: List[float] = [sim.client_cycle_seconds(client_index)
                                  for client_index in capable]
        losses.extend(update.train_loss for update in fresh_updates)

        # Fresh capable updates: aggregate them and mix with full alpha.
        if fresh_updates:
            from ..fl.aggregation import aggregate_full
            averaged = aggregate_full(fresh_updates)
            self._mix_into_global(sim, averaged,
                                  self._staleness_weight(0))
            sim.server.current_cycle += 1

        # Straggler deliveries: the due trainings run as one batch (each
        # from its own stale snapshot, so they are order-independent), the
        # staleness-discounted mixing stays sequential in client order.
        delivery_jobs: List[TrainingJob] = []
        for client_index in stragglers:
            job = self.pending.get(client_index)
            if job is None:
                period = self.straggler_period(sim, client_index)
                self.pending[client_index] = PendingJob(
                    start_cycle=cycle,
                    finish_cycle=cycle + period - 1,
                    base_weights=global_weights,
                )
                continue
            if cycle >= job.finish_cycle:
                delivery_jobs.append(TrainingJob(
                    index=client_index, weights=job.base_weights,
                    base_cycle=job.start_cycle))
                del self.pending[client_index]
        stale_updates = sim.run_jobs(delivery_jobs)
        stale_deliveries = len(stale_updates)
        for update in stale_updates:
            staleness = cycle - update.base_cycle
            self._mix_into_global(sim, update.weights,
                                  self._staleness_weight(staleness))
            losses.append(update.train_loss)

        duration = (float(max(durations)) if durations
                    else self.capable_pace_seconds(sim))
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return CycleOutcome(
            duration_s=duration,
            participating_clients=len(fresh_updates) + stale_deliveries,
            mean_train_loss=mean_loss,
            straggler_fraction_trained=1.0,
            extra={"stale_deliveries": float(stale_deliveries)},
        )
