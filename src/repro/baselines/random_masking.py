"""Random partial-model training (the paper's "Random" baseline, ref. [12]).

Following Caldas et al.'s federated dropout, each straggler trains a
*random* subset of neurons of the expected model volume every cycle.  The
collaboration stays synchronous (the shrunk stragglers keep up with the
pace), but the selection ignores neuron contributions, provides no explicit
rotation guarantee and uses plain sample-count aggregation — the three
ingredients Helios adds on top.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fl.client import ClientUpdate
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome
from ..nn.masking import ModelMask
from .common import StragglerAwareStrategy

__all__ = ["RandomMaskingStrategy"]


class RandomMaskingStrategy(StragglerAwareStrategy):
    """Synchronous FL with uniformly random partial models on stragglers."""

    name = "Random"

    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        global_weights = sim.server.get_global_weights()
        stragglers = set(self.straggler_indices())
        updates: List[ClientUpdate] = []
        durations: List[float] = []
        straggler_fractions: List[float] = []

        for client_index in sim.client_indices():
            if client_index in stragglers:
                fractions = self.layer_fractions(sim, client_index)
                mask = ModelMask.random(sim.server.global_model, fractions,
                                        rng=self.rng)
                update = sim.train_client(client_index, global_weights,
                                          mask=mask, base_cycle=cycle)
                durations.append(sim.client_cycle_seconds(client_index,
                                                          mask=mask))
                straggler_fractions.append(mask.active_fraction())
            else:
                update = sim.train_client(client_index, global_weights,
                                          base_cycle=cycle)
                durations.append(sim.client_cycle_seconds(client_index))
            updates.append(update)

        sim.server.aggregate(updates, partial=True)
        mean_loss = float(np.mean([update.train_loss for update in updates]))
        return CycleOutcome(
            duration_s=float(max(durations)),
            participating_clients=len(updates),
            mean_train_loss=mean_loss,
            straggler_fraction_trained=(float(np.mean(straggler_fractions))
                                        if straggler_fractions else 1.0),
        )
