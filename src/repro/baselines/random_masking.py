"""Random partial-model training (the paper's "Random" baseline, ref. [12]).

Following Caldas et al.'s federated dropout, each straggler trains a
*random* subset of neurons of the expected model volume every cycle.  The
collaboration stays synchronous (the shrunk stragglers keep up with the
pace), but the selection ignores neuron contributions, provides no explicit
rotation guarantee and uses plain sample-count aggregation — the three
ingredients Helios adds on top.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fl.client import TrainingSummary
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome
from ..nn.masking import ModelMask
from .common import StragglerAwareStrategy

__all__ = ["RandomMaskingStrategy"]


class RandomMaskingStrategy(StragglerAwareStrategy):
    """Synchronous FL with uniformly random partial models on stragglers."""

    name = "Random"

    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        stragglers = set(self.straggler_indices())
        indices = sim.client_indices()
        # Draw the straggler masks up front (in client order, preserving
        # the RNG stream of the historical serial loop), then hand the
        # whole cycle to the execution backend in one batch.
        masks: Dict[int, ModelMask] = {
            client_index: ModelMask.random(
                sim.server.global_model,
                self.layer_fractions(sim, client_index), rng=self.rng)
            for client_index in indices if client_index in stragglers
        }
        summaries: List[TrainingSummary] = sim.train_and_aggregate(
            indices, masks=masks, base_cycle=cycle, partial=True)
        durations: List[float] = [
            sim.client_cycle_seconds(client_index,
                                     mask=masks.get(client_index))
            for client_index in indices
        ]
        straggler_fractions: List[float] = [
            mask.active_fraction() for mask in masks.values()]

        mean_loss = float(np.mean([summary.train_loss
                                   for summary in summaries]))
        return CycleOutcome(
            duration_s=float(max(durations)),
            participating_clients=len(summaries),
            mean_train_loss=mean_loss,
            straggler_fraction_trained=(float(np.mean(straggler_fractions))
                                        if straggler_fractions else 1.0),
        )
