"""Fixed structured pruning (Jiang et al. style, paper ref. [14]).

Each straggler's model is pruned *once* to the expected volume and the same
subnetwork trains every cycle.  The collaboration is synchronous and fast,
but — as the paper argues in Sec. II-B and V-A — the permanently pruned
neurons never contribute again, which caps the straggler's information
capacity and hurts global convergence.  This baseline isolates exactly that
effect against Helios' rotating selection.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..fl.client import ClientUpdate
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome
from ..nn.masking import ModelMask
from .common import StragglerAwareStrategy

__all__ = ["FixedPruningStrategy"]


class FixedPruningStrategy(StragglerAwareStrategy):
    """Synchronous FL with a permanently pruned model on each straggler."""

    name = "Fixed Pruning"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.fixed_masks: Dict[int, ModelMask] = {}

    def setup(self, sim: FederatedSimulation) -> None:
        super().setup(sim)
        self.fixed_masks = {}
        for client_index in self.straggler_indices():
            fractions = self.layer_fractions(sim, client_index)
            self.fixed_masks[client_index] = ModelMask.random(
                sim.server.global_model, fractions, rng=self.rng)

    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        indices = sim.client_indices()
        updates: List[ClientUpdate] = sim.train_clients(
            indices, masks=self.fixed_masks, base_cycle=cycle)
        durations: List[float] = [
            sim.client_cycle_seconds(client_index,
                                     mask=self.fixed_masks.get(client_index))
            for client_index in indices
        ]
        straggler_fractions: List[float] = [
            mask.active_fraction() for mask in self.fixed_masks.values()]

        sim.server.aggregate(updates, partial=True)
        mean_loss = float(np.mean([update.train_loss for update in updates]))
        return CycleOutcome(
            duration_s=float(max(durations)),
            participating_clients=len(updates),
            mean_train_loss=mean_loss,
            straggler_fraction_trained=(float(np.mean(straggler_fractions))
                                        if straggler_fractions else 1.0),
        )
