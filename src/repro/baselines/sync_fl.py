"""Synchronous federated learning (the paper's "Syn. FL" baseline).

Every device — stragglers included — trains the full model every cycle and
the server waits for all of them before aggregating.  Accuracy per cycle is
the best of all baselines (nothing is dropped or shrunk), but the cycle
duration is dictated by the slowest straggler, which is exactly the
motivation example of the paper's Fig. 1.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..fl.client import TrainingSummary
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome
from .common import StragglerAwareStrategy

__all__ = ["SynchronousFLStrategy"]


class SynchronousFLStrategy(StragglerAwareStrategy):
    """Classical synchronous FedAvg over the whole fleet."""

    name = "Syn. FL"

    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        indices = sim.client_indices()
        # Train + aggregate through the topology-aware path: under
        # hierarchical aggregation the updates fold inside the shards
        # and only their weight-free summaries come back.
        summaries: List[TrainingSummary] = sim.train_and_aggregate(
            indices, base_cycle=cycle, partial=False)
        durations: List[float] = [sim.client_cycle_seconds(index)
                                  for index in indices]
        # Degrade-mode failovers may drop every scheduled client in a
        # cycle; report a zero loss instead of np.mean's nan-on-empty.
        mean_loss = (float(np.mean([summary.train_loss
                                    for summary in summaries]))
                     if summaries else 0.0)
        return CycleOutcome(
            duration_s=float(max(durations)),
            participating_clients=len(summaries),
            mean_train_loss=mean_loss,
            straggler_fraction_trained=1.0,
        )
