"""Baseline collaboration strategies the paper compares Helios against."""

from .afo import AFOStrategy
from .async_fl import AsynchronousFLStrategy, PendingJob
from .common import StragglerAwareStrategy
from .fixed_pruning import FixedPruningStrategy
from .random_masking import RandomMaskingStrategy
from .st_only import SoftTrainingOnlyStrategy, make_st_only_config
from .sync_fl import SynchronousFLStrategy

__all__ = [
    "StragglerAwareStrategy",
    "SynchronousFLStrategy",
    "AsynchronousFLStrategy",
    "PendingJob",
    "AFOStrategy",
    "RandomMaskingStrategy",
    "FixedPruningStrategy",
    "SoftTrainingOnlyStrategy",
    "make_st_only_config",
]
