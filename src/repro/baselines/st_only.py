"""Soft-training without aggregation optimization ("S.T. Only", Fig. 6).

The paper's own ablation: the full Helios soft-training pipeline
(contribution-guided rotating selection, rejoin regulation, pace-matched
volumes) but with plain sample-count FedAvg aggregation instead of the
heterogeneity-aware weights of Eq. 10.  Comparing it against Helios
isolates the benefit of the aggregation optimization.
"""

from __future__ import annotations

from typing import Optional

from ..core.helios import HeliosConfig, HeliosStrategy

__all__ = ["SoftTrainingOnlyStrategy", "make_st_only_config"]


def make_st_only_config(base: Optional[HeliosConfig] = None) -> HeliosConfig:
    """A Helios config with the aggregation optimization disabled."""
    config = base or HeliosConfig()
    return HeliosConfig(
        top_share=config.top_share,
        identification=config.identification,
        straggler_top_k=config.straggler_top_k,
        slowdown_threshold=config.slowdown_threshold,
        volume_policy=config.volume_policy,
        min_volume=config.min_volume,
        pace_slack=config.pace_slack,
        aggregation="fedavg",
        combine_sample_counts=config.combine_sample_counts,
        rejoin_margin=config.rejoin_margin,
        adapt_volume_cycles=config.adapt_volume_cycles,
        volume_adapt_rate=config.volume_adapt_rate,
        seed=config.seed,
    )


class SoftTrainingOnlyStrategy(HeliosStrategy):
    """Helios soft-training with plain FedAvg aggregation."""

    name = "S.T. Only"

    def __init__(self, config: Optional[HeliosConfig] = None) -> None:
        super().__init__(make_st_only_config(config))
        self.name = "S.T. Only"
