"""Asynchronous federated learning (the paper's "Asyn. FL" baseline).

Capable devices aggregate every cycle without waiting for stragglers.  A
straggler keeps training the full model in the background: it snapshots the
global model when it starts, spends several capable-device cycles on its
local training (the ratio of its full-model cycle time to the collaboration
pace), and only then delivers an update — computed from the *stale*
snapshot — which is merged in like any other update.  This reproduces both
the speed advantage and the information-degradation / staleness problems
the paper's Fig. 2 and Sec. II-B describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..fl.client import ClientUpdate
from ..fl.executor import TrainingJob
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome
from .common import StragglerAwareStrategy

__all__ = ["PendingJob", "AsynchronousFLStrategy"]


@dataclass
class PendingJob:
    """A straggler's in-flight local training."""

    start_cycle: int
    finish_cycle: int
    base_weights: Dict[str, np.ndarray]


class AsynchronousFLStrategy(StragglerAwareStrategy):
    """Asynchronous FL with stale straggler updates."""

    name = "Asyn. FL"

    def __init__(self, aggregation_period: Optional[int] = None,
                 **kwargs) -> None:
        """
        Parameters
        ----------
        aggregation_period:
            Force every straggler to deliver every this many cycles (the
            knob swept in the paper's Fig. 2).  ``None`` derives the period
            from the straggler's slowdown factor.
        """
        super().__init__(**kwargs)
        if aggregation_period is not None and aggregation_period < 1:
            raise ValueError("aggregation_period must be at least 1")
        self.aggregation_period = aggregation_period
        self.pending: Dict[int, PendingJob] = {}

    # ------------------------------------------------------------------ #
    def setup(self, sim: FederatedSimulation) -> None:
        super().setup(sim)
        self.pending = {}

    def straggler_period(self, sim: FederatedSimulation,
                         client_index: int) -> int:
        """Number of capable cycles one straggler training cycle spans."""
        if self.aggregation_period is not None:
            return self.aggregation_period
        pace = self.capable_pace_seconds(sim)
        straggler_time = sim.client_cycle_seconds(client_index)
        return max(1, int(np.ceil(straggler_time / max(pace, 1e-9))))

    # ------------------------------------------------------------------ #
    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        global_weights = sim.server.get_global_weights()
        capable = self.capable_indices(sim)
        stragglers = self.straggler_indices()

        durations: List[float] = [sim.client_cycle_seconds(client_index)
                                  for client_index in capable]

        # Collect this cycle's work — fresh capable trainings plus any due
        # stale straggler deliveries — and run it as one backend batch.
        jobs: List[TrainingJob] = [
            TrainingJob(index=client_index, weights=global_weights,
                        base_cycle=cycle)
            for client_index in capable
        ]
        stale_deliveries = 0
        for client_index in stragglers:
            job = self.pending.get(client_index)
            if job is None:
                period = self.straggler_period(sim, client_index)
                self.pending[client_index] = PendingJob(
                    start_cycle=cycle,
                    finish_cycle=cycle + period - 1,
                    base_weights=global_weights,
                )
                continue
            if cycle >= job.finish_cycle:
                jobs.append(TrainingJob(index=client_index,
                                        weights=job.base_weights,
                                        base_cycle=job.start_cycle))
                stale_deliveries += 1
                del self.pending[client_index]

        updates: List[ClientUpdate] = sim.run_jobs(jobs)

        if updates:
            sim.server.aggregate(updates, partial=False)
        mean_loss = (float(np.mean([update.train_loss for update in updates]))
                     if updates else 0.0)
        # The cycle pace is set by the capable devices only.
        duration = (float(max(durations)) if durations
                    else self.capable_pace_seconds(sim))
        return CycleOutcome(
            duration_s=duration,
            participating_clients=len(updates),
            mean_train_loss=mean_loss,
            straggler_fraction_trained=1.0,
            extra={"stale_deliveries": float(stale_deliveries)},
        )
