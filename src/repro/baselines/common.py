"""Shared plumbing for the baseline strategies.

Every baseline needs to know who the stragglers are and (for the
partial-model baselines) which expected model volume keeps them on pace.
:class:`StragglerAwareStrategy` performs that identification once during
``setup`` using the same components Helios uses, so all methods compete
under identical straggler/volume assumptions and differences in the results
come purely from the collaboration scheme — matching the paper's
experimental protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.straggler import StragglerIdentifier, StragglerReport
from ..core.targets import OptimizationTargetPolicy, VolumeAssignment
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import FederatedStrategy

__all__ = ["StragglerAwareStrategy"]


class StragglerAwareStrategy(FederatedStrategy):
    """Base class: identifies stragglers and their volumes during setup."""

    name = "straggler-aware"

    def __init__(self, straggler_top_k: Optional[int] = None,
                 slowdown_threshold: float = 1.5,
                 min_volume: float = 0.1, pace_slack: float = 1.1,
                 seed: int = 0) -> None:
        self.straggler_top_k = straggler_top_k
        self.slowdown_threshold = slowdown_threshold
        self.min_volume = min_volume
        self.pace_slack = pace_slack
        self.seed = seed
        self.report: Optional[StragglerReport] = None
        self.assignment: Optional[VolumeAssignment] = None
        self.volumes: Dict[int, float] = {}
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def setup(self, sim: FederatedSimulation) -> None:
        model = sim.server.global_model
        devices = [client.device for client in sim.clients]
        samples = [max(1, int(round(client.num_samples
                                    * client.config.local_epochs
                                    * sim.workload_scale)))
                   for client in sim.clients]
        representative = int(np.median(samples)) if samples else 1
        batch_size = sim.clients[0].config.batch_size
        identifier = StragglerIdentifier(
            model, sim.input_shape,
            samples_per_cycle=max(1, representative),
            batch_size=batch_size,
            slowdown_threshold=self.slowdown_threshold)
        self.report = identifier.identify_by_resources(
            devices, top_k=self.straggler_top_k)
        policy = OptimizationTargetPolicy(
            model, sim.input_shape, batch_size=batch_size,
            min_volume=self.min_volume, pace_slack=self.pace_slack)
        self.assignment = policy.assign_resource_adapted(
            self.report, devices,
            samples_per_cycle={index: samples[index]
                               for index in range(len(sim.clients))})
        self.volumes = dict(self.assignment.volumes)

    # ------------------------------------------------------------------ #
    def straggler_indices(self) -> List[int]:
        """Indices of the identified stragglers."""
        if self.report is None:
            return []
        return list(self.report.straggler_indices)

    def capable_indices(self, sim: FederatedSimulation) -> List[int]:
        """Indices of the capable (non-straggler) devices."""
        stragglers = set(self.straggler_indices())
        return [index for index in sim.client_indices()
                if index not in stragglers]

    def capable_pace_seconds(self, sim: FederatedSimulation) -> float:
        """Cycle duration of the capable devices (the collaboration pace)."""
        capable = self.capable_indices(sim)
        indices = capable if capable else sim.client_indices()
        return max(sim.client_cycle_seconds(index) for index in indices)

    def layer_fractions(self, sim: FederatedSimulation,
                        client_index: int) -> Dict[str, float]:
        """Uniform per-layer volume fractions for one straggler."""
        volume = self.volumes.get(client_index, 1.0)
        return {layer.name: volume
                for layer in sim.server.global_model.neuron_layers()}
