"""Synthetic stand-ins for MNIST, CIFAR-10 and CIFAR-100.

The benchmark environment has no network access, so the paper's datasets
cannot be downloaded.  These generators produce class-conditional image
datasets with the same tensor shapes and class counts as the originals.

Every sample is built as

    image = shared_base + separation · class_delta + spatial shift + noise

where the *shared base* makes classes correlated (a linear probe is not
enough), the per-class *delta* images carry the class signal, random
translations force the model to learn shift-tolerant features (what the
convolution/pooling stack is for), and a small label-noise rate caps the
reachable accuracy below 100 %.  The resulting tasks are learnable but need
several passes to converge, and the difficulty ordering
``mnist < cifar10 < cifar100`` is preserved — which is what drives the
paper's per-dataset differences in convergence speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .dataset import Dataset

__all__ = [
    "SyntheticImageSpec",
    "DATASET_SPECS",
    "VirtualClientDatasets",
    "make_classification_images",
    "load_synthetic_dataset",
    "available_datasets",
]


@dataclass(frozen=True)
class SyntheticImageSpec:
    """Recipe for one synthetic dataset family.

    Attributes
    ----------
    name:
        Dataset name used in reports.
    image_shape:
        ``(channels, height, width)`` of one sample.
    num_classes:
        Number of classes.
    separation:
        Scale of the class-specific delta added to the shared base; lower
        values make classes harder to tell apart.
    noise_std:
        Standard deviation of the per-sample white noise.
    max_shift:
        Maximum absolute random translation (pixels) applied per sample.
    label_noise:
        Fraction of samples whose label is replaced by a random class.
    prototypes_per_class:
        Number of distinct delta images per class (intra-class variation).
    smoothness:
        Spatial smoothness of the generated patterns (upsampling factor).
    """

    name: str
    image_shape: Tuple[int, int, int]
    num_classes: int
    separation: float
    noise_std: float
    max_shift: int
    label_noise: float
    prototypes_per_class: int = 1
    smoothness: int = 4


DATASET_SPECS: Dict[str, SyntheticImageSpec] = {
    # MNIST stand-in: easiest — strong class signal, mild jitter.
    "mnist": SyntheticImageSpec(
        name="synthetic-mnist", image_shape=(1, 28, 28), num_classes=10,
        separation=0.6, noise_std=1.0, max_shift=2, label_noise=0.02,
        prototypes_per_class=1, smoothness=4),
    # CIFAR-10 stand-in: weaker signal, more jitter, intra-class variation.
    "cifar10": SyntheticImageSpec(
        name="synthetic-cifar10", image_shape=(3, 32, 32), num_classes=10,
        separation=0.55, noise_std=1.0, max_shift=2, label_noise=0.04,
        prototypes_per_class=2, smoothness=4),
    # CIFAR-100 stand-in: hardest — 100 classes share the same base.
    "cifar100": SyntheticImageSpec(
        name="synthetic-cifar100", image_shape=(3, 32, 32), num_classes=100,
        separation=0.55, noise_std=0.9, max_shift=2, label_noise=0.04,
        prototypes_per_class=1, smoothness=4),
}


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`load_synthetic_dataset`."""
    return tuple(sorted(DATASET_SPECS))


def _smooth_noise(shape: Tuple[int, int, int], smoothness: int,
                  rng: np.random.Generator) -> np.ndarray:
    """Generate a smooth random image by upsampling low-resolution noise."""
    channels, height, width = shape
    low_h = max(2, height // smoothness)
    low_w = max(2, width // smoothness)
    coarse = rng.normal(0.0, 1.0, size=(channels, low_h, low_w))
    repeated = np.repeat(np.repeat(coarse, smoothness, axis=1),
                         smoothness, axis=2)[:, :height, :width]
    pad_h = max(0, height - repeated.shape[1])
    pad_w = max(0, width - repeated.shape[2])
    if pad_h or pad_w:
        repeated = np.pad(repeated, ((0, 0), (0, pad_h), (0, pad_w)),
                          mode="edge")
    # A light box blur removes the blocky upsampling artefacts.
    padded = np.pad(repeated, ((0, 0), (1, 1), (1, 1)), mode="edge")
    blurred = (padded[:, :-2, :-2] + padded[:, 1:-1, :-2] + padded[:, 2:, :-2]
               + padded[:, :-2, 1:-1] + padded[:, 1:-1, 1:-1]
               + padded[:, 2:, 1:-1] + padded[:, :-2, 2:]
               + padded[:, 1:-1, 2:] + padded[:, 2:, 2:]) / 9.0
    return blurred


def make_classification_images(num_samples: int,
                               spec: SyntheticImageSpec,
                               rng: np.random.Generator) -> Dataset:
    """Sample a labelled dataset following ``spec``."""
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    channels, height, width = spec.image_shape

    shared_base = _smooth_noise(spec.image_shape, spec.smoothness, rng)
    class_deltas = np.stack([
        np.stack([_smooth_noise(spec.image_shape, spec.smoothness, rng)
                  for _ in range(spec.prototypes_per_class)])
        for _ in range(spec.num_classes)
    ])  # (classes, prototypes, c, h, w)

    labels = rng.integers(0, spec.num_classes, size=num_samples)
    prototype_idx = rng.integers(0, spec.prototypes_per_class,
                                 size=num_samples)
    images = (shared_base[np.newaxis]
              + spec.separation * class_deltas[labels, prototype_idx]
              + rng.normal(0.0, spec.noise_std,
                           size=(num_samples, channels, height, width)))

    if spec.max_shift > 0:
        shifts = rng.integers(-spec.max_shift, spec.max_shift + 1,
                              size=(num_samples, 2))
        for index in range(num_samples):
            images[index] = np.roll(images[index],
                                    (shifts[index, 0], shifts[index, 1]),
                                    axis=(1, 2))

    if spec.label_noise > 0:
        flip = rng.random(num_samples) < spec.label_noise
        labels = labels.copy()
        labels[flip] = rng.integers(0, spec.num_classes, size=int(flip.sum()))

    # Normalize to roughly zero mean / unit variance, the same preprocessing
    # the paper's pipelines apply to the real datasets.
    images = (images - images.mean()) / (images.std() + 1e-8)
    return Dataset(images=images, labels=labels,
                   num_classes=spec.num_classes, name=spec.name)


def load_synthetic_dataset(name: str, num_train: int = 2000,
                           num_test: int = 500,
                           seed: int = 0) -> Tuple[Dataset, Dataset]:
    """Build the train/test split of a synthetic dataset family.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (``mnist``, ``cifar10``,
        ``cifar100``).
    num_train / num_test:
        Number of training / test samples to generate.
    seed:
        Seed for the dataset generator; the same seed always produces the
        same dataset so experiments are reproducible.
    """
    if name not in DATASET_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}")
    spec = DATASET_SPECS[name]
    rng = np.random.default_rng(seed)
    # A single generator call keeps train and test on the same prototypes.
    full = make_classification_images(num_train + num_test, spec, rng)
    train = full.subset(np.arange(num_train), name=f"{spec.name}-train")
    test = full.subset(np.arange(num_train, num_train + num_test),
                       name=f"{spec.name}-test")
    return train, test


@dataclass(frozen=True)
class VirtualClientDatasets:
    """Picklable per-client dataset factory for virtualized fleets.

    ``factory(client_id)`` deterministically generates one logical
    client's local dataset from the fleet-wide spec and a per-client
    seed, so a :class:`~repro.fl.simulation.VirtualFleet` can describe
    millions of clients without the parent (or any shard) ever holding
    more than one client's samples at a time.  Being a frozen dataclass
    of a library module, it pickles by reference and unpickles inside
    worker processes and external shard servers alike.
    """

    spec: SyntheticImageSpec
    samples_per_client: int
    seed: int = 0

    def __call__(self, client_id: int) -> Dataset:
        rng = np.random.default_rng(self.seed + client_id)
        return make_classification_images(self.samples_per_client,
                                          self.spec, rng)
