"""Client data partitioning for federated learning.

Implements the partition strategies the paper's experiments rely on:

* **IID** — uniform random split (paper Sec. VII-B default).
* **Shard-based Non-IID** — the method of Zhao et al. (paper ref. [1]) and
  the original FedAvg paper: sort samples by label, cut them into shards,
  and give each client a small number of shards so every client sees only a
  few classes (paper Sec. VII-D).
* **Dirichlet Non-IID** — the now-standard label-skew generator, provided
  as an extension for finer heterogeneity control.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .dataset import Dataset

__all__ = [
    "partition_iid",
    "partition_shards",
    "partition_dirichlet",
    "partition_dataset",
]


def _client_names(dataset: Dataset, num_clients: int) -> List[str]:
    return [f"{dataset.name}-client{index}" for index in range(num_clients)]


def partition_iid(dataset: Dataset, num_clients: int,
                  rng: np.random.Generator) -> List[Dataset]:
    """Split ``dataset`` uniformly at random into ``num_clients`` shards."""
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if len(dataset) < num_clients:
        raise ValueError(
            f"cannot split {len(dataset)} samples across {num_clients} clients")
    order = rng.permutation(len(dataset))
    chunks = np.array_split(order, num_clients)
    names = _client_names(dataset, num_clients)
    return [dataset.subset(chunk, name=name)
            for chunk, name in zip(chunks, names)]


def partition_shards(dataset: Dataset, num_clients: int,
                     shards_per_client: int,
                     rng: np.random.Generator) -> List[Dataset]:
    """Label-sorted shard partition (classic Non-IID construction).

    Samples are sorted by label and cut into
    ``num_clients * shards_per_client`` contiguous shards; each client
    receives ``shards_per_client`` random shards, so it observes only a few
    classes.
    """
    if num_clients <= 0 or shards_per_client <= 0:
        raise ValueError("num_clients and shards_per_client must be positive")
    total_shards = num_clients * shards_per_client
    if len(dataset) < total_shards:
        raise ValueError(
            f"cannot build {total_shards} shards from {len(dataset)} samples")
    sorted_idx = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(sorted_idx, total_shards)
    shard_order = rng.permutation(total_shards)
    names = _client_names(dataset, num_clients)
    clients: List[Dataset] = []
    for client_index in range(num_clients):
        start = client_index * shards_per_client
        chosen = shard_order[start:start + shards_per_client]
        indices = np.concatenate([shards[i] for i in chosen])
        clients.append(dataset.subset(indices, name=names[client_index]))
    return clients


def partition_dirichlet(dataset: Dataset, num_clients: int,
                        alpha: float,
                        rng: np.random.Generator,
                        min_samples: int = 2) -> List[Dataset]:
    """Dirichlet label-skew partition.

    For every class, sample a proportion vector from ``Dirichlet(alpha)``
    and distribute that class's samples across clients accordingly.  Small
    ``alpha`` (e.g. 0.1) produces extreme skew; large ``alpha`` approaches
    IID.  Clients that end up below ``min_samples`` are topped up with
    random samples so every client can run at least one mini-batch.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    assignments: List[List[int]] = [[] for _ in range(num_clients)]
    for label in range(dataset.num_classes):
        class_idx = np.flatnonzero(dataset.labels == label)
        if class_idx.size == 0:
            continue
        rng.shuffle(class_idx)
        proportions = rng.dirichlet(np.full(num_clients, alpha))
        counts = np.floor(proportions * class_idx.size).astype(int)
        # Distribute the remainder to the largest-proportion clients.
        remainder = class_idx.size - counts.sum()
        if remainder > 0:
            extra = np.argsort(-proportions)[:remainder]
            counts[extra] += 1
        start = 0
        for client_index, count in enumerate(counts):
            assignments[client_index].extend(
                class_idx[start:start + count].tolist())
            start += count
    all_indices = np.arange(len(dataset))
    names = _client_names(dataset, num_clients)
    clients: List[Dataset] = []
    for client_index, indices in enumerate(assignments):
        if len(indices) < min_samples:
            top_up = rng.choice(all_indices,
                                size=min_samples - len(indices),
                                replace=False)
            indices = list(indices) + top_up.tolist()
        clients.append(dataset.subset(np.asarray(indices, dtype=np.int64),
                                      name=names[client_index]))
    return clients


def partition_dataset(dataset: Dataset, num_clients: int,
                      strategy: str = "iid",
                      rng: Optional[np.random.Generator] = None,
                      shards_per_client: int = 2,
                      dirichlet_alpha: float = 0.5) -> List[Dataset]:
    """Partition by strategy name (``iid``, ``shards``, ``dirichlet``)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    if strategy == "iid":
        return partition_iid(dataset, num_clients, rng)
    if strategy == "shards":
        return partition_shards(dataset, num_clients, shards_per_client, rng)
    if strategy == "dirichlet":
        return partition_dirichlet(dataset, num_clients, dirichlet_alpha, rng)
    raise KeyError(
        f"unknown partition strategy {strategy!r}; "
        "expected 'iid', 'shards' or 'dirichlet'")
