"""Data substrate: synthetic datasets and federated partitioning."""

from .dataset import Dataset
from .partition import (partition_dataset, partition_dirichlet, partition_iid,
                        partition_shards)
from .synthetic import (DATASET_SPECS, SyntheticImageSpec,
                        VirtualClientDatasets, available_datasets,
                        load_synthetic_dataset, make_classification_images)

__all__ = [
    "Dataset",
    "SyntheticImageSpec",
    "DATASET_SPECS",
    "VirtualClientDatasets",
    "available_datasets",
    "load_synthetic_dataset",
    "make_classification_images",
    "partition_dataset",
    "partition_iid",
    "partition_shards",
    "partition_dirichlet",
]
