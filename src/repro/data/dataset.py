"""Dataset container used throughout the federated-learning simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """An in-memory labelled image dataset.

    Attributes
    ----------
    images:
        Array of shape ``(num_samples, channels, height, width)``.
    labels:
        Integer class labels of shape ``(num_samples,)``.
    num_classes:
        Number of distinct classes the task defines (labels may cover a
        subset on Non-IID partitions).
    name:
        Human-readable dataset name, e.g. ``"synthetic-mnist"``.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(
                f"images must be 4-D (n, c, h, w); got {self.images.shape}")
        if self.labels.ndim != 1:
            raise ValueError("labels must be 1-D")
        if self.images.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"images ({self.images.shape[0]}) and labels "
                f"({self.labels.shape[0]}) disagree on sample count")
        if self.num_classes <= 0:
            raise ValueError("num_classes must be positive")
        if self.labels.size and (self.labels.min() < 0
                                 or self.labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def sample_shape(self) -> Tuple[int, int, int]:
        """``(channels, height, width)`` of one sample."""
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """New dataset restricted to the given sample indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(images=self.images[indices],
                       labels=self.labels[indices],
                       num_classes=self.num_classes,
                       name=name or self.name)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """New dataset with samples shuffled."""
        order = rng.permutation(len(self))
        return self.subset(order)

    def split(self, fraction: float, rng: Optional[np.random.Generator] = None
              ) -> Tuple["Dataset", "Dataset"]:
        """Split into two datasets; the first receives ``fraction`` of samples."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        order = (rng.permutation(len(self)) if rng is not None
                 else np.arange(len(self)))
        cut = int(round(fraction * len(self)))
        return (self.subset(order[:cut], name=f"{self.name}-a"),
                self.subset(order[cut:], name=f"{self.name}-b"))

    def class_counts(self) -> np.ndarray:
        """Number of samples per class (length ``num_classes``)."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def batches(self, batch_size: int, rng: Optional[np.random.Generator] = None,
                drop_last: bool = False
                ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(images, labels)`` mini-batches, optionally shuffled."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = (rng.permutation(len(self)) if rng is not None
                 else np.arange(len(self)))
        for start in range(0, len(self), batch_size):
            chunk = order[start:start + batch_size]
            if drop_last and chunk.size < batch_size:
                break
            yield self.images[chunk], self.labels[chunk]
