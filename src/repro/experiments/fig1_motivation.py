"""Fig. 1 — the straggler issue in original (synchronous) FL.

The paper motivates Helios with a three-device example: when a Jetson Nano,
a Raspberry Pi and an AWS DeepLens train the same AlexNet synchronously, the
DeepLens straggles and the two faster devices spend most of every cycle
idle.  This experiment regenerates that picture from the analytical cost
model: per-device training time, the synchronous cycle length, and the idle
time each device wastes waiting for the straggler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..hardware import (DEEPLENS_CPU, FleetProfiler, JETSON_NANO_GPU,
                        RASPBERRY_PI_4)
from ..metrics import format_table
from ..nn.models import build_model
from .common import ExperimentScale, get_scale

__all__ = ["Fig1Result", "run_fig1", "format_fig1"]

#: Per-device local dataset size of the motivating example (samples/cycle).
MOTIVATION_SAMPLES_PER_CYCLE = 12_500


@dataclass
class Fig1Result:
    """Rows of the Fig. 1 motivation example."""

    rows: List[Dict[str, float]] = field(default_factory=list)
    cycle_hours: float = 0.0
    straggler_name: str = ""
    slowdown_factor: float = 0.0


def run_fig1(scale: str = "fast") -> Fig1Result:
    """Regenerate the Fig. 1 idle-time analysis.

    The devices are the paper's three example nodes; the workload is the
    AlexNet-on-CIFAR-10 pairing.  Only the cost model runs — no training —
    so this experiment is instantaneous at any scale.
    """
    scale_config: ExperimentScale = get_scale(scale)
    # Profiling never trains the model, so the full-width AlexNet is used at
    # every scale to keep the time magnitudes comparable with the paper.
    model = build_model("alexnet", (3, 32, 32), 10, width_multiplier=1.0,
                        rng=np.random.default_rng(0))
    profiler = FleetProfiler(model, (3, 32, 32),
                             samples_per_cycle=MOTIVATION_SAMPLES_PER_CYCLE,
                             batch_size=scale_config.batch_size)
    devices = [JETSON_NANO_GPU, RASPBERRY_PI_4, DEEPLENS_CPU]
    reports = profiler.profile_fleet(devices)
    cycle_seconds = max(report.cycle_minutes * 60.0 for report in reports)
    slowest = max(reports, key=lambda report: report.cycle_minutes)
    fastest = min(reports, key=lambda report: report.cycle_minutes)

    result = Fig1Result(
        cycle_hours=cycle_seconds / 3600.0,
        straggler_name=slowest.device.name,
        slowdown_factor=slowest.cycle_minutes / max(fastest.cycle_minutes,
                                                    1e-9),
    )
    for report in reports:
        training_seconds = report.cycle_minutes * 60.0
        result.rows.append({
            "device": report.device.name,
            "training_hours": round(training_seconds / 3600.0, 2),
            "idle_hours": round((cycle_seconds - training_seconds) / 3600.0, 2),
            "idle_share": round(1.0 - training_seconds / cycle_seconds, 3),
        })
    return result


def format_fig1(result: Fig1Result) -> str:
    """Text rendering of the Fig. 1 analysis."""
    lines = [
        format_table(result.rows, title="Fig. 1 — straggler idle-time analysis"),
        (f"synchronous cycle length: {result.cycle_hours:.2f} h; "
         f"straggler: {result.straggler_name} "
         f"({result.slowdown_factor:.1f}x slower than the fastest device)"),
    ]
    return "\n".join(lines)
