"""Fig. 5 — soft-training effectiveness evaluation.

The paper's main comparison: global-model accuracy versus (capable-device)
aggregation cycles for Asyn. FL, AFO, Syn. FL, Random and Helios, on three
dataset/model pairs — (a) LeNet on MNIST, (b) AlexNet on CIFAR-10,
(c) ResNet on CIFAR-100 — each with two fleet settings (2 stragglers + 2
capable nodes, 3 stragglers + 3 capable nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..baselines import (AFOStrategy, AsynchronousFLStrategy,
                         RandomMaskingStrategy, SynchronousFLStrategy)
from ..core import HeliosConfig, HeliosStrategy
from ..fl import TrainingHistory
from ..metrics import (accuracy_improvement, compare_histories,
                       format_accuracy_curves, format_table, speedup_over)
from .common import (ExperimentSetting, get_scale, make_simulation_factory,
                     run_strategies)

__all__ = ["Fig5PanelResult", "Fig5Result", "run_fig5_panel", "run_fig5",
           "format_fig5", "default_fig5_panels"]

#: Target accuracy (fraction of the Syn. FL converged accuracy) used for
#: the time-to-accuracy/speed-up comparisons.
RELATIVE_TARGET = 0.9


def make_fig5_strategies(num_stragglers: int, seed: int = 0):
    """The five strategies of Fig. 5 with matching straggler counts."""
    return [
        AsynchronousFLStrategy(straggler_top_k=num_stragglers, seed=seed),
        AFOStrategy(straggler_top_k=num_stragglers, seed=seed),
        SynchronousFLStrategy(straggler_top_k=num_stragglers, seed=seed),
        RandomMaskingStrategy(straggler_top_k=num_stragglers, seed=seed),
        HeliosStrategy(HeliosConfig(straggler_top_k=num_stragglers,
                                    seed=seed)),
    ]


@dataclass
class Fig5PanelResult:
    """One panel of Fig. 5 (one dataset/model pair and fleet setting)."""

    setting_label: str
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    helios_speedup_vs_sync: float = 0.0
    helios_accuracy_improvement_pp: float = 0.0
    target_accuracy: float = 0.0


@dataclass
class Fig5Result:
    """All requested panels of Fig. 5."""

    panels: List[Fig5PanelResult] = field(default_factory=list)


def default_fig5_panels() -> List[Tuple[str, int, int]]:
    """(dataset, num_capable, num_stragglers) for every paper panel."""
    panels: List[Tuple[str, int, int]] = []
    for dataset in ("mnist", "cifar10", "cifar100"):
        panels.append((dataset, 2, 2))
        panels.append((dataset, 3, 3))
    return panels


def run_fig5_panel(dataset: str, num_capable: int, num_stragglers: int,
                   scale: str = "fast", seed: int = 0,
                   backend: str = None) -> Fig5PanelResult:
    """Run one Fig. 5 panel (one dataset and fleet setting)."""
    scale_config = get_scale(scale)
    from .common import DATASET_MODEL
    setting = ExperimentSetting(dataset=dataset,
                                model=DATASET_MODEL[dataset],
                                num_capable=num_capable,
                                num_stragglers=num_stragglers,
                                partition="iid", seed=seed)
    simulation_factory, num_cycles = make_simulation_factory(setting,
                                                             scale_config)
    strategies = make_fig5_strategies(num_stragglers, seed=seed)
    histories = run_strategies(simulation_factory, strategies, num_cycles,
                               eval_every=scale_config.eval_every,
                               backend=backend)

    sync_history = histories["Syn. FL"]
    helios_history = histories["Helios"]
    target = RELATIVE_TARGET * max(sync_history.converged_accuracy(), 1e-6)
    rows = compare_histories(histories, target_accuracy=target)
    speedup = speedup_over(helios_history, sync_history, target)
    baselines = [history for name, history in histories.items()
                 if name != "Helios"]
    improvement = accuracy_improvement(helios_history, baselines,
                                       use_best=True)
    return Fig5PanelResult(
        setting_label=setting.label,
        histories=histories,
        rows=rows,
        helios_speedup_vs_sync=(speedup if speedup is not None else 0.0),
        helios_accuracy_improvement_pp=improvement,
        target_accuracy=target,
    )


def run_fig5(panels: Sequence[Tuple[str, int, int]] = None,
             scale: str = "fast", seed: int = 0,
             backend: str = None) -> Fig5Result:
    """Run a set of Fig. 5 panels (defaults to all six paper panels)."""
    panels = list(panels) if panels is not None else default_fig5_panels()
    result = Fig5Result()
    for dataset, num_capable, num_stragglers in panels:
        result.panels.append(run_fig5_panel(
            dataset, num_capable, num_stragglers, scale=scale, seed=seed,
            backend=backend))
    return result


def format_fig5(result: Fig5Result) -> str:
    """Text rendering of the Fig. 5 panels."""
    sections: List[str] = []
    for panel in result.panels:
        curves = {name: history.accuracies()
                  for name, history in panel.histories.items()}
        sections.append(format_table(
            panel.rows,
            title=f"Fig. 5 panel [{panel.setting_label}] "
                  f"(target accuracy {panel.target_accuracy:.3f})"))
        sections.append(
            f"Helios speed-up vs Syn. FL (time to target): "
            f"{panel.helios_speedup_vs_sync:.2f}x; accuracy improvement vs "
            f"best baseline: {panel.helios_accuracy_improvement_pp:+.2f} pp")
        sections.append(format_accuracy_curves(
            curves, title=f"accuracy per cycle [{panel.setting_label}]"))
        sections.append("")
    return "\n".join(sections)
