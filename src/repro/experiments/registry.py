"""Experiment registry: look up every paper table/figure by its identifier."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .fig1_motivation import format_fig1, run_fig1
from .fig2_async_analysis import format_fig2, run_fig2
from .fig5_effectiveness import format_fig5, run_fig5
from .fig6_aggregation_opt import format_fig6, run_fig6
from .fig7_non_iid import format_fig7, run_fig7
from .headline import format_headline, run_headline
from .table1_profiles import format_table1, run_table1

__all__ = ["ExperimentEntry", "EXPERIMENTS", "available_experiments",
           "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproducible paper artefact."""

    experiment_id: str
    description: str
    runner: Callable[..., object]
    formatter: Callable[[object], str]


EXPERIMENTS: Dict[str, ExperimentEntry] = {
    "fig1": ExperimentEntry(
        "fig1", "Straggler idle-time motivation example",
        run_fig1, format_fig1),
    "fig2": ExperimentEntry(
        "fig2", "Synchronous vs. asynchronous aggregation periods",
        run_fig2, format_fig2),
    "table1": ExperimentEntry(
        "table1", "Straggler resource profiles (workload/memory/cycle time)",
        run_table1, format_table1),
    "fig5": ExperimentEntry(
        "fig5", "Soft-training effectiveness: Helios vs. four baselines",
        run_fig5, format_fig5),
    "fig6": ExperimentEntry(
        "fig6", "Aggregation-optimization ablation (Helios vs. S.T. Only)",
        run_fig6, format_fig6),
    "fig7": ExperimentEntry(
        "fig7", "Non-IID evaluation",
        run_fig7, format_fig7),
    "headline": ExperimentEntry(
        "headline", "Abstract headline claims (speed-up, accuracy gain)",
        run_headline, format_headline),
}


def available_experiments() -> Tuple[str, ...]:
    """Identifiers accepted by :func:`get_experiment`."""
    return tuple(sorted(EXPERIMENTS))


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment entry."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"available: {available_experiments()}")
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, **kwargs) -> Tuple[object, str]:
    """Run an experiment and return ``(raw result, formatted text)``."""
    entry = get_experiment(experiment_id)
    result = entry.runner(**kwargs)
    return result, entry.formatter(result)
