"""Shared experiment plumbing: scales, fleet construction, strategy runs.

Every experiment module builds on the same recipe:

1. pick a *scale* (how large the synthetic datasets/models are — the paper's
   workloads are far too heavy for a pure-NumPy substrate, so experiments
   default to reduced sizes that preserve the comparisons),
2. build a fleet of capable devices and stragglers with the paper's device
   presets,
3. run every strategy on an identical fresh simulation, and
4. reduce the histories to the rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (Callable, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..data import Dataset, load_synthetic_dataset, partition_dataset
from ..fl import (ClientConfig, ExecutionBackend, FederatedSimulation,
                  TrainingHistory, build_simulation, make_backend,
                  make_client_specs)
from ..fl.strategy import FederatedStrategy
from ..hardware import CommunicationModel, build_fleet
from ..nn.model import Sequential
from ..nn.models import build_model

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "DATASET_MODEL",
    "ExperimentSetting",
    "SeededModelFactory",
    "make_simulation_factory",
    "run_strategies",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by all experiments.

    ``smoke`` is meant for unit tests, ``fast`` for the default benchmark
    harness, ``full`` for longer runs that sharpen the curves.
    """

    name: str
    num_train: int
    num_test: int
    width_multiplier: float
    num_cycles: int
    batch_size: int
    learning_rate: float
    local_epochs: int
    workload_scale: float
    eval_every: int = 1

    def scaled_cycles(self, factor: float) -> int:
        """A cycle count scaled by ``factor`` (at least 2)."""
        return max(2, int(round(self.num_cycles * factor)))


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke", num_train=240, num_test=80, width_multiplier=0.25,
        num_cycles=3, batch_size=20, learning_rate=0.08, local_epochs=1,
        workload_scale=60.0),
    "fast": ExperimentScale(
        name="fast", num_train=1000, num_test=250, width_multiplier=0.4,
        num_cycles=12, batch_size=32, learning_rate=0.05, local_epochs=1,
        workload_scale=40.0),
    "full": ExperimentScale(
        name="full", num_train=2400, num_test=600, width_multiplier=0.6,
        num_cycles=25, batch_size=32, learning_rate=0.05, local_epochs=1,
        workload_scale=25.0),
}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    if name not in SCALES:
        raise KeyError(f"unknown scale {name!r}; available: {sorted(SCALES)}")
    return SCALES[name]


#: The paper's dataset→model pairing (Sec. VII-A).
DATASET_MODEL: Dict[str, str] = {
    "mnist": "lenet",
    "cifar10": "alexnet",
    "cifar100": "resnet",
}

#: Relative cost of the model families on the NumPy substrate; experiment
#: runners shrink the heavier pairings so a full figure stays tractable.
_PAIR_ADJUSTMENTS: Dict[str, Dict[str, float]] = {
    "mnist": {"width": 1.0, "train": 1.0, "cycles": 1.0},
    "cifar10": {"width": 0.25, "train": 0.6, "cycles": 0.75},
    "cifar100": {"width": 0.2, "train": 0.5, "cycles": 0.6},
}


@dataclass(frozen=True)
class ExperimentSetting:
    """One concrete collaboration setting (dataset, fleet, partition)."""

    dataset: str
    model: str
    num_capable: int
    num_stragglers: int
    partition: str = "iid"
    shards_per_client: int = 2
    seed: int = 0

    @property
    def num_clients(self) -> int:
        return self.num_capable + self.num_stragglers

    @property
    def label(self) -> str:
        return (f"{self.model}-{self.dataset}-"
                f"{self.num_stragglers}strag-{self.num_capable}cap-"
                f"{self.partition}")


def _adjusted(scale: ExperimentScale, dataset: str) -> Tuple[float, int, int]:
    """(width, num_train, num_cycles) adjusted for the dataset/model pair."""
    adjust = _PAIR_ADJUSTMENTS.get(dataset, _PAIR_ADJUSTMENTS["mnist"])
    width = scale.width_multiplier * adjust["width"]
    num_train = max(scale.num_train // 4,
                    int(round(scale.num_train * adjust["train"])))
    cycles = scale.scaled_cycles(adjust["cycles"])
    return width, num_train, cycles


@dataclass(frozen=True)
class SeededModelFactory:
    """Picklable deterministic model factory.

    Experiment fleets used to close over these values in a local function,
    which the process-based execution backends cannot pickle; a frozen
    dataclass with a ``__call__`` ships to worker processes cleanly and
    still builds the exact same seeded model every time.  It rides inside
    each client's :class:`~repro.fl.client.ClientSpec`, which is what the
    ``persistent`` backend ships to a worker exactly once per client.
    """

    model_name: str
    input_shape: Tuple[int, ...]
    num_classes: int
    width_multiplier: float
    seed: int

    def __call__(self) -> Sequential:
        return build_model(self.model_name, self.input_shape,
                           self.num_classes,
                           width_multiplier=self.width_multiplier,
                           rng=np.random.default_rng(self.seed))


def make_simulation_factory(setting: ExperimentSetting,
                            scale: ExperimentScale
                            ) -> Tuple[Callable[[], FederatedSimulation], int]:
    """Build a factory producing identical fresh simulations for a setting.

    Returns ``(factory, num_cycles)`` where ``num_cycles`` already accounts
    for the dataset/model cost adjustment.  Execution-backend selection
    lives in :func:`run_strategies`, which shares one pool across every
    strategy run and owns its shutdown.
    """
    width, num_train, num_cycles = _adjusted(scale, setting.dataset)
    train, test = load_synthetic_dataset(
        setting.dataset, num_train=num_train, num_test=scale.num_test,
        seed=setting.seed)
    partition_rng = np.random.default_rng(setting.seed + 1)
    client_datasets = partition_dataset(
        train, setting.num_clients, strategy=setting.partition,
        rng=partition_rng, shards_per_client=setting.shards_per_client)
    devices = build_fleet(setting.num_capable, setting.num_stragglers)
    input_shape = train.sample_shape
    client_config = ClientConfig(
        batch_size=scale.batch_size,
        local_epochs=scale.local_epochs,
        learning_rate=scale.learning_rate)
    model_factory = SeededModelFactory(
        model_name=setting.model, input_shape=input_shape,
        num_classes=train.num_classes, width_multiplier=width,
        seed=setting.seed + 7)
    # The spec list is built once and shared: specs are immutable and
    # picklable, every fresh simulation builds its own runtime state
    # (model replicas, RNGs) from them.
    client_specs = make_client_specs(
        model_factory, client_datasets, devices,
        client_config=client_config, seed=setting.seed)

    def simulation_factory() -> FederatedSimulation:
        return build_simulation(
            model_factory, client_specs=client_specs,
            test_dataset=test, input_shape=input_shape,
            comm_model=CommunicationModel(),
            workload_scale=scale.workload_scale,
            seed=setting.seed)

    return simulation_factory, num_cycles


def run_strategies(simulation_factory: Callable[[], FederatedSimulation],
                   strategies: Sequence[FederatedStrategy],
                   num_cycles: int, eval_every: int = 1,
                   verbose: bool = False,
                   backend: Union[None, str, ExecutionBackend] = None,
                   max_workers: Optional[int] = None,
                   shards=None,
                   on_shard_failure: Optional[str] = None,
                   heartbeat_interval: Optional[float] = None,
                   wire_compression: Optional[str] = None,
                   delta_shipping: Optional[bool] = None,
                   aggregation: Optional[str] = None,
                   weight_arena: Optional[str] = None,
                   fusion: Optional[str] = None
                   ) -> Dict[str, TrainingHistory]:
    """Run every strategy on its own fresh copy of the simulation.

    ``backend`` (optional) overrides the execution backend of every fresh
    simulation; a single pool instance is shared across the strategy runs
    and closed afterwards when this function created it.  ``max_workers``
    only applies when ``backend`` is a name — combining it with an
    already-constructed instance raises ``ValueError``.  ``shards``
    (``backend="sharded"`` only) selects the shard topology: a list of
    ``host:port`` addresses of running ``repro shard-worker`` servers or
    an integer count of auto-spawned localhost shards.
    ``on_shard_failure`` and ``heartbeat_interval`` select the
    worker-resident backends' fault-tolerance policy,
    ``wire_compression``/``delta_shipping`` their wire codec, and
    ``aggregation`` (``"flat"``/``"hierarchical"``) the aggregation
    topology strategies see through
    :meth:`~repro.fl.simulation.FederatedSimulation.train_and_aggregate`,
    and ``weight_arena``/``fusion`` the persistent backend's
    shared-memory dispatch plane and the worker-resident backends'
    stacked training engine — see
    :func:`~repro.fl.executor.make_backend`.
    """
    if aggregation is not None and backend is None:
        backend = "serial"
    shared_backend = (make_backend(backend, max_workers=max_workers,
                                   shards=shards,
                                   on_shard_failure=on_shard_failure,
                                   heartbeat_interval=heartbeat_interval,
                                   wire_compression=wire_compression,
                                   delta_shipping=delta_shipping,
                                   aggregation=aggregation,
                                   weight_arena=weight_arena,
                                   fusion=fusion)
                      if backend is not None else None)
    owns_backend = (shared_backend is not None
                    and not isinstance(backend, ExecutionBackend))
    histories: Dict[str, TrainingHistory] = {}
    try:
        for strategy in strategies:
            simulation = simulation_factory()
            if shared_backend is not None:
                simulation.set_backend(shared_backend)
            histories[strategy.name] = simulation.run(
                strategy, num_cycles=num_cycles, eval_every=eval_every,
                verbose=verbose)
    finally:
        if owns_backend:
            shared_backend.close()
    return histories
