"""Table I — straggler resource profiles.

The paper's Table I lists, for AlexNet on CIFAR-10, the per-cycle
computation workload (GFLOPs), memory usage (MB) and training-cycle time
(minutes) of the four straggler configurations (Jetson Nano CPU, Raspberry
Pi, DeepLens GPU, DeepLens CPU).  This experiment regenerates those rows
from the resource-based profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..hardware import FleetProfiler, table1_stragglers
from ..metrics import format_table
from ..nn.models import build_model
from .common import get_scale

__all__ = ["Table1Result", "run_table1", "format_table1"]

#: Samples per local training cycle assumed for the Table I workload.
TABLE1_SAMPLES_PER_CYCLE = 12_500

#: The paper's reported values, kept for side-by-side comparison.
PAPER_TABLE1 = [
    {"device": "jetson-nano-cpu", "workload_gflops": 7.0,
     "memory_mb": 252.0, "cycle_minutes": 20.6},
    {"device": "raspberry-pi-4", "workload_gflops": 6.0,
     "memory_mb": 150.0, "cycle_minutes": 23.8},
    {"device": "deeplens-gpu", "workload_gflops": 5.5,
     "memory_mb": 100.0, "cycle_minutes": 27.2},
    {"device": "deeplens-cpu", "workload_gflops": 4.5,
     "memory_mb": 110.0, "cycle_minutes": 34.0},
]


@dataclass
class Table1Result:
    """Measured and reference rows of Table I."""

    rows: List[Dict[str, float]] = field(default_factory=list)
    paper_rows: List[Dict[str, float]] = field(default_factory=list)
    ordering_matches_paper: bool = False


def run_table1(scale: str = "fast") -> Table1Result:
    """Profile the four straggler presets on the AlexNet/CIFAR-10 workload.

    Profiling only traces the model once (no training), so the *full-width*
    AlexNet is used at every scale — this keeps the workload/memory/time
    magnitudes in the same regime as the paper's table.
    """
    scale_config = get_scale(scale)
    model = build_model("alexnet", (3, 32, 32), 10, width_multiplier=1.0,
                        rng=np.random.default_rng(0))
    profiler = FleetProfiler(model, (3, 32, 32),
                             samples_per_cycle=TABLE1_SAMPLES_PER_CYCLE,
                             batch_size=scale_config.batch_size)
    devices = table1_stragglers()
    reports = profiler.profile_fleet(devices)
    rows = [report.as_row() for report in reports]
    measured_order = [row["device"] for row in
                      sorted(rows, key=lambda row: row["cycle_minutes"])]
    paper_order = [row["device"] for row in
                   sorted(PAPER_TABLE1, key=lambda row: row["cycle_minutes"])]
    return Table1Result(
        rows=rows,
        paper_rows=[dict(row) for row in PAPER_TABLE1],
        ordering_matches_paper=measured_order == paper_order,
    )


def format_table1(result: Table1Result) -> str:
    """Text rendering: measured rows next to the paper's values."""
    lines = [
        format_table(result.rows,
                     title="Table I (measured) — straggler profiles"),
        "",
        format_table(result.paper_rows,
                     title="Table I (paper-reported values)"),
        "",
        ("cycle-time ordering matches the paper: "
         f"{result.ordering_matches_paper}"),
    ]
    return "\n".join(lines)
