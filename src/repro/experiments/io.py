"""Persistence for experiment results.

Training histories (and dictionaries of them) are serialized to JSON so a
benchmark run can be archived, compared against later runs, or plotted with
external tooling.  Only plain Python/NumPy scalars are stored — no pickling.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping

from ..fl.history import CycleRecord, TrainingHistory

__all__ = ["history_to_dict", "history_from_dict", "save_histories",
           "load_histories"]


def history_to_dict(history: TrainingHistory) -> Dict:
    """Convert a history into a JSON-serializable dictionary."""
    return {
        "strategy_name": history.strategy_name,
        "records": [
            {
                "cycle": record.cycle,
                "sim_time_s": float(record.sim_time_s),
                "global_accuracy": float(record.global_accuracy),
                "mean_train_loss": float(record.mean_train_loss),
                "participating_clients": record.participating_clients,
                "straggler_fraction_trained": float(
                    record.straggler_fraction_trained),
                "extra": {key: float(value)
                          for key, value in record.extra.items()},
            }
            for record in history.records
        ],
    }


def history_from_dict(payload: Mapping) -> TrainingHistory:
    """Rebuild a history from :func:`history_to_dict` output."""
    history = TrainingHistory(strategy_name=payload.get("strategy_name", ""))
    for record in payload.get("records", []):
        history.append(CycleRecord(
            cycle=int(record["cycle"]),
            sim_time_s=float(record["sim_time_s"]),
            global_accuracy=float(record["global_accuracy"]),
            mean_train_loss=float(record["mean_train_loss"]),
            participating_clients=int(record["participating_clients"]),
            straggler_fraction_trained=float(
                record.get("straggler_fraction_trained", 1.0)),
            extra=dict(record.get("extra", {})),
        ))
    return history


def save_histories(histories: Mapping[str, TrainingHistory],
                   path: str) -> None:
    """Write a mapping of strategy name → history to a JSON file."""
    payload = {name: history_to_dict(history)
               for name, history in histories.items()}
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_histories(path: str) -> Dict[str, TrainingHistory]:
    """Load a mapping previously written by :func:`save_histories`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {name: history_from_dict(data) for name, data in payload.items()}
