"""Headline-claim check: "up to 2.5× acceleration, up to 4.64 % accuracy gain".

The abstract's two numbers are derived from the Fig. 5 comparison.  This
module reduces a set of Fig. 5 panels to the same two aggregates: the
largest wall-clock speed-up of Helios over the synchronous baseline
(time-to-target-accuracy ratio) and the largest converged-accuracy
improvement of Helios over the best competing baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..metrics import format_table
from .fig5_effectiveness import Fig5Result, run_fig5

__all__ = ["HeadlineResult", "run_headline", "format_headline"]

#: The paper's reported headline numbers.
PAPER_MAX_SPEEDUP = 2.5
PAPER_MAX_ACCURACY_GAIN_PP = 4.64


@dataclass
class HeadlineResult:
    """Maximum speed-up and accuracy gain over a set of Fig. 5 panels."""

    per_panel: List[Dict[str, object]] = field(default_factory=list)
    max_speedup: float = 0.0
    max_accuracy_gain_pp: float = 0.0
    paper_max_speedup: float = PAPER_MAX_SPEEDUP
    paper_max_accuracy_gain_pp: float = PAPER_MAX_ACCURACY_GAIN_PP


def summarize_headline(fig5: Fig5Result) -> HeadlineResult:
    """Reduce Fig. 5 panels to the abstract's two headline numbers."""
    result = HeadlineResult()
    for panel in fig5.panels:
        result.per_panel.append({
            "setting": panel.setting_label,
            "helios_speedup_vs_sync": round(panel.helios_speedup_vs_sync, 2),
            "helios_accuracy_gain_pp": round(
                panel.helios_accuracy_improvement_pp, 2),
        })
        result.max_speedup = max(result.max_speedup,
                                 panel.helios_speedup_vs_sync)
        result.max_accuracy_gain_pp = max(result.max_accuracy_gain_pp,
                                          panel.helios_accuracy_improvement_pp)
    return result


def run_headline(panels: Sequence[Tuple[str, int, int]] = (("mnist", 2, 2),
                                                           ("mnist", 3, 3)),
                 scale: str = "fast", seed: int = 0,
                 backend: str = None) -> HeadlineResult:
    """Run a (reduced) set of Fig. 5 panels and extract the headline numbers."""
    fig5 = run_fig5(panels=panels, scale=scale, seed=seed, backend=backend)
    return summarize_headline(fig5)


def format_headline(result: HeadlineResult) -> str:
    """Text rendering of the headline comparison."""
    lines = [
        format_table(result.per_panel, title="Headline claims per setting"),
        "",
        (f"measured max speed-up over Syn. FL: {result.max_speedup:.2f}x "
         f"(paper reports up to {result.paper_max_speedup:.1f}x)"),
        (f"measured max accuracy gain: {result.max_accuracy_gain_pp:+.2f} pp "
         f"(paper reports up to {result.paper_max_accuracy_gain_pp:.2f} pp)"),
    ]
    return "\n".join(lines)
