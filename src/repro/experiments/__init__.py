"""Experiment runners — one per paper table/figure."""

from .common import (DATASET_MODEL, SCALES, ExperimentScale,
                     ExperimentSetting, get_scale, make_simulation_factory,
                     run_strategies)
from .fig1_motivation import Fig1Result, format_fig1, run_fig1
from .fig2_async_analysis import Fig2Result, format_fig2, run_fig2
from .fig5_effectiveness import (Fig5PanelResult, Fig5Result, format_fig5,
                                 run_fig5, run_fig5_panel)
from .fig6_aggregation_opt import Fig6Result, format_fig6, run_fig6
from .fig7_non_iid import Fig7Result, format_fig7, run_fig7
from .headline import (HeadlineResult, format_headline, run_headline,
                       summarize_headline)
from .io import (history_from_dict, history_to_dict, load_histories,
                 save_histories)
from .registry import (EXPERIMENTS, ExperimentEntry, available_experiments,
                       get_experiment, run_experiment)
from .table1_profiles import Table1Result, format_table1, run_table1

__all__ = [
    "ExperimentScale",
    "SCALES",
    "get_scale",
    "DATASET_MODEL",
    "ExperimentSetting",
    "make_simulation_factory",
    "run_strategies",
    "Fig1Result", "run_fig1", "format_fig1",
    "Fig2Result", "run_fig2", "format_fig2",
    "Table1Result", "run_table1", "format_table1",
    "Fig5Result", "Fig5PanelResult", "run_fig5", "run_fig5_panel",
    "format_fig5",
    "Fig6Result", "run_fig6", "format_fig6",
    "Fig7Result", "run_fig7", "format_fig7",
    "HeadlineResult", "run_headline", "summarize_headline",
    "format_headline",
    "ExperimentEntry", "EXPERIMENTS", "available_experiments",
    "get_experiment", "run_experiment",
    "history_to_dict", "history_from_dict", "save_histories",
    "load_histories",
]
