"""Fig. 2 — preliminary analysis of asynchronous aggregation.

Two collaborating devices train an AlexNet-class model; three settings are
compared: fully synchronous aggregation (setting 1) and asynchronous
aggregation where the second device only delivers every 2 or 3 epochs
(settings 2 and 3).  The paper's observation — synchronous aggregation
converges to the best accuracy, and pushing the aggregation period from 2
to 3 epochs hurts both accuracy and convergence speed — is what this
experiment checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..baselines import AsynchronousFLStrategy, SynchronousFLStrategy
from ..fl import TrainingHistory
from ..metrics import format_accuracy_curves, format_table
from .common import ExperimentSetting, get_scale, make_simulation_factory, run_strategies

__all__ = ["Fig2Result", "run_fig2", "format_fig2"]


@dataclass
class Fig2Result:
    """Accuracy curves and summary rows of the three Fig. 2 settings."""

    histories: Dict[str, TrainingHistory] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)


def run_fig2(scale: str = "fast", seed: int = 0,
             backend: str = None) -> Fig2Result:
    """Run the three aggregation-period settings of Fig. 2."""
    scale_config = get_scale(scale)
    setting = ExperimentSetting(dataset="cifar10", model="alexnet",
                                num_capable=1, num_stragglers=1,
                                partition="iid", seed=seed)
    simulation_factory, num_cycles = make_simulation_factory(setting,
                                                             scale_config)
    strategies = [
        SynchronousFLStrategy(straggler_top_k=1),
        AsynchronousFLStrategy(aggregation_period=2, straggler_top_k=1),
        AsynchronousFLStrategy(aggregation_period=3, straggler_top_k=1),
    ]
    # Give the strategies the setting names the paper uses.
    strategies[0].name = "Setting 1 (Syn.)"
    strategies[1].name = "Setting 2 (Asyn. period 2)"
    strategies[2].name = "Setting 3 (Asyn. period 3)"

    histories = run_strategies(simulation_factory, strategies, num_cycles,
                               eval_every=scale_config.eval_every,
                               backend=backend)
    result = Fig2Result(histories=histories)
    for name, history in histories.items():
        result.rows.append({
            "setting": name,
            "converge_accuracy": round(history.converged_accuracy(), 4),
            "best_accuracy": round(history.best_accuracy(), 4),
            "converge_time_min": round(history.total_time() / 60.0, 2),
        })
    return result


def format_fig2(result: Fig2Result) -> str:
    """Text rendering of the Fig. 2 comparison."""
    curves = {name: history.accuracies()
              for name, history in result.histories.items()}
    lines = [
        format_table(result.rows,
                     title="Fig. 2 — synchronous vs. asynchronous settings"),
        "",
        format_accuracy_curves(curves,
                               title="Fig. 2 — accuracy per aggregation cycle"),
    ]
    return "\n".join(lines)
