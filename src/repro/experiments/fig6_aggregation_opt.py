"""Fig. 6 — model-aggregation optimization evaluation.

The paper's own ablation of the heterogeneity-aware aggregation (Eq. 10):
Helios is compared against "S.T. Only" (identical soft-training but plain
FedAvg aggregation) while the number of stragglers grows from 1 to 4, on
LeNet/MNIST and AlexNet/CIFAR-10.  The aggregation optimization should both
raise accuracy and damp the cycle-to-cycle fluctuation caused by
partial-model aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..baselines import SoftTrainingOnlyStrategy
from ..core import HeliosConfig, HeliosStrategy
from ..fl import TrainingHistory
from ..metrics import format_accuracy_curves, format_table
from .common import (DATASET_MODEL, ExperimentSetting, get_scale,
                     make_simulation_factory, run_strategies)

__all__ = ["Fig6PanelResult", "Fig6Result", "run_fig6", "format_fig6"]


@dataclass
class Fig6PanelResult:
    """Helios vs S.T. Only for one straggler count on one dataset."""

    dataset: str
    num_stragglers: int
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)
    helios_accuracy: float = 0.0
    st_only_accuracy: float = 0.0
    helios_variance: float = 0.0
    st_only_variance: float = 0.0

    @property
    def accuracy_improvement_pp(self) -> float:
        """Accuracy gain of the aggregation optimization, in points."""
        return (self.helios_accuracy - self.st_only_accuracy) * 100.0


@dataclass
class Fig6Result:
    """All straggler counts for the requested datasets."""

    panels: List[Fig6PanelResult] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """Summary rows (one per panel)."""
        rows: List[Dict[str, object]] = []
        for panel in self.panels:
            rows.append({
                "dataset": panel.dataset,
                "stragglers": panel.num_stragglers,
                "helios_acc": round(panel.helios_accuracy, 4),
                "st_only_acc": round(panel.st_only_accuracy, 4),
                "improvement_pp": round(panel.accuracy_improvement_pp, 2),
                "helios_var": round(panel.helios_variance, 6),
                "st_only_var": round(panel.st_only_variance, 6),
            })
        return rows


def run_fig6(datasets: Sequence[str] = ("mnist",),
             straggler_counts: Sequence[int] = (1, 2, 3, 4),
             num_capable: int = 2, scale: str = "fast",
             seed: int = 0, backend: str = None) -> Fig6Result:
    """Run the aggregation-optimization ablation.

    The paper evaluates MNIST and CIFAR-10; the default runs MNIST only so
    the benchmark stays tractable — pass ``datasets=("mnist", "cifar10")``
    for the full figure.
    """
    scale_config = get_scale(scale)
    result = Fig6Result()
    for dataset in datasets:
        for num_stragglers in straggler_counts:
            setting = ExperimentSetting(
                dataset=dataset, model=DATASET_MODEL[dataset],
                num_capable=num_capable, num_stragglers=num_stragglers,
                partition="iid", seed=seed)
            simulation_factory, num_cycles = make_simulation_factory(
                setting, scale_config)
            strategies = [
                HeliosStrategy(HeliosConfig(straggler_top_k=num_stragglers,
                                            seed=seed)),
                SoftTrainingOnlyStrategy(
                    HeliosConfig(straggler_top_k=num_stragglers, seed=seed)),
            ]
            histories = run_strategies(simulation_factory, strategies,
                                       num_cycles,
                                       eval_every=scale_config.eval_every,
                                       backend=backend)
            helios = histories["Helios"]
            st_only = histories["S.T. Only"]
            result.panels.append(Fig6PanelResult(
                dataset=dataset,
                num_stragglers=num_stragglers,
                histories=histories,
                helios_accuracy=helios.converged_accuracy(),
                st_only_accuracy=st_only.converged_accuracy(),
                helios_variance=helios.accuracy_variance(),
                st_only_variance=st_only.accuracy_variance(),
            ))
    return result


def format_fig6(result: Fig6Result) -> str:
    """Text rendering of the Fig. 6 ablation."""
    sections = [format_table(result.rows(),
                             title="Fig. 6 — aggregation optimization ablation")]
    for panel in result.panels:
        curves = {name: history.accuracies()
                  for name, history in panel.histories.items()}
        sections.append(format_accuracy_curves(
            curves,
            title=f"{panel.dataset}, {panel.num_stragglers} straggler(s)"))
    return "\n\n".join(sections)
