"""Fig. 7 — evaluation under Non-IID data.

The same strategy comparison as Fig. 5 (plus S.T. Only), but every client's
local data is a label-sorted shard partition (the generation method of the
paper's ref. [1]), on LeNet/MNIST and AlexNet/CIFAR-10 with 2+2 and 3+3
fleets.  Non-IID data degrades every method; the check is that Helios keeps
the best accuracy/speed among them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..baselines import (AFOStrategy, AsynchronousFLStrategy,
                         RandomMaskingStrategy, SoftTrainingOnlyStrategy,
                         SynchronousFLStrategy)
from ..core import HeliosConfig, HeliosStrategy
from ..fl import TrainingHistory
from ..metrics import compare_histories, format_accuracy_curves, format_table
from .common import (DATASET_MODEL, ExperimentSetting, get_scale,
                     make_simulation_factory, run_strategies)

__all__ = ["Fig7PanelResult", "Fig7Result", "run_fig7", "format_fig7"]

RELATIVE_TARGET = 0.9


@dataclass
class Fig7PanelResult:
    """One Non-IID panel (dataset + fleet setting)."""

    setting_label: str
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    helios_is_best: bool = False


@dataclass
class Fig7Result:
    """All requested Non-IID panels."""

    panels: List[Fig7PanelResult] = field(default_factory=list)


def make_fig7_strategies(num_stragglers: int, seed: int = 0):
    """The six strategies shown in Fig. 7."""
    return [
        AsynchronousFLStrategy(straggler_top_k=num_stragglers, seed=seed),
        AFOStrategy(straggler_top_k=num_stragglers, seed=seed),
        SynchronousFLStrategy(straggler_top_k=num_stragglers, seed=seed),
        RandomMaskingStrategy(straggler_top_k=num_stragglers, seed=seed),
        SoftTrainingOnlyStrategy(
            HeliosConfig(straggler_top_k=num_stragglers, seed=seed)),
        HeliosStrategy(HeliosConfig(straggler_top_k=num_stragglers,
                                    seed=seed)),
    ]


def default_fig7_panels() -> List[Tuple[str, int, int]]:
    """(dataset, num_capable, num_stragglers) panels of the paper figure."""
    return [("mnist", 2, 2), ("mnist", 3, 3),
            ("cifar10", 2, 2), ("cifar10", 3, 3)]


def run_fig7(panels: Sequence[Tuple[str, int, int]] = None,
             shards_per_client: int = 2,
             scale: str = "fast", seed: int = 0,
             backend: str = None) -> Fig7Result:
    """Run the Non-IID evaluation panels."""
    panels = list(panels) if panels is not None else default_fig7_panels()
    scale_config = get_scale(scale)
    result = Fig7Result()
    for dataset, num_capable, num_stragglers in panels:
        setting = ExperimentSetting(
            dataset=dataset, model=DATASET_MODEL[dataset],
            num_capable=num_capable, num_stragglers=num_stragglers,
            partition="shards", shards_per_client=shards_per_client,
            seed=seed)
        simulation_factory, num_cycles = make_simulation_factory(
            setting, scale_config)
        strategies = make_fig7_strategies(num_stragglers, seed=seed)
        histories = run_strategies(simulation_factory, strategies, num_cycles,
                                   eval_every=scale_config.eval_every,
                                   backend=backend)
        sync = histories["Syn. FL"]
        target = RELATIVE_TARGET * max(sync.converged_accuracy(), 1e-6)
        rows = compare_histories(histories, target_accuracy=target)
        best_strategy = rows[0]["strategy"] if rows else ""
        result.panels.append(Fig7PanelResult(
            setting_label=setting.label,
            histories=histories,
            rows=rows,
            helios_is_best=(best_strategy == "Helios"),
        ))
    return result


def format_fig7(result: Fig7Result) -> str:
    """Text rendering of the Fig. 7 panels."""
    sections: List[str] = []
    for panel in result.panels:
        sections.append(format_table(
            panel.rows, title=f"Fig. 7 Non-IID panel [{panel.setting_label}]"))
        curves = {name: history.accuracies()
                  for name, history in panel.histories.items()}
        sections.append(format_accuracy_curves(
            curves, title=f"accuracy per cycle [{panel.setting_label}]"))
        sections.append("")
    return "\n".join(sections)
