"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro list
    python -m repro run table1 --scale fast
    python -m repro run fig5 --scale smoke --output results/fig5.txt
    python -m repro run fig6 --backend sharded --shards host1:7600,host2:7600
    python -m repro run fig6 --backend sharded --workers 3 \
        --on-shard-failure rebalance --heartbeat-interval 10
    python -m repro run fig6 --backend sharded --workers 2 \
        --aggregation hierarchical
    python -m repro run fig6 --backend sharded --workers 2 \
        --failover-attempts 4 --retry-backoff 0.2 --retry-jitter 0.5
    python -m repro shard-worker --host 0.0.0.0 --port 7600
    python -m repro scenario run examples/scenario_shard_kill.json \
        --assert-serial --events-out events.jsonl
    python -m repro scales
    python -m repro lint --format json

Every experiment prints the same rows/series the paper reports; the
optional ``--output`` flag additionally writes the formatted text to a
file.  ``shard-worker`` starts one shard server of the ``sharded``
execution backend (see :mod:`repro.fl.transport`); ``--backend sharded``
without ``--shards`` auto-spawns localhost shard workers instead.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import List, Optional

from .experiments import (SCALES, available_experiments, get_experiment,
                          run_experiment)
from .fl.codec import COMPRESSIONS as WIRE_COMPRESSIONS
from .fl.executor import (AGGREGATION_MODES, FAILURE_POLICIES, FUSION_MODES,
                          SHARD_ANNOUNCE_PREFIX, WEIGHT_ARENA_MODES,
                          available_backends, make_backend)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Helios (DAC 2021): run the paper's "
                    "tables and figures.")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the available experiments")
    subparsers.add_parser("scales", help="list the available scale presets")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table/series")
    run_parser.add_argument("experiment",
                            help="experiment id (see 'repro list')")
    run_parser.add_argument("--scale", default="fast",
                            choices=sorted(SCALES),
                            help="experiment scale preset (default: fast)")
    run_parser.add_argument("--seed", type=int, default=0,
                            help="random seed (default: 0)")
    run_parser.add_argument("--backend", default="serial",
                            choices=available_backends(),
                            help="execution backend for client trainings "
                                 "(default: serial; all backends produce "
                                 "bit-identical results; 'persistent' "
                                 "keeps clients resident in worker "
                                 "processes and ships only weights/masks "
                                 "per cycle)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker count for the pooled backends "
                                 "(thread/process/persistent, or the "
                                 "number of auto-spawned localhost shards "
                                 "for sharded; default: library default)")
    run_parser.add_argument("--shards", default=None,
                            help="comma-separated host:port addresses of "
                                 "running 'repro shard-worker' servers "
                                 "(requires --backend sharded; omit to "
                                 "auto-spawn localhost shards)")
    run_parser.add_argument("--on-shard-failure", default=None,
                            choices=FAILURE_POLICIES,
                            help="what a dead worker/shard does to the run "
                                 "(sharded/persistent backends): 'abort' "
                                 "fails the batch naming the dead shard "
                                 "(default), 'rebalance' repairs the "
                                 "topology and retries the batch "
                                 "bit-identically")
    run_parser.add_argument("--heartbeat-interval", type=float, default=None,
                            metavar="SECONDS",
                            help="probe every connected shard with a ping "
                                 "between batches at most this often "
                                 "(requires --backend sharded; probe "
                                 "failures follow --on-shard-failure)")
    run_parser.add_argument("--wire-compression", default=None,
                            choices=WIRE_COMPRESSIONS,
                            help="per-segment compression of the worker-"
                                 "resident backends' wire codec (requires "
                                 "--backend sharded or persistent; "
                                 "default: none)")
    run_parser.add_argument("--no-delta-shipping", action="store_true",
                            help="ship full weight snapshots every cycle "
                                 "instead of per-parameter deltas against "
                                 "each shard's acknowledged base (requires "
                                 "--backend sharded or persistent; results "
                                 "are bit-identical either way)")
    run_parser.add_argument("--aggregation", default=None,
                            choices=AGGREGATION_MODES,
                            help="aggregation topology: 'flat' ships every "
                                 "client update upstream (default), "
                                 "'hierarchical' folds updates inside each "
                                 "worker/shard and ships one partial "
                                 "aggregate per batch — O(weights x slots) "
                                 "upstream bytes instead of O(weights x "
                                 "clients); results are bit-identical "
                                 "either way")
    run_parser.add_argument("--weight-arena", default=None,
                            choices=WEIGHT_ARENA_MODES,
                            help="weight dispatch plane of the persistent "
                                 "backend: 'off' ships weight bytes over "
                                 "the worker pipes (default), 'shm' "
                                 "publishes them once per cycle into a "
                                 "shared-memory arena and ships only "
                                 "descriptors (requires --backend "
                                 "persistent; single-host; results are "
                                 "bit-identical either way)")
    run_parser.add_argument("--fusion", default=None,
                            choices=FUSION_MODES,
                            help="in-worker training engine: 'off' trains "
                                 "clients one by one (default), 'stacked' "
                                 "trains topology-homogeneous clients as "
                                 "one batched-GEMM pass (requires "
                                 "--backend sharded or persistent; results "
                                 "are bit-identical either way)")
    run_parser.add_argument("--failover-attempts", type=int, default=None,
                            metavar="N",
                            help="per-batch cap on failover retries of the "
                                 "worker-resident backends (default: one "
                                 "attempt per (shard, failure-policy) "
                                 "combination; see RetryPolicy)")
    run_parser.add_argument("--drain-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="how long a failover waits for a "
                                 "wounded worker/shard to drain before "
                                 "abandoning it (default: 5)")
    run_parser.add_argument("--reconnect-attempts", type=int, default=None,
                            metavar="N",
                            help="reconnect attempts before an external "
                                 "shard address is declared dead "
                                 "(requires --backend sharded; default: 1)")
    run_parser.add_argument("--connect-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="TCP connect timeout per shard "
                                 "(requires --backend sharded; default: 30)")
    run_parser.add_argument("--retry-backoff", type=float, default=None,
                            metavar="SECONDS",
                            help="base delay of the exponential backoff "
                                 "between failover attempts (default: 0 = "
                                 "retry immediately)")
    run_parser.add_argument("--retry-jitter", type=float, default=None,
                            metavar="FRACTION",
                            help="seeded jitter fraction applied to each "
                                 "backoff delay, 0..1 (deterministic per "
                                 "seed; default: 0)")
    run_parser.add_argument("--output", default=None,
                            help="also write the formatted output to a file")

    scenario_parser = subparsers.add_parser(
        "scenario",
        help="execute a declarative chaos scenario (fault injection, "
             "fleet churn, retry policies) from a JSON spec")
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command")
    scenario_run = scenario_sub.add_parser(
        "run", help="run one scenario spec and print its event log")
    scenario_run.add_argument("spec",
                              help="path to the scenario JSON (see "
                                   "examples/scenario_*.json)")
    scenario_run.add_argument("--seed", type=int, default=None,
                              help="override the spec's seed")
    scenario_run.add_argument("--events-out", default=None, metavar="PATH",
                              help="write the per-run event log as JSON "
                                   "Lines to this file")
    scenario_run.add_argument("--assert-serial", action="store_true",
                              help="re-run the scenario on the serial "
                                   "backend without fault injection and "
                                   "fail unless both histories are "
                                   "bit-identical (requires a non-degrade "
                                   "failure policy)")
    scenario_run.add_argument("--output", default=None,
                              help="also write the printed summary to a "
                                   "file")

    shard_parser = subparsers.add_parser(
        "shard-worker",
        help="serve one shard of the 'sharded' execution backend")
    shard_parser.add_argument("--host", default="127.0.0.1",
                              help="interface to listen on "
                                   "(default: 127.0.0.1)")
    shard_parser.add_argument("--port", type=int, default=0,
                              help="port to listen on (default: 0 = let "
                                   "the OS pick; the bound port is "
                                   "announced on stdout)")
    shard_parser.add_argument("--max-frame-bytes", type=int, default=None,
                              help="reject protocol frames larger than "
                                   "this many bytes")
    shard_parser.add_argument("--max-sessions", type=int, default=None,
                              help="retain at most this many parent "
                                   "session fleets; beyond it the least "
                                   "recently active disconnected session "
                                   "is evicted (default: 8)")
    shard_parser.add_argument("--read-deadline", type=float, default=None,
                              help="drop a connection that stalls "
                                   "mid-frame for this many seconds; "
                                   "its session stays resumable "
                                   "(default: 600)")

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the AST invariant checkers (determinism, wire kinds, "
             "event loop, exception swallowing, resource lifecycles)")
    lint_parser.add_argument("paths", nargs="*",
                             help="files or directories to lint "
                                  "(default: the repro package)")
    lint_parser.add_argument("--format", default="text",
                             choices=("text", "json"), dest="output_format",
                             help="report format (default: text)")
    lint_parser.add_argument("--baseline", default=None,
                             help="baseline JSON of accepted findings "
                                  "(default: tools/lint_baseline.json)")
    lint_parser.add_argument("--fix-baseline", action="store_true",
                             help="rewrite the baseline to accept every "
                                  "current finding, then exit 0")
    lint_parser.add_argument("--output", default=None,
                             help="also write the report to a file")
    return parser


def _print_experiment_list() -> None:
    for identifier in available_experiments():
        entry = get_experiment(identifier)
        print(f"{identifier:10s} {entry.description}")


def _print_scales() -> None:
    for name, scale in sorted(SCALES.items()):
        print(f"{name:6s} train={scale.num_train:<5d} "
              f"cycles={scale.num_cycles:<3d} "
              f"width={scale.width_multiplier}")


def _validate_shards(shards: str) -> None:
    """Fail fast on malformed ``--shards`` entries (before any connect)."""
    for entry in shards.split(","):
        entry = entry.strip()
        host, sep, port = entry.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"--shards entry {entry!r} is not host:port (every shard "
                f"address needs an explicit port)")


def _run(experiment: str, scale: str, seed: int,
         output: Optional[str], backend: str = "serial",
         workers: Optional[int] = None,
         shards: Optional[str] = None,
         on_shard_failure: Optional[str] = None,
         heartbeat_interval: Optional[float] = None,
         wire_compression: Optional[str] = None,
         delta_shipping: Optional[bool] = None,
         aggregation: Optional[str] = None,
         weight_arena: Optional[str] = None,
         fusion: Optional[str] = None,
         failover_attempts: Optional[int] = None,
         drain_timeout: Optional[float] = None,
         reconnect_attempts: Optional[int] = None,
         connect_timeout: Optional[float] = None,
         retry_backoff: Optional[float] = None,
         retry_jitter: Optional[float] = None) -> int:
    if workers is not None and workers <= 0:
        raise ValueError(f"--workers must be positive (got {workers})")
    if heartbeat_interval is not None and heartbeat_interval <= 0:
        raise ValueError(f"--heartbeat-interval must be positive "
                         f"(got {heartbeat_interval:g})")
    if shards is not None and backend != "sharded":
        raise ValueError("--shards requires --backend sharded")
    if shards is not None:
        _validate_shards(shards)
    if on_shard_failure is not None and backend not in ("sharded",
                                                        "persistent"):
        raise ValueError("--on-shard-failure requires --backend "
                         "sharded or --backend persistent")
    if heartbeat_interval is not None and backend != "sharded":
        raise ValueError("--heartbeat-interval requires --backend sharded")
    if wire_compression is not None and backend not in ("sharded",
                                                        "persistent"):
        raise ValueError("--wire-compression requires --backend "
                         "sharded or --backend persistent")
    if delta_shipping is not None and backend not in ("sharded",
                                                      "persistent"):
        raise ValueError("--no-delta-shipping requires --backend "
                         "sharded or --backend persistent")
    if weight_arena is not None and backend != "persistent":
        raise ValueError("--weight-arena requires --backend persistent "
                         "(shared-memory arenas are single-host)")
    if fusion is not None and backend not in ("sharded", "persistent"):
        raise ValueError("--fusion requires --backend sharded or "
                         "--backend persistent")
    # Retry knobs assemble into one RetryPolicy spec; RetryPolicy and
    # make_backend own the value validation (one-line ValueErrors).
    retry_spec = {}
    for key, value in (("max_attempts", failover_attempts),
                       ("drain_timeout_s", drain_timeout),
                       ("reconnect_attempts", reconnect_attempts),
                       ("backoff_base_s", retry_backoff),
                       ("jitter", retry_jitter)):
        if value is not None:
            retry_spec[key] = value
    if retry_spec and backend not in ("sharded", "persistent"):
        raise ValueError("--failover-attempts/--drain-timeout/"
                         "--reconnect-attempts/--retry-backoff/"
                         "--retry-jitter require --backend sharded or "
                         "--backend persistent")
    if retry_spec:
        retry_spec["seed"] = seed
    if connect_timeout is not None and backend != "sharded":
        raise ValueError("--connect-timeout requires --backend sharded")
    kwargs = {"scale": scale}
    entry = get_experiment(experiment)
    # Profiling-only experiments take neither a seed nor a training
    # backend; training experiments accept both.
    accepts = inspect.signature(entry.runner).parameters
    if "seed" in accepts:
        kwargs["seed"] = seed
    shared_backend = None
    if ((backend != "serial" or aggregation is not None)
            and "backend" not in accepts):
        print(f"warning: experiment {experiment!r} runs no client "
              f"trainings; ignoring --backend/--workers/--shards/"
              f"--on-shard-failure/--heartbeat-interval/"
              f"--wire-compression/--no-delta-shipping/--aggregation/"
              f"--weight-arena/--fusion and the retry/connect knobs",
              file=sys.stderr)
    elif backend == "serial" and workers is not None:
        print("warning: --workers has no effect with the serial backend",
              file=sys.stderr)
    if "backend" in accepts and (backend != "serial"
                                 or aggregation is not None):
        shared_backend = make_backend(backend, max_workers=workers,
                                      shards=shards,
                                      on_shard_failure=on_shard_failure,
                                      heartbeat_interval=heartbeat_interval,
                                      wire_compression=wire_compression,
                                      delta_shipping=delta_shipping,
                                      aggregation=aggregation,
                                      weight_arena=weight_arena,
                                      fusion=fusion,
                                      retry_policy=retry_spec or None,
                                      connect_timeout=connect_timeout)
        kwargs["backend"] = shared_backend
    try:
        _, text = run_experiment(experiment, **kwargs)
    finally:
        if shared_backend is not None:
            shared_backend.close()
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(written to {output})")
    return 0


def _run_scenario(spec_path: str, seed: Optional[int],
                  events_out: Optional[str], assert_serial: bool,
                  output: Optional[str]) -> int:
    """Execute one chaos scenario spec; exit 1 on a serial mismatch."""
    # Imported lazily so the base CLI stays importable without the
    # chaos/scenario stack (and 'repro list' stays fast).
    from .fl.scenario import compare_histories, load_spec, run_scenario

    spec = load_spec(spec_path)
    if assert_serial and spec.get("backend", {}).get("on_failure") == \
            "degrade":
        raise ValueError(
            "--assert-serial requires a lossless failure policy "
            "('rebalance'); under 'degrade' the history legitimately "
            "diverges from the serial reference")
    result = run_scenario(spec, seed=seed)
    lines = [f"scenario {result.name!r} (seed {result.seed}): "
             f"{len(result.history.records)} cycles, "
             f"final accuracy {result.history.final_accuracy():.4f}"]
    for event in result.events:
        lines.append("  " + json.dumps(event, sort_keys=True))
    status = 0
    if assert_serial:
        reference = run_scenario(spec, seed=seed,
                                 backend_override="serial", inject=False)
        problems = compare_histories(result.history, reference.history)
        if problems:
            lines.append("serial check FAILED:")
            lines.extend("  " + problem for problem in problems)
            status = 1
        else:
            lines.append("serial check passed: history is bit-identical "
                         "to the fault-free serial run")
    text = "\n".join(lines)
    print(text)
    if events_out:
        result.write_events(events_out)
        print(f"(event log written to {events_out})")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"(written to {output})")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        _print_experiment_list()
        return 0
    if args.command == "scales":
        _print_scales()
        return 0
    if args.command == "run":
        try:
            return _run(args.experiment, args.scale, args.seed, args.output,
                        backend=args.backend, workers=args.workers,
                        shards=args.shards,
                        on_shard_failure=args.on_shard_failure,
                        heartbeat_interval=args.heartbeat_interval,
                        wire_compression=args.wire_compression,
                        delta_shipping=(False if args.no_delta_shipping
                                        else None),
                        aggregation=args.aggregation,
                        weight_arena=args.weight_arena,
                        fusion=args.fusion,
                        failover_attempts=args.failover_attempts,
                        drain_timeout=args.drain_timeout,
                        reconnect_attempts=args.reconnect_attempts,
                        connect_timeout=args.connect_timeout,
                        retry_backoff=args.retry_backoff,
                        retry_jitter=args.retry_jitter)
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "scenario":
        if args.scenario_command != "run":
            parser.parse_args(["scenario", "--help"])
            return 1
        try:
            return _run_scenario(args.spec, seed=args.seed,
                                 events_out=args.events_out,
                                 assert_serial=args.assert_serial,
                                 output=args.output)
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.command == "shard-worker":
        return _serve_shard(args.host, args.port, args.max_frame_bytes,
                            args.max_sessions, args.read_deadline)
    if args.command == "lint":
        # Imported lazily: the analysis engine is stdlib-only and must
        # stay importable (and fast) without touching the fl stack.
        from .analysis.cli import run_lint
        return run_lint(args.paths, output_format=args.output_format,
                        baseline=args.baseline,
                        fix_baseline=args.fix_baseline,
                        output=args.output)
    parser.print_help()
    return 1


def _serve_shard(host: str, port: int, max_frame_bytes: Optional[int],
                 max_sessions: Optional[int] = None,
                 read_deadline: Optional[float] = None) -> int:
    """Run one shard server until it receives a shutdown message."""
    from .fl.transport import (DEFAULT_MAX_FRAME_BYTES, DEFAULT_MAX_SESSIONS,
                               DEFAULT_READ_DEADLINE_S, serve_shard)

    if max_frame_bytes is not None and not 0 < max_frame_bytes <= 0xFFFFFFFF:
        print("error: --max-frame-bytes must be positive and within the "
              "4-byte frame header's 4 GiB limit", file=sys.stderr)
        return 2
    if max_frame_bytes is None:
        max_frame_bytes = DEFAULT_MAX_FRAME_BYTES
    if max_sessions is not None and max_sessions < 1:
        print("error: --max-sessions must be at least 1", file=sys.stderr)
        return 2
    if max_sessions is None:
        max_sessions = DEFAULT_MAX_SESSIONS
    if read_deadline is not None and read_deadline <= 0:
        print("error: --read-deadline must be positive", file=sys.stderr)
        return 2
    if read_deadline is None:
        read_deadline = DEFAULT_READ_DEADLINE_S

    def announce(bound_host: str, bound_port: int) -> None:
        # The auto-spawn mode of ShardedSocketBackend parses this line.
        print(f"{SHARD_ANNOUNCE_PREFIX} {bound_host} {bound_port}",
              flush=True)

    try:
        serve_shard(host, port, max_frame_bytes=max_frame_bytes,
                    max_sessions=max_sessions, read_deadline=read_deadline,
                    ready=announce)
    except OSError as error:
        print(f"error: cannot serve shard on {host}:{port}: {error}",
              file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
