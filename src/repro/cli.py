"""Command-line interface for running the paper's experiments.

Usage::

    python -m repro list
    python -m repro run table1 --scale fast
    python -m repro run fig5 --scale smoke --output results/fig5.txt
    python -m repro scales

Every experiment prints the same rows/series the paper reports; the
optional ``--output`` flag additionally writes the formatted text to a
file.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from .experiments import (SCALES, available_experiments, get_experiment,
                          run_experiment)
from .fl.executor import available_backends, make_backend

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Helios (DAC 2021): run the paper's "
                    "tables and figures.")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list the available experiments")
    subparsers.add_parser("scales", help="list the available scale presets")

    run_parser = subparsers.add_parser(
        "run", help="run one experiment and print its table/series")
    run_parser.add_argument("experiment",
                            help="experiment id (see 'repro list')")
    run_parser.add_argument("--scale", default="fast",
                            choices=sorted(SCALES),
                            help="experiment scale preset (default: fast)")
    run_parser.add_argument("--seed", type=int, default=0,
                            help="random seed (default: 0)")
    run_parser.add_argument("--backend", default="serial",
                            choices=available_backends(),
                            help="execution backend for client trainings "
                                 "(default: serial; all backends produce "
                                 "bit-identical results; 'persistent' "
                                 "keeps clients resident in worker "
                                 "processes and ships only weights/masks "
                                 "per cycle)")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker count for the pooled backends "
                                 "(thread/process/persistent; default: "
                                 "library default)")
    run_parser.add_argument("--output", default=None,
                            help="also write the formatted output to a file")
    return parser


def _print_experiment_list() -> None:
    for identifier in available_experiments():
        entry = get_experiment(identifier)
        print(f"{identifier:10s} {entry.description}")


def _print_scales() -> None:
    for name, scale in sorted(SCALES.items()):
        print(f"{name:6s} train={scale.num_train:<5d} "
              f"cycles={scale.num_cycles:<3d} "
              f"width={scale.width_multiplier}")


def _run(experiment: str, scale: str, seed: int,
         output: Optional[str], backend: str = "serial",
         workers: Optional[int] = None) -> int:
    kwargs = {"scale": scale}
    entry = get_experiment(experiment)
    # Profiling-only experiments take neither a seed nor a training
    # backend; training experiments accept both.
    accepts = inspect.signature(entry.runner).parameters
    if "seed" in accepts:
        kwargs["seed"] = seed
    shared_backend = None
    if backend != "serial" and "backend" not in accepts:
        print(f"warning: experiment {experiment!r} runs no client "
              f"trainings; ignoring --backend/--workers", file=sys.stderr)
    elif backend == "serial" and workers is not None:
        print("warning: --workers has no effect with the serial backend",
              file=sys.stderr)
    elif "backend" in accepts and backend != "serial":
        shared_backend = make_backend(backend, max_workers=workers)
        kwargs["backend"] = shared_backend
    try:
        _, text = run_experiment(experiment, **kwargs)
    finally:
        if shared_backend is not None:
            shared_backend.close()
    print(text)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(written to {output})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        _print_experiment_list()
        return 0
    if args.command == "scales":
        _print_scales()
        return 0
    if args.command == "run":
        try:
            return _run(args.experiment, args.scale, args.seed, args.output,
                        backend=args.backend, workers=args.workers)
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
