"""Convergence and speed-up metrics derived from training histories.

These are the quantities the paper's evaluation reports: convergence
accuracy, cycles/time to reach a target, speed-up of one method over
another (the headline "up to 2.5× training acceleration"), and the accuracy
improvement of Helios over the best baseline (the "maximum 4.64%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..fl.history import TrainingHistory

__all__ = [
    "ConvergenceSummary",
    "summarize_history",
    "speedup_over",
    "accuracy_improvement",
    "cycles_speedup",
    "compare_histories",
]


@dataclass(frozen=True)
class ConvergenceSummary:
    """Compact per-run convergence summary."""

    strategy: str
    cycles: int
    final_accuracy: float
    best_accuracy: float
    converged_accuracy: float
    total_time_s: float
    cycles_to_target: Optional[int]
    time_to_target_s: Optional[float]
    target_accuracy: float


def summarize_history(history: TrainingHistory,
                      target_accuracy: float) -> ConvergenceSummary:
    """Summarize one run against a target accuracy."""
    return ConvergenceSummary(
        strategy=history.strategy_name,
        cycles=len(history),
        final_accuracy=history.final_accuracy(),
        best_accuracy=history.best_accuracy(),
        converged_accuracy=history.converged_accuracy(),
        total_time_s=history.total_time(),
        cycles_to_target=history.cycles_to_accuracy(target_accuracy),
        time_to_target_s=history.time_to_accuracy(target_accuracy),
        target_accuracy=target_accuracy,
    )


def speedup_over(candidate: TrainingHistory, baseline: TrainingHistory,
                 target_accuracy: float) -> Optional[float]:
    """Wall-clock speed-up of ``candidate`` over ``baseline``.

    Measured as the ratio of simulated time-to-target-accuracy; ``None``
    when either run never reaches the target.
    """
    candidate_time = candidate.time_to_accuracy(target_accuracy)
    baseline_time = baseline.time_to_accuracy(target_accuracy)
    if candidate_time is None or baseline_time is None or candidate_time <= 0:
        return None
    return baseline_time / candidate_time


def cycles_speedup(candidate: TrainingHistory, baseline: TrainingHistory,
                   target_accuracy: float) -> Optional[float]:
    """Aggregation-cycle speed-up (ratio of cycles-to-target)."""
    candidate_cycles = candidate.cycles_to_accuracy(target_accuracy)
    baseline_cycles = baseline.cycles_to_accuracy(target_accuracy)
    if candidate_cycles is None or baseline_cycles is None or candidate_cycles <= 0:
        return None
    return baseline_cycles / candidate_cycles


def accuracy_improvement(candidate: TrainingHistory,
                         baselines: Iterable[TrainingHistory],
                         use_best: bool = True) -> float:
    """Accuracy improvement (percentage points) of ``candidate`` over baselines.

    ``use_best=True`` compares against the *best* baseline (the paper's
    conservative reading of "X% accuracy improvement"); ``False`` compares
    against the mean of the baselines.
    """
    baseline_values = [history.converged_accuracy() for history in baselines]
    if not baseline_values:
        raise ValueError("need at least one baseline history")
    reference = max(baseline_values) if use_best else (
        sum(baseline_values) / len(baseline_values))
    return (candidate.converged_accuracy() - reference) * 100.0


def compare_histories(histories: Mapping[str, TrainingHistory],
                      target_accuracy: float) -> List[Dict[str, object]]:
    """Produce one summary row per strategy, sorted by converged accuracy."""
    rows: List[Dict[str, object]] = []
    for name, history in histories.items():
        summary = summarize_history(history, target_accuracy)
        rows.append({
            "strategy": name,
            "converged_accuracy": round(summary.converged_accuracy, 4),
            "best_accuracy": round(summary.best_accuracy, 4),
            "cycles_to_target": summary.cycles_to_target,
            "time_to_target_s": (round(summary.time_to_target_s, 1)
                                 if summary.time_to_target_s is not None
                                 else None),
            "total_time_s": round(summary.total_time_s, 1),
        })
    rows.sort(key=lambda row: -float(row["converged_accuracy"]))
    return rows
