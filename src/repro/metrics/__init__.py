"""Metrics and reporting: convergence summaries, speed-ups, text tables."""

from .convergence import (ConvergenceSummary, accuracy_improvement,
                          compare_histories, cycles_speedup, speedup_over,
                          summarize_history)
from .reporting import format_accuracy_curves, format_series, format_table

__all__ = [
    "ConvergenceSummary",
    "summarize_history",
    "speedup_over",
    "cycles_speedup",
    "accuracy_improvement",
    "compare_histories",
    "format_table",
    "format_series",
    "format_accuracy_curves",
]
