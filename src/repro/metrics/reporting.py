"""Plain-text table and series rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place (no plotting dependency is
available offline, so figures are emitted as aligned text series).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_accuracy_curves"]


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render a list of row-dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body: List[List[str]] = []
    for row in rows:
        body.append(["" if row.get(column) is None else str(row.get(column))
                     for column in columns])
    widths = [max(len(header[i]), *(len(line[i]) for line in body))
              for i in range(len(header))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i])
                           for i in range(len(header))))
    lines.append("  ".join("-" * widths[i] for i in range(len(header))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i])
                               for i in range(len(header))))
    return "\n".join(lines)


def format_series(x_values: Sequence[object], y_values: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  title: str = "", precision: int = 4) -> str:
    """Render one (x, y) series as two aligned columns."""
    if len(x_values) != len(y_values):
        raise ValueError("x and y series must have the same length")
    rows = [{x_label: x, y_label: round(float(y), precision)}
            for x, y in zip(x_values, y_values)]
    return format_table(rows, columns=[x_label, y_label], title=title)


def format_accuracy_curves(curves: Mapping[str, Sequence[float]],
                           title: str = "",
                           x_label: str = "cycle",
                           precision: int = 4) -> str:
    """Render several accuracy-vs-cycle curves side by side.

    ``curves`` maps strategy name to its per-cycle accuracy list; shorter
    curves are padded with blanks.
    """
    if not curves:
        return f"{title}\n(no curves)" if title else "(no curves)"
    length = max(len(values) for values in curves.values())
    rows: List[Dict[str, object]] = []
    for index in range(length):
        row: Dict[str, object] = {x_label: index + 1}
        for name, values in curves.items():
            row[name] = (round(float(values[index]), precision)
                         if index < len(values) else None)
        rows.append(row)
    return format_table(rows, columns=[x_label, *curves.keys()], title=title)
