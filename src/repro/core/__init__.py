"""Helios core: the paper's primary contribution.

Straggler identification, optimization-target determination, soft-training
(contribution metric, rotating selection, rejoin regulation), convergence
analysis, heterogeneity-aware aggregation, dynamic-join scalability and the
:class:`HeliosStrategy` that ties them together.
"""

from .aggregation import heterogeneity_ratios, heterogeneity_weights
from .contribution import (contributions_from_gradients,
                           layer_parameter_index, neuron_contributions)
from .convergence import (SoftTrainingConvergenceAnalysis,
                          analyze_soft_training, descent_upper_bound,
                          expected_active_bound,
                          optimal_selection_probabilities,
                          select_v_for_epsilon,
                          sparsified_gradient_variance)
from .helios import HeliosConfig, HeliosStrategy
from .rotation import NeuronRotationTracker
from .scalability import DynamicJoinManager, JoinDecision
from .selection import SoftTrainingSelector
from .straggler import StragglerIdentifier, StragglerReport
from .targets import OptimizationTargetPolicy, VolumeAssignment

__all__ = [
    "HeliosConfig",
    "HeliosStrategy",
    "StragglerIdentifier",
    "StragglerReport",
    "OptimizationTargetPolicy",
    "VolumeAssignment",
    "SoftTrainingSelector",
    "NeuronRotationTracker",
    "neuron_contributions",
    "contributions_from_gradients",
    "layer_parameter_index",
    "heterogeneity_weights",
    "heterogeneity_ratios",
    "DynamicJoinManager",
    "JoinDecision",
    "analyze_soft_training",
    "SoftTrainingConvergenceAnalysis",
    "descent_upper_bound",
    "sparsified_gradient_variance",
    "optimal_selection_probabilities",
    "select_v_for_epsilon",
    "expected_active_bound",
]
