"""Rotating neuron selection for soft-training (paper Sec. V-A, Eq. 2).

Every training cycle a straggler trains only ``P_i · n_i`` neurons per
layer.  The selected set is composed of

* the highest-contribution neurons (``Ps`` share of the selection —
  "primary converge guarantee"), and
* a random draw from the remaining neurons ("further converge
  optimization"), which rotates across cycles so every neuron periodically
  participates.

Neurons the rotation regulator flags as *forced* (skipped too long, paper
Sec. VI-A) are always included, taking precedence over the random draw.

Note on ``Ps``: the paper uses ``Ps`` both as a share of the selected set
(Eq. 2, ``K = Ps · P_i · n_i``) and as a share of all neurons (Sec. VI-A,
"``Ps = 1`` means full training").  This implementation follows Eq. 2 —
``Ps`` is the fraction of the *selected* neurons chosen by contribution —
because that is the formula the selection algorithm is defined with; the
``Ps`` ablation benchmark sweeps the value either way.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..nn.masking import ModelMask
from ..nn.model import Sequential

__all__ = ["SoftTrainingSelector"]


class SoftTrainingSelector:
    """Builds per-cycle neuron masks for one straggler."""

    def __init__(self, model: Sequential, volume_fractions: Mapping[str, float],
                 top_share: float = 0.1,
                 rng: Optional[np.random.Generator] = None) -> None:
        """
        Parameters
        ----------
        model:
            Reference model (provides layer names and neuron counts).
        volume_fractions:
            Expected model volume per layer (``P_i``), each in ``(0, 1]``.
        top_share:
            ``Ps`` — the share of each layer's selection filled with the
            highest-contribution neurons (paper suggests 0.05–0.1).
        rng:
            Random generator for the rotating random draw.
        """
        if not 0.0 <= top_share <= 1.0:
            raise ValueError("top_share must be in [0, 1]")
        self.model = model
        self.top_share = top_share
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.layer_neurons: Dict[str, int] = {
            layer.name: layer.num_neurons for layer in model.neuron_layers()}
        self.volume_fractions: Dict[str, float] = {}
        for name, count in self.layer_neurons.items():
            fraction = float(volume_fractions.get(name, 1.0))
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"volume fraction for {name!r} must be in (0, 1]")
            self.volume_fractions[name] = fraction

    # ------------------------------------------------------------------ #
    def set_volume(self, volume_fractions: Mapping[str, float]) -> None:
        """Update the expected model volume (pace adaptation)."""
        for name, fraction in volume_fractions.items():
            if name not in self.layer_neurons:
                raise KeyError(f"unknown layer {name!r}")
            if not 0.0 < float(fraction) <= 1.0:
                raise ValueError("volume fractions must be in (0, 1]")
            self.volume_fractions[name] = float(fraction)

    def selection_counts(self) -> Dict[str, int]:
        """Number of neurons selected per layer under the current volume."""
        return {
            name: max(1, int(round(self.volume_fractions[name] * count)))
            for name, count in self.layer_neurons.items()
        }

    # ------------------------------------------------------------------ #
    def select(self, contributions: Optional[Mapping[str, np.ndarray]] = None,
               forced: Optional[Mapping[str, Sequence[int]]] = None
               ) -> ModelMask:
        """Build the neuron mask for the next training cycle.

        Parameters
        ----------
        contributions:
            Per-layer contribution scores ``U_ij`` from the previous cycle;
            ``None`` (first cycle) falls back to a purely random selection.
        forced:
            Per-layer neuron indices that must be included (long-skipped
            neurons pulled back by the rotation regulator).
        """
        forced = forced or {}
        masks: Dict[str, np.ndarray] = {}
        counts = self.selection_counts()
        for name, total_neurons in self.layer_neurons.items():
            budget = counts[name]
            mask = np.zeros(total_neurons, dtype=bool)

            forced_idx = np.unique(np.asarray(forced.get(name, ()),
                                              dtype=np.int64))
            if forced_idx.size:
                if forced_idx.min() < 0 or forced_idx.max() >= total_neurons:
                    raise IndexError(
                        f"forced neuron index out of range for layer {name!r}")
                # Forced neurons consume the budget first but never shrink
                # below it — if more neurons are overdue than the budget
                # allows, the budget grows for this cycle (the paper pulls
                # them back "timely" rather than dropping them).
                mask[forced_idx] = True

            scores = None
            if contributions is not None and name in contributions:
                scores = np.asarray(contributions[name], dtype=np.float64)
                if scores.shape != (total_neurons,):
                    raise ValueError(
                        f"contribution scores for {name!r} have shape "
                        f"{scores.shape}, expected ({total_neurons},)")

            remaining_budget = budget - int(mask.sum())
            if remaining_budget > 0:
                top_count = int(round(self.top_share * remaining_budget))
                if scores is not None and top_count > 0:
                    candidate_order = np.argsort(-scores)
                    picked = 0
                    for index in candidate_order:
                        if picked >= top_count:
                            break
                        if not mask[index]:
                            mask[index] = True
                            picked += 1
                remaining_budget = budget - int(mask.sum())
                if remaining_budget > 0:
                    pool = np.flatnonzero(~mask)
                    chosen = self.rng.choice(pool, size=min(remaining_budget,
                                                            pool.size),
                                             replace=False)
                    mask[chosen] = True
            if not mask.any():
                # Degenerate safeguard: always train at least one neuron.
                mask[self.rng.integers(0, total_neurons)] = True
            masks[name] = mask
        return ModelMask(masks)
