"""Potential-straggler identification (paper Sec. IV-B).

Two identification paths are implemented:

* **Time-based approximation** (*black box*) — every device runs a
  lightweight test bench; devices are ranked by measured time and the
  slowest ``top_k`` (or everything slower than a relative threshold) are
  flagged as potential stragglers.
* **Resource-based profiling** (*white box*) — the analytical cost model
  ``Te = W/Ccpu + M/Vmc + M/Bn`` is evaluated from the devices' published
  resource figures, giving an exact expected cycle time per device.

Both paths produce the same :class:`StragglerReport`, so the rest of the
framework (target determination, soft-training) is agnostic to which one
was used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fl.executor import ExecutionBackend
from ..hardware.device import DeviceProfile
from ..hardware.profiler import FleetProfiler
from ..nn.model import Sequential

__all__ = ["StragglerReport", "StragglerIdentifier"]


@dataclass
class StragglerReport:
    """Outcome of straggler identification over a fleet.

    Attributes
    ----------
    method:
        ``"time"`` or ``"resource"``.
    cycle_seconds:
        Expected (or measured, scaled to a full cycle) per-cycle time for
        every device, keyed by client index.
    ranking:
        Client indices sorted from slowest to fastest — the paper's index
        ``T = {T1, ..., TN}`` with ``T1`` the longest time cost.
    straggler_indices:
        Client indices identified as potential stragglers.
    reference_seconds:
        The collaboration pace the stragglers are compared against
        (the fastest capable device's cycle time).
    """

    method: str
    cycle_seconds: Dict[int, float]
    ranking: List[int]
    straggler_indices: List[int]
    reference_seconds: float
    extra: Dict[str, float] = field(default_factory=dict)

    def is_straggler(self, client_index: int) -> bool:
        """Whether a client was flagged as a potential straggler."""
        return client_index in self.straggler_indices

    def capable_indices(self) -> List[int]:
        """Indices of devices not flagged as stragglers."""
        return [index for index in self.cycle_seconds
                if index not in self.straggler_indices]

    def slowdown_factor(self, client_index: int) -> float:
        """How much slower a device is than the collaboration pace."""
        if self.reference_seconds <= 0:
            return 1.0
        return self.cycle_seconds[client_index] / self.reference_seconds


class StragglerIdentifier:
    """Identify potential stragglers before the collaboration starts.

    Parameters
    ----------
    model:
        The training model (used to derive workload and memory figures).
    input_shape:
        Shape of one input sample.
    samples_per_cycle:
        Samples each device processes per local training cycle (dataset
        size × local epochs); a single representative value is enough for
        identification because the *ratio* between devices is what matters.
    batch_size:
        Local mini-batch size (memory term).
    slowdown_threshold:
        A device is a straggler when its cycle time exceeds
        ``slowdown_threshold ×`` the fastest device's cycle time.
    """

    def __init__(self, model: Sequential, input_shape: Tuple[int, ...],
                 samples_per_cycle: int, batch_size: int = 32,
                 slowdown_threshold: float = 1.5) -> None:
        if slowdown_threshold <= 1.0:
            raise ValueError("slowdown_threshold must be greater than 1")
        self.profiler = FleetProfiler(model, input_shape, samples_per_cycle,
                                      batch_size=batch_size)
        self.slowdown_threshold = slowdown_threshold

    # ------------------------------------------------------------------ #
    # shared post-processing
    # ------------------------------------------------------------------ #
    def _build_report(self, method: str,
                      cycle_seconds: Dict[int, float],
                      top_k: Optional[int]) -> StragglerReport:
        ranking = sorted(cycle_seconds, key=lambda idx: -cycle_seconds[idx])
        reference = min(cycle_seconds.values())
        if top_k is not None:
            if top_k < 0 or top_k > len(cycle_seconds):
                raise ValueError("top_k out of range")
            stragglers = ranking[:top_k]
        else:
            stragglers = [index for index, seconds in cycle_seconds.items()
                          if seconds > self.slowdown_threshold * reference]
        return StragglerReport(
            method=method,
            cycle_seconds=dict(cycle_seconds),
            ranking=ranking,
            straggler_indices=sorted(stragglers),
            reference_seconds=reference,
        )

    # ------------------------------------------------------------------ #
    # white-box path
    # ------------------------------------------------------------------ #
    def identify_by_resources(self, devices: Sequence[DeviceProfile],
                              top_k: Optional[int] = None,
                              backend: Optional[ExecutionBackend] = None
                              ) -> StragglerReport:
        """Resource-based profiling over the fleet.

        Parameters
        ----------
        devices:
            Device profiles indexed by client index.
        top_k:
            If given, flag exactly the ``top_k`` slowest devices; otherwise
            use the relative ``slowdown_threshold``.
        backend:
            Optional execution backend: large fleets can fan the per-device
            cost-model evaluations out over its :meth:`map_ordered`
            (thread backend recommended — the estimate is a bound method,
            which the process backend would have to pickle).
        """
        if backend is None:
            estimates = [self.profiler.estimate(device)
                         for device in devices]
        else:
            estimates = backend.map_ordered(self.profiler.estimate, devices)
        cycle_seconds = {index: estimate.total_seconds
                         for index, estimate in enumerate(estimates)}
        return self._build_report("resource", cycle_seconds, top_k)

    # ------------------------------------------------------------------ #
    # black-box path
    # ------------------------------------------------------------------ #
    def identify_by_time(self, devices: Sequence[DeviceProfile],
                         top_k: Optional[int] = None,
                         bench_fraction: float = 0.05,
                         noise_std: float = 0.02,
                         rng: Optional[np.random.Generator] = None
                         ) -> StragglerReport:
        """Time-based approximation over the fleet.

        Each device runs a short test bench (a ``bench_fraction`` slice of
        a training cycle, with timing noise); measurements are scaled back
        to full-cycle estimates and ranked.
        """
        measurements = self.profiler.measure_test_bench(
            devices, bench_fraction=bench_fraction, noise_std=noise_std,
            rng=rng)
        cycle_seconds = {
            index: measurements[device.name] / bench_fraction
            for index, device in enumerate(devices)
        }
        return self._build_report("time", cycle_seconds, top_k)
