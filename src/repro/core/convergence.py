"""Convergence analysis for soft-training (paper Sec. V-B, Propositions 1–2).

The paper bounds the global convergence loss by the variance of the
(sparsified) gradient and shows that keeping the ``v`` highest-contribution
neurons every cycle, while giving the rest a non-zero selection
probability, bounds the expected number of active neurons by ``(1 + ρ) v``
and the gradient variance by ``(1 + ε) Σ g_i²``.

These functions implement the quantities of Eq. 4–9 so the optimization
benchmarks and tests can check the bound numerically and so users can size
``Ps``/``v`` for their own models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "descent_upper_bound",
    "sparsified_gradient_variance",
    "optimal_selection_probabilities",
    "select_v_for_epsilon",
    "expected_active_bound",
    "SoftTrainingConvergenceAnalysis",
    "analyze_soft_training",
]


def descent_upper_bound(loss_value: float, grad_norm_sq: float,
                        grad_second_moment: float, learning_rate: float,
                        smoothness: float) -> float:
    """Right-hand side of Proposition 1 (Eq. 4).

    ``E[f(Θ_{t+1})] ≤ f(Θ_t) − η ‖∇f‖² + (L/2) η² E‖g‖²``.
    """
    if learning_rate <= 0:
        raise ValueError("learning_rate must be positive")
    if smoothness <= 0:
        raise ValueError("smoothness must be positive")
    return (loss_value - learning_rate * grad_norm_sq
            + 0.5 * smoothness * learning_rate ** 2 * grad_second_moment)


def sparsified_gradient_variance(gradients: np.ndarray,
                                 probabilities: np.ndarray) -> float:
    """Second moment of the unbiased sparsified gradient (Eq. 6).

    ``E Σ ST(g)_i² = Σ g_i² / p_i`` for selection probabilities ``p_i``.
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if gradients.shape != probabilities.shape:
        raise ValueError("gradients and probabilities must share a shape")
    if np.any(probabilities <= 0) or np.any(probabilities > 1):
        raise ValueError("probabilities must be in (0, 1]")
    return float(np.sum(gradients ** 2 / probabilities))


def optimal_selection_probabilities(gradients: np.ndarray,
                                    epsilon: float) -> np.ndarray:
    """Solve the Eq. 7 trade-off: minimize Σ p_i s.t. Σ g_i²/p_i ≤ (1+ε) Σ g_i².

    The optimal solution (from the KKT conditions, following Wangni et al.,
    the paper's ref. [19]) sets ``p_i = min(1, |g_i| / λ)`` where ``λ`` is
    chosen so the variance constraint holds with equality (or every
    ``p_i = 1`` when ε admits it).
    """
    gradients = np.asarray(gradients, dtype=np.float64)
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    magnitudes = np.abs(gradients)
    total_sq = float(np.sum(magnitudes ** 2))
    if total_sq == 0.0:
        return np.ones_like(magnitudes)
    if epsilon == 0:
        return np.ones_like(magnitudes)

    def variance_for(lam: float) -> float:
        probs = np.minimum(1.0, magnitudes / lam)
        probs = np.where(probs <= 0, 1e-12, probs)
        return float(np.sum(magnitudes ** 2 / probs))

    budget = (1.0 + epsilon) * total_sq
    low = float(magnitudes[magnitudes > 0].min()) * 1e-6 + 1e-18
    high = float(magnitudes.max()) * 1e6 + 1.0
    # variance_for is increasing in lambda; bisect for the budget.
    for _ in range(200):
        mid = 0.5 * (low + high)
        if variance_for(mid) <= budget:
            low = mid
        else:
            high = mid
    probs = np.minimum(1.0, magnitudes / low)
    return np.where(probs <= 0, 1e-12, probs)


def select_v_for_epsilon(gradients: np.ndarray, epsilon: float
                         ) -> Tuple[int, np.ndarray]:
    """Number of always-kept neurons ``v`` implied by the ε budget (Eq. 8).

    Returns ``(v, probabilities)`` where the ``v`` largest-magnitude
    entries have probability 1.
    """
    probabilities = optimal_selection_probabilities(gradients, epsilon)
    v = int(np.sum(probabilities >= 1.0 - 1e-12))
    return v, probabilities


def expected_active_bound(v: int, rho: float) -> float:
    """Upper bound ``(1 + ρ) v`` on the expected active neurons (Eq. 9)."""
    if v < 0:
        raise ValueError("v must be non-negative")
    if rho < 0:
        raise ValueError("rho must be non-negative")
    return (1.0 + rho) * v


@dataclass(frozen=True)
class SoftTrainingConvergenceAnalysis:
    """Summary of the Proposition-2 quantities for one gradient snapshot."""

    epsilon: float
    num_neurons: int
    v: int
    expected_active: float
    active_bound: float
    full_variance: float
    sparsified_variance: float
    variance_budget: float

    @property
    def bound_satisfied(self) -> bool:
        """Whether the sparsified variance respects the (1+ε) budget."""
        return self.sparsified_variance <= self.variance_budget * (1 + 1e-9)

    @property
    def expected_within_bound(self) -> bool:
        """Whether E[‖ST(g)‖₀] ≤ (1+ρ)v holds (with ρ = ε).

        The paper's Eq. 9 derivation assumes a concentrated ("sparsifiable")
        gradient; for flat gradient distributions the expected active count
        can exceed the nominal bound, in which case :attr:`rho_implied`
        reports the ρ that would make the bound tight.
        """
        return self.expected_active <= self.active_bound * (1 + 1e-9)

    @property
    def rho_implied(self) -> float:
        """The ρ that makes ``E[‖ST(g)‖₀] = (1+ρ)v`` hold exactly."""
        if self.v <= 0:
            return float("inf")
        return max(0.0, self.expected_active / self.v - 1.0)


def analyze_soft_training(gradients: Sequence[float], epsilon: float,
                          rho: Optional[float] = None
                          ) -> SoftTrainingConvergenceAnalysis:
    """Evaluate the Proposition-2 bound for a per-neuron gradient vector.

    Parameters
    ----------
    gradients:
        Per-neuron gradient magnitudes (e.g. from
        :func:`repro.core.contribution.contributions_from_gradients`).
    epsilon:
        Gradient-variance slack ``ε``.
    rho:
        The ``ρ`` of Eq. 9; the paper sets ``ρ = ε`` and so does the
        default.
    """
    gradients = np.asarray(list(gradients), dtype=np.float64)
    rho = epsilon if rho is None else rho
    v, probabilities = select_v_for_epsilon(gradients, epsilon)
    full_variance = float(np.sum(gradients ** 2))
    sparsified = sparsified_gradient_variance(gradients, probabilities)
    return SoftTrainingConvergenceAnalysis(
        epsilon=epsilon,
        num_neurons=int(gradients.size),
        v=v,
        expected_active=float(np.sum(probabilities)),
        active_bound=expected_active_bound(v, rho) if v > 0 else float(
            np.sum(probabilities)),
        full_variance=full_variance,
        sparsified_variance=sparsified,
        variance_budget=(1.0 + epsilon) * full_variance,
    )
