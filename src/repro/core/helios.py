"""The Helios collaboration strategy (paper Sec. III–VI).

:class:`HeliosStrategy` wires every piece of the framework together:

1. **Setup** — identify potential stragglers (time- or resource-based),
   determine each straggler's expected model volume, and create its
   soft-training selector and rotation tracker.
2. **Every cycle** — capable devices train the full model; each straggler
   trains the subset of neurons chosen from last cycle's contributions
   (top-``Ps`` by contribution + rotating random remainder + forced
   rejoins), so its cycle time matches the collaboration pace.
3. **Aggregation** — neuron-granular weighted averaging with the
   heterogeneity weights ``α_n = r_n / Σ r_k``.
4. **Pace adaptation** — during the first cycles the straggler volumes are
   nudged so shrunk-cycle times converge to the capable devices' pace
   (paper Sec. IV-C, "dynamically adjusted to an optimal point during the
   first several training cycles").
5. **Scalability** — devices joining mid-run are profiled and admitted
   with an appropriate volume (Sec. VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..fl.client import ClientUpdate, FLClient
from ..fl.simulation import FederatedSimulation
from ..fl.strategy import CycleOutcome, FederatedStrategy
from ..nn.masking import ModelMask
from .aggregation import heterogeneity_weights
from .contribution import neuron_contributions
from .rotation import NeuronRotationTracker
from .scalability import DynamicJoinManager, JoinDecision
from .selection import SoftTrainingSelector
from .straggler import StragglerIdentifier, StragglerReport
from .targets import OptimizationTargetPolicy, VolumeAssignment

__all__ = ["HeliosConfig", "HeliosStrategy"]


@dataclass
class HeliosConfig:
    """Hyper-parameters of the Helios framework."""

    #: ``Ps`` — share of each selection filled by top-contribution neurons.
    top_share: float = 0.1
    #: Straggler identification path: ``"resource"`` (white box) or
    #: ``"time"`` (black box).
    identification: str = "resource"
    #: Flag exactly this many slowest devices as stragglers (None = use the
    #: relative slowdown threshold).
    straggler_top_k: Optional[int] = None
    #: Relative threshold for the straggler decision.
    slowdown_threshold: float = 1.5
    #: Volume policy: ``"resource"`` (cost-model search) or ``"levels"``.
    volume_policy: str = "resource"
    #: Lower bound on any straggler volume.
    min_volume: float = 0.1
    #: Pace slack multiplier for volume sizing.
    pace_slack: float = 1.1
    #: Aggregation: ``"heterogeneous"`` (Eq. 10) or ``"fedavg"``
    #: (the paper's "S.T. Only" ablation).
    aggregation: str = "heterogeneous"
    #: Multiply the heterogeneity weights by FedAvg sample-count weights.
    combine_sample_counts: bool = True
    #: Additive margin of the forced-rejoin threshold.
    rejoin_margin: float = 1.0
    #: Number of initial cycles with active volume adaptation.
    adapt_volume_cycles: int = 3
    #: Relative volume step of the pace adaptation.
    volume_adapt_rate: float = 0.15
    #: RNG seed for the rotating random selection.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.top_share <= 1.0:
            raise ValueError("top_share must be in [0, 1]")
        if self.identification not in ("resource", "time"):
            raise ValueError("identification must be 'resource' or 'time'")
        if self.volume_policy not in ("resource", "levels"):
            raise ValueError("volume_policy must be 'resource' or 'levels'")
        if self.aggregation not in ("heterogeneous", "fedavg"):
            raise ValueError("aggregation must be 'heterogeneous' or 'fedavg'")
        if not 0.0 < self.min_volume <= 1.0:
            raise ValueError("min_volume must be in (0, 1]")
        if self.adapt_volume_cycles < 0:
            raise ValueError("adapt_volume_cycles must be non-negative")
        if not 0.0 <= self.volume_adapt_rate < 1.0:
            raise ValueError("volume_adapt_rate must be in [0, 1)")


class HeliosStrategy(FederatedStrategy):
    """Heterogeneity-aware FL with soft-training (the paper's contribution)."""

    name = "Helios"

    def __init__(self, config: Optional[HeliosConfig] = None) -> None:
        self.config = config or HeliosConfig()
        if self.config.aggregation == "fedavg":
            self.name = "S.T. Only"
        self.report: Optional[StragglerReport] = None
        self.assignment: Optional[VolumeAssignment] = None
        self.selectors: Dict[int, SoftTrainingSelector] = {}
        self.trackers: Dict[int, NeuronRotationTracker] = {}
        self.contributions: Dict[int, Dict[str, np.ndarray]] = {}
        self.volumes: Dict[int, float] = {}
        self.join_decisions: List[JoinDecision] = []
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def setup(self, sim: FederatedSimulation) -> None:
        if self.report is not None and getattr(self, "_sim_id", None) == id(sim):
            # Re-running the same simulation (e.g. after a device joined via
            # :meth:`register_new_client`): keep the existing straggler
            # state instead of re-identifying from scratch.
            return
        self._sim_id = id(sim)
        model = sim.server.global_model
        devices = [client.device for client in sim.clients]
        samples = [max(1, int(round(client.num_samples
                                    * client.config.local_epochs
                                    * sim.workload_scale)))
                   for client in sim.clients]
        representative_samples = int(np.median(samples)) if samples else 1
        batch_size = sim.clients[0].config.batch_size

        identifier = StragglerIdentifier(
            model, sim.input_shape,
            samples_per_cycle=max(1, representative_samples),
            batch_size=batch_size,
            slowdown_threshold=self.config.slowdown_threshold)
        if self.config.identification == "resource":
            self.report = identifier.identify_by_resources(
                devices, top_k=self.config.straggler_top_k)
        else:
            self.report = identifier.identify_by_time(
                devices, top_k=self.config.straggler_top_k, rng=self._rng)

        policy = OptimizationTargetPolicy(
            model, sim.input_shape, batch_size=batch_size,
            min_volume=self.config.min_volume,
            pace_slack=self.config.pace_slack)
        if self.config.volume_policy == "resource":
            self.assignment = policy.assign_resource_adapted(
                self.report, devices,
                samples_per_cycle={index: samples[index]
                                   for index in range(len(sim.clients))})
        else:
            self.assignment = policy.assign_predefined_levels(self.report)

        self.selectors.clear()
        self.trackers.clear()
        self.contributions.clear()
        self.volumes = dict(self.assignment.volumes)
        for client_index in self.report.straggler_indices:
            fractions = self._layer_fractions(sim, client_index)
            self.selectors[client_index] = SoftTrainingSelector(
                model, fractions, top_share=self.config.top_share,
                rng=np.random.default_rng(
                    self.config.seed + 17 * (client_index + 1)))
            self.trackers[client_index] = NeuronRotationTracker(
                model, fractions, threshold_margin=self.config.rejoin_margin)

    def _layer_fractions(self, sim: FederatedSimulation,
                         client_index: int) -> Dict[str, float]:
        volume = self.volumes.get(client_index, 1.0)
        return {layer.name: volume
                for layer in sim.server.global_model.neuron_layers()}

    # ------------------------------------------------------------------ #
    # straggler bookkeeping
    # ------------------------------------------------------------------ #
    def straggler_indices(self) -> List[int]:
        """Client indices Helios treats as stragglers."""
        if self.report is None:
            return []
        return list(self.report.straggler_indices)

    def is_straggler(self, client_index: int) -> bool:
        """Whether a client is currently treated as a straggler."""
        return client_index in self.selectors

    # ------------------------------------------------------------------ #
    # per-cycle execution
    # ------------------------------------------------------------------ #
    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        if self.report is None:
            raise RuntimeError("setup() must run before execute_cycle()")
        global_weights = sim.server.get_global_weights()
        model = sim.server.global_model
        indices = sim.client_indices()

        # Phase 1 — draw every straggler's soft-training mask.  This stays
        # a serial in-order loop so the selector RNG streams are consumed
        # exactly as in the historical per-client loop.
        masks: Dict[int, ModelMask] = {}
        for client_index in indices:
            if self.is_straggler(client_index):
                forced = self.trackers[client_index].overdue_neurons()
                masks[client_index] = self.selectors[client_index].select(
                    contributions=self.contributions.get(client_index),
                    forced=forced)

        # Phase 2 — the whole cycle's trainings run as one backend batch.
        updates: List[ClientUpdate] = sim.train_clients(
            indices, weights=global_weights, masks=masks, base_cycle=cycle)

        # Phase 3 — per-client bookkeeping on the ordered results.
        durations: List[float] = []
        straggler_fractions: List[float] = []
        capable_durations: List[float] = []
        for client_index, update in zip(indices, updates):
            mask = masks.get(client_index)
            duration = sim.client_cycle_seconds(client_index, mask=mask)
            if mask is not None:
                self.trackers[client_index].record_cycle(mask)
                self.contributions[client_index] = neuron_contributions(
                    model, global_weights, update.weights)
                straggler_fractions.append(mask.active_fraction())
            else:
                capable_durations.append(duration)
            durations.append(duration)

        if self.config.aggregation == "heterogeneous":
            weights = heterogeneity_weights(
                updates,
                combine_with_sample_counts=self.config.combine_sample_counts)
        else:
            weights = None
        sim.server.aggregate(updates, client_weights=weights, partial=True)

        if cycle <= self.config.adapt_volume_cycles and capable_durations:
            self._adapt_volumes(sim, updates, durations, capable_durations)

        mean_loss = float(np.mean([update.train_loss for update in updates]))
        mean_straggler_fraction = (float(np.mean(straggler_fractions))
                                   if straggler_fractions else 1.0)
        return CycleOutcome(
            duration_s=float(max(durations)),
            participating_clients=len(updates),
            mean_train_loss=mean_loss,
            straggler_fraction_trained=mean_straggler_fraction,
            extra={"capable_pace_s": (float(max(capable_durations))
                                      if capable_durations else 0.0)},
        )

    # ------------------------------------------------------------------ #
    # pace adaptation (first few cycles)
    # ------------------------------------------------------------------ #
    def _adapt_volumes(self, sim: FederatedSimulation,
                       updates: List[ClientUpdate],
                       durations: List[float],
                       capable_durations: List[float]) -> None:
        pace = max(capable_durations) * self.config.pace_slack
        duration_by_client = {update.client_id: duration
                              for update, duration in zip(updates, durations)}
        for client_index in list(self.selectors):
            duration = duration_by_client.get(client_index)
            if duration is None:
                continue
            volume = self.volumes.get(client_index, 1.0)
            if duration > pace:
                volume *= (1.0 - self.config.volume_adapt_rate)
            elif duration < pace / (1.0 + self.config.volume_adapt_rate):
                volume *= (1.0 + self.config.volume_adapt_rate)
            volume = float(np.clip(volume, self.config.min_volume, 1.0))
            if volume != self.volumes.get(client_index):
                self.volumes[client_index] = volume
                fractions = self._layer_fractions(sim, client_index)
                self.selectors[client_index].set_volume(fractions)
                self.trackers[client_index].update_volume(fractions)

    # ------------------------------------------------------------------ #
    # scalability: devices joining mid-collaboration
    # ------------------------------------------------------------------ #
    def register_new_client(self, sim: FederatedSimulation,
                            client: FLClient) -> JoinDecision:
        """Admit a device that joins after setup (paper Sec. VI-C).

        The client is added to the simulation, profiled against the current
        collaboration pace and — if it would straggle — given a volume,
        selector and rotation tracker so it participates from the next
        cycle on.
        """
        if self.report is None:
            raise RuntimeError("setup() must run before clients can join")
        client_index = sim.add_client(client)
        manager = DynamicJoinManager(
            sim.server.global_model, sim.input_shape,
            batch_size=client.config.batch_size,
            slowdown_threshold=self.config.slowdown_threshold,
            min_volume=self.config.min_volume,
            pace_slack=self.config.pace_slack)
        decision = manager.evaluate_device(
            client.device,
            samples_per_cycle=max(1, int(round(
                client.num_samples * client.config.local_epochs
                * sim.workload_scale))),
            reference_seconds=self.report.reference_seconds)
        self.join_decisions.append(decision)
        self.report.cycle_seconds[client_index] = decision.expected_cycle_seconds
        self.report.ranking = sorted(
            self.report.cycle_seconds,
            key=lambda idx: -self.report.cycle_seconds[idx])
        if decision.is_straggler:
            self.report.straggler_indices.append(client_index)
            self.report.straggler_indices.sort()
            self.volumes[client_index] = decision.volume
            fractions = self._layer_fractions(sim, client_index)
            self.selectors[client_index] = SoftTrainingSelector(
                sim.server.global_model, fractions,
                top_share=self.config.top_share,
                rng=np.random.default_rng(
                    self.config.seed + 17 * (client_index + 1)))
            self.trackers[client_index] = NeuronRotationTracker(
                sim.server.global_model, fractions,
                threshold_margin=self.config.rejoin_margin)
        return decision
