"""Collaboration-scalability optimization (paper Sec. VI-C).

During a real deployment new devices join the collaboration while training
is in progress.  Helios profiles the newcomer (via either identification
path), compares it with the existing collaboration pace, and — if it would
straggle — assigns it an expected model volume before it participates in
its first cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..hardware.cost_model import TrainingCostModel
from ..hardware.device import DeviceProfile
from ..nn.model import Sequential

__all__ = ["JoinDecision", "DynamicJoinManager"]


@dataclass(frozen=True)
class JoinDecision:
    """Admission decision for one newly joining device."""

    device_name: str
    is_straggler: bool
    expected_cycle_seconds: float
    reference_seconds: float
    volume: float

    @property
    def slowdown_factor(self) -> float:
        """How much slower than the collaboration pace the device would be."""
        if self.reference_seconds <= 0:
            return 1.0
        return self.expected_cycle_seconds / self.reference_seconds


class DynamicJoinManager:
    """Decide how a newly joining device participates.

    Parameters
    ----------
    model:
        The (current) global training model.
    input_shape:
        Shape of one input sample.
    batch_size:
        Local mini-batch size used by the memory term.
    slowdown_threshold:
        A newcomer is a straggler when its expected cycle exceeds
        ``slowdown_threshold ×`` the collaboration pace.
    min_volume:
        Lower bound for any assigned model volume.
    pace_slack:
        The shrunk model must fit ``pace_slack ×`` the collaboration pace.
    """

    def __init__(self, model: Sequential, input_shape: Tuple[int, ...],
                 batch_size: int = 32, slowdown_threshold: float = 1.5,
                 min_volume: float = 0.1, pace_slack: float = 1.1) -> None:
        if slowdown_threshold <= 1.0:
            raise ValueError("slowdown_threshold must be greater than 1")
        if not 0.0 < min_volume <= 1.0:
            raise ValueError("min_volume must be in (0, 1]")
        self.model = model
        self.input_shape = tuple(input_shape)
        self.batch_size = batch_size
        self.slowdown_threshold = slowdown_threshold
        self.min_volume = min_volume
        self.pace_slack = pace_slack

    def evaluate_device(self, device: DeviceProfile,
                        samples_per_cycle: int,
                        reference_seconds: float,
                        measured_cycle_seconds: Optional[float] = None
                        ) -> JoinDecision:
        """Profile a joining device and decide its volume.

        Parameters
        ----------
        device:
            Resource profile of the newcomer (white-box path).
        samples_per_cycle:
            Samples it will process per local cycle.
        reference_seconds:
            Current collaboration pace (fastest capable device's cycle).
        measured_cycle_seconds:
            If the deployment only has black-box access, a measured cycle
            time can be supplied and is used instead of the cost-model
            estimate for the straggler decision.
        """
        if reference_seconds <= 0:
            raise ValueError("reference_seconds must be positive")
        if samples_per_cycle <= 0:
            raise ValueError("samples_per_cycle must be positive")
        cost_model = TrainingCostModel(self.model, self.input_shape,
                                       samples_per_cycle=samples_per_cycle,
                                       batch_size=self.batch_size)
        expected = (measured_cycle_seconds
                    if measured_cycle_seconds is not None
                    else cost_model.estimate(device).total_seconds)
        is_straggler = expected > self.slowdown_threshold * reference_seconds
        volume = 1.0
        if is_straggler:
            volume = cost_model.volume_for_budget(
                device, self.pace_slack * reference_seconds,
                min_fraction=self.min_volume)
            volume = float(np.clip(volume, self.min_volume, 1.0))
        return JoinDecision(
            device_name=device.name,
            is_straggler=is_straggler,
            expected_cycle_seconds=expected,
            reference_seconds=reference_seconds,
            volume=volume,
        )
