"""Heterogeneity-aware model aggregation (paper Sec. VI-B, Eq. 10).

When stragglers upload partial models, cycles mix updates with very
different structural completeness.  Helios weights every device's
contribution by the completeness of the model it actually trained:

    α_n = r_n / Σ_k r_k

where ``r_n`` is the fraction of neurons device ``n`` selected this cycle.
A more complete update therefore moves the global model more.  The weights
can optionally be combined with the classical FedAvg sample-count weights.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..fl.aggregation import normalize_weights, sample_count_weights
from ..fl.client import ClientUpdate

__all__ = ["heterogeneity_ratios", "heterogeneity_weights"]


def heterogeneity_ratios(updates: Sequence[ClientUpdate]) -> List[float]:
    """Per-update trained-neuron ratio ``r_n`` (1.0 for full-model updates)."""
    return [update.neuron_fraction for update in updates]


def heterogeneity_weights(updates: Sequence[ClientUpdate],
                          combine_with_sample_counts: bool = True,
                          ratio_exponent: float = 1.0
                          ) -> np.ndarray:
    """Aggregation weights ``α_n`` for one cycle's updates.

    Parameters
    ----------
    updates:
        Client updates of the current cycle.
    combine_with_sample_counts:
        Multiply ``α_n`` by the FedAvg sample-count weight so devices with
        larger local datasets keep their proportional influence (the paper
        formulates Eq. 10 on top of the FedAvg objective).
    ratio_exponent:
        Exponent applied to ``r_n`` before normalization; 1.0 reproduces
        the paper, values > 1 emphasize complete models more aggressively
        (exposed for the ablation benchmark).

    Returns
    -------
    np.ndarray
        Normalized weights summing to 1, aligned with ``updates``.
    """
    if not updates:
        raise ValueError("need at least one update")
    if ratio_exponent < 0:
        raise ValueError("ratio_exponent must be non-negative")
    ratios = np.asarray(heterogeneity_ratios(updates), dtype=np.float64)
    if np.any(ratios <= 0):
        raise ValueError("neuron fractions must be positive")
    alpha = ratios ** ratio_exponent
    if combine_with_sample_counts:
        alpha = alpha * sample_count_weights(updates)
    return normalize_weights(alpha)
