"""Neuron-rotation regulation (paper Sec. VI-A).

Soft-training convergence requires that no neuron stays inactive
indefinitely (its selection probability ``p_i`` must not be 0).  The global
device therefore tracks, for every straggler, how many consecutive cycles
each neuron has been skipped (``C_s``); once ``C_s`` exceeds the threshold

    1 + m / Σ P_i n_i

(the ratio of total neurons to per-cycle selected neurons, plus one), the
neuron is forced back into the next training cycle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from ..nn.masking import ModelMask
from ..nn.model import Sequential

__all__ = ["NeuronRotationTracker"]


class NeuronRotationTracker:
    """Tracks skipped-cycle counts for one straggler's neurons."""

    def __init__(self, model: Sequential,
                 volume_fractions: Mapping[str, float],
                 threshold_margin: float = 1.0) -> None:
        """
        Parameters
        ----------
        model:
            Reference model for layer names and neuron counts.
        volume_fractions:
            The straggler's expected model volume per layer (``P_i``); used
            to compute the skip threshold.
        threshold_margin:
            The additive constant of the threshold (the paper uses 1).
        """
        if threshold_margin < 0:
            raise ValueError("threshold_margin must be non-negative")
        self.layer_neurons: Dict[str, int] = {
            layer.name: layer.num_neurons for layer in model.neuron_layers()}
        self.skip_counts: Dict[str, np.ndarray] = {
            name: np.zeros(count, dtype=np.int64)
            for name, count in self.layer_neurons.items()}
        self.threshold_margin = threshold_margin
        self._threshold = self._compute_threshold(volume_fractions)

    # ------------------------------------------------------------------ #
    def _compute_threshold(self,
                           volume_fractions: Mapping[str, float]) -> float:
        total_neurons = sum(self.layer_neurons.values())
        selected = 0.0
        for name, count in self.layer_neurons.items():
            fraction = float(volume_fractions.get(name, 1.0))
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"volume fraction for {name!r} must be in (0, 1]")
            selected += fraction * count
        if selected <= 0:
            raise ValueError("total selected neurons must be positive")
        return self.threshold_margin + total_neurons / selected

    @property
    def threshold(self) -> float:
        """Maximum allowed consecutive skipped cycles before forced rejoin."""
        return self._threshold

    def update_volume(self, volume_fractions: Mapping[str, float]) -> None:
        """Recompute the threshold after a pace-adaptation volume change."""
        self._threshold = self._compute_threshold(volume_fractions)

    # ------------------------------------------------------------------ #
    def record_cycle(self, mask: ModelMask) -> None:
        """Update skip counters after a training cycle executed ``mask``."""
        for name, counts in self.skip_counts.items():
            if name not in mask:
                raise KeyError(f"mask is missing layer {name!r}")
            selected = mask[name]
            if selected.shape != counts.shape:
                raise ValueError(f"mask size mismatch for layer {name!r}")
            counts[selected] = 0
            counts[~selected] += 1

    def overdue_neurons(self) -> Dict[str, List[int]]:
        """Neurons whose skip count exceeds the threshold, per layer."""
        overdue: Dict[str, List[int]] = {}
        for name, counts in self.skip_counts.items():
            indices = np.flatnonzero(counts >= self._threshold)
            if indices.size:
                overdue[name] = indices.tolist()
        return overdue

    def max_skip_count(self) -> int:
        """Largest current skip count across all neurons (diagnostics)."""
        return int(max((counts.max() if counts.size else 0)
                       for counts in self.skip_counts.values()))

    def reset(self) -> None:
        """Clear all counters (e.g. when a straggler is re-assigned)."""
        for counts in self.skip_counts.values():
            counts[:] = 0
