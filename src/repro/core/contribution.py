"""Neuron collaboration-contribution metric (paper Eq. 1).

The contribution of neuron ``j`` in layer ``i`` after training cycle
``S_k`` is the magnitude of its weight-parameter change during that cycle:

    U_ij(S_k) = θ_ij(S_k) − θ_ij(S_k−1)

Neurons with larger changes are assumed (following Alistarh et al., the
paper's ref. [18]) to contribute more to global-model convergence, and are
therefore kept in the next soft-training cycle.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..nn.model import Sequential

__all__ = ["layer_parameter_index", "neuron_contributions",
           "contributions_from_gradients"]


def layer_parameter_index(model: Sequential
                          ) -> Dict[str, List[Tuple[str, int]]]:
    """Map each maskable layer to its ``(parameter_name, neuron_axis)`` list."""
    named = model.named_parameters()
    id_to_name = {id(param): name for name, param in named.items()}
    index: Dict[str, List[Tuple[str, int]]] = {}
    for layer in model.neuron_layers():
        entries: List[Tuple[str, int]] = []
        for param in layer.parameters():
            name = id_to_name[id(param)]
            axis = param.neuron_axis if param.neuron_axis is not None else 0
            entries.append((name, axis))
        index[layer.name] = entries
    return index


def _per_neuron_change(old: np.ndarray, new: np.ndarray,
                       axis: int) -> np.ndarray:
    """Sum of absolute parameter changes per neuron slice."""
    delta = np.abs(np.asarray(new, dtype=np.float64)
                   - np.asarray(old, dtype=np.float64))
    moved = np.moveaxis(delta, axis, 0)
    return moved.reshape(moved.shape[0], -1).sum(axis=1)


def neuron_contributions(model: Sequential,
                         old_weights: Mapping[str, np.ndarray],
                         new_weights: Mapping[str, np.ndarray]
                         ) -> Dict[str, np.ndarray]:
    """Per-layer neuron contribution ``U_ij`` between two weight snapshots.

    Parameters
    ----------
    model:
        A model instance describing the layer/parameter structure (its
        current weights are not used).
    old_weights / new_weights:
        Weight dictionaries before and after the training cycle, as
        produced by :meth:`Sequential.get_weights`.

    Returns
    -------
    dict
        ``layer_name -> array of length num_neurons`` with non-negative
        contribution scores.
    """
    index = layer_parameter_index(model)
    contributions: Dict[str, np.ndarray] = {}
    for layer_name, entries in index.items():
        totals: np.ndarray = None  # type: ignore[assignment]
        for param_name, axis in entries:
            if param_name not in old_weights or param_name not in new_weights:
                raise KeyError(
                    f"weight snapshots missing parameter {param_name!r}")
            change = _per_neuron_change(old_weights[param_name],
                                        new_weights[param_name], axis)
            totals = change if totals is None else totals + change
        contributions[layer_name] = totals
    return contributions


def contributions_from_gradients(model: Sequential,
                                 gradients: Mapping[str, np.ndarray]
                                 ) -> Dict[str, np.ndarray]:
    """Contribution scores from a gradient snapshot instead of a delta.

    Useful for analysis (Proposition 2 reasons about gradients); the
    magnitude of the gradient plays the same role as the one-cycle weight
    change under plain SGD.
    """
    index = layer_parameter_index(model)
    contributions: Dict[str, np.ndarray] = {}
    for layer_name, entries in index.items():
        totals: np.ndarray = None  # type: ignore[assignment]
        for param_name, axis in entries:
            if param_name not in gradients:
                raise KeyError(f"gradients missing parameter {param_name!r}")
            grad = np.abs(np.asarray(gradients[param_name], dtype=np.float64))
            moved = np.moveaxis(grad, axis, 0)
            change = moved.reshape(moved.shape[0], -1).sum(axis=1)
            totals = change if totals is None else totals + change
        contributions[layer_name] = totals
    return contributions
