"""Optimization-target determination (paper Sec. IV-C).

After straggler identification, every straggler is assigned an *expected
model volume*: the fraction of neurons per layer it is allowed to train each
cycle, chosen so its shrunk-model cycle time matches the collaboration pace
set by the capable devices.  Two policies are provided, mirroring the paper:

* **predefined levels** — pick from a small ladder of volumes by the
  device's rank in the time index ``T`` and refine during the first cycles;
* **resource-adapted** — search the largest volume whose predicted cycle
  time fits the capable devices' pace, using the analytical cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.cost_model import TrainingCostModel
from ..hardware.device import DeviceProfile
from ..nn.model import Sequential
from .straggler import StragglerReport

__all__ = ["VolumeAssignment", "OptimizationTargetPolicy"]

DEFAULT_VOLUME_LEVELS: Tuple[float, ...] = (0.75, 0.5, 0.35, 0.25)


@dataclass
class VolumeAssignment:
    """Expected model volumes for every straggler.

    ``volumes`` maps client index to a uniform per-layer neuron fraction in
    ``(0, 1]``.  ``target_seconds`` is the collaboration pace the volumes
    were sized against.
    """

    volumes: Dict[int, float]
    target_seconds: float

    def volume_for(self, client_index: int) -> float:
        """Volume of a client (1.0 for capable devices)."""
        return self.volumes.get(client_index, 1.0)

    def as_layer_fractions(self, model: Sequential,
                           client_index: int) -> Dict[str, float]:
        """Expand a uniform volume into per-layer fractions for ``model``."""
        volume = self.volume_for(client_index)
        return {layer.name: volume for layer in model.neuron_layers()}


class OptimizationTargetPolicy:
    """Compute expected model volumes for identified stragglers.

    Parameters
    ----------
    model:
        The training model (for cost estimation and layer enumeration).
    input_shape:
        Shape of one input sample.
    batch_size:
        Local mini-batch size.
    min_volume:
        Lower bound on any assigned volume; prevents degenerate models.
    pace_slack:
        Multiplicative slack on the collaboration pace: a straggler's
        shrunk cycle must fit ``pace_slack × reference_seconds``.
    volume_levels:
        The predefined volume ladder for the level-based policy (largest
        first).
    """

    def __init__(self, model: Sequential, input_shape: Tuple[int, ...],
                 batch_size: int = 32, min_volume: float = 0.1,
                 pace_slack: float = 1.1,
                 volume_levels: Sequence[float] = DEFAULT_VOLUME_LEVELS) -> None:
        if not 0.0 < min_volume <= 1.0:
            raise ValueError("min_volume must be in (0, 1]")
        if pace_slack <= 0:
            raise ValueError("pace_slack must be positive")
        if not volume_levels:
            raise ValueError("volume_levels must not be empty")
        for level in volume_levels:
            if not 0.0 < level <= 1.0:
                raise ValueError("volume levels must be in (0, 1]")
        self.model = model
        self.input_shape = tuple(input_shape)
        self.batch_size = batch_size
        self.min_volume = min_volume
        self.pace_slack = pace_slack
        self.volume_levels = tuple(sorted(volume_levels, reverse=True))

    # ------------------------------------------------------------------ #
    def assign_predefined_levels(self, report: StragglerReport
                                 ) -> VolumeAssignment:
        """Assign volumes from the predefined ladder by straggler rank.

        The slowest straggler receives the smallest level; faster
        stragglers receive progressively larger levels.  The paper refines
        these during the first few training cycles — the Helios strategy
        does that through its pace-adaptation step.
        """
        ordered = [index for index in report.ranking
                   if index in report.straggler_indices]
        volumes: Dict[int, float] = {}
        levels = list(self.volume_levels)
        for rank, client_index in enumerate(ordered):
            # Rank 0 is the slowest straggler -> smallest volume.
            level_index = min(len(levels) - 1, len(ordered) - 1 - rank)
            volumes[client_index] = max(self.min_volume, levels[level_index])
        target = self.pace_slack * report.reference_seconds
        return VolumeAssignment(volumes=volumes, target_seconds=target)

    # ------------------------------------------------------------------ #
    def assign_resource_adapted(self, report: StragglerReport,
                                devices: Sequence[DeviceProfile],
                                samples_per_cycle: Dict[int, int],
                                target_seconds: Optional[float] = None
                                ) -> VolumeAssignment:
        """Size each straggler's volume so its cycle fits the pace.

        Parameters
        ----------
        report:
            The straggler-identification report.
        devices:
            Device profiles indexed by client index.
        samples_per_cycle:
            Per-client samples processed in one local cycle.
        target_seconds:
            Collaboration pace; defaults to ``pace_slack ×`` the fastest
            device's cycle time from the report.
        """
        if target_seconds is None:
            target_seconds = self.pace_slack * report.reference_seconds
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        volumes: Dict[int, float] = {}
        for client_index in report.straggler_indices:
            device = devices[client_index]
            cost_model = TrainingCostModel(
                self.model, self.input_shape,
                samples_per_cycle=samples_per_cycle.get(client_index, 1),
                batch_size=self.batch_size)
            volume = cost_model.volume_for_budget(
                device, target_seconds, min_fraction=self.min_volume)
            volumes[client_index] = max(self.min_volume, min(1.0, volume))
        return VolumeAssignment(volumes=volumes,
                                target_seconds=target_seconds)
