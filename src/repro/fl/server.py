"""Federated-learning aggregation server."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..nn.model import Sequential
from .aggregation import (ModelStructure, PartialAggregate, aggregate_full,
                          aggregate_partial, finalize_partials)
from .client import ClientUpdate

__all__ = ["FLServer"]


class FLServer:
    """Holds the global model and applies aggregation rules.

    The server is strategy-agnostic: baselines and Helios decide *which*
    updates to aggregate and with *which* per-device weights; the server
    provides the mechanics (weighted full or neuron-granular partial
    aggregation) and global-model bookkeeping.
    """

    def __init__(self, model_factory: Callable[[], Sequential],
                 test_dataset: Optional[Dataset] = None) -> None:
        self.model_factory = model_factory
        self.global_model = model_factory()
        self.structure = ModelStructure.from_model(self.global_model)
        self.test_dataset = test_dataset
        self.current_cycle = 0

    # ------------------------------------------------------------------ #
    # global-model access
    # ------------------------------------------------------------------ #
    def get_global_weights(self) -> Dict[str, np.ndarray]:
        """Copy of the current global model weights."""
        return self.global_model.get_weights()

    def set_global_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Replace the global model weights."""
        self.global_model.set_weights(weights)

    def num_parameters(self) -> int:
        """Size of the global model (parameter count)."""
        return self.global_model.num_parameters()

    # ------------------------------------------------------------------ #
    # aggregation entry points
    # ------------------------------------------------------------------ #
    def aggregate(self, updates: Sequence[ClientUpdate],
                  client_weights: Optional[Sequence[float]] = None,
                  partial: bool = True) -> Dict[str, np.ndarray]:
        """Aggregate ``updates`` into a new global model and install it.

        Parameters
        ----------
        updates:
            The client updates collected this cycle.
        client_weights:
            Optional per-update weights (default: sample counts).
        partial:
            Use neuron-granular aggregation (required whenever any update
            carries a mask); ``False`` forces plain FedAvg.
        """
        if not updates:
            raise ValueError("cannot aggregate an empty update set")
        has_masks = any(update.mask is not None for update in updates)
        if partial and has_masks:
            new_weights = aggregate_partial(
                self.get_global_weights(), updates, self.structure,
                client_weights=client_weights)
        else:
            new_weights = aggregate_full(updates,
                                         client_weights=client_weights)
        self.set_global_weights(new_weights)
        self.current_cycle += 1
        return new_weights

    def install_partials(self, partials: Sequence[PartialAggregate]
                         ) -> Dict[str, np.ndarray]:
        """Combine shard-side partial aggregates into a new global model.

        The parent half of hierarchical aggregation: each shard folds its
        residents' updates locally (:func:`~repro.fl.aggregation.fold_updates`)
        and ships one :class:`~repro.fl.aggregation.PartialAggregate`;
        combining them here is bit-identical to :meth:`aggregate` over the
        same updates because the fold's per-level sums are exact and hence
        partition-independent.  Neurons covered by zero updates keep
        their current global value.
        """
        if not partials:
            raise ValueError("cannot combine an empty set of partial "
                             "aggregates")
        new_weights = finalize_partials(self.get_global_weights(), partials,
                                        structure=self.structure)
        self.set_global_weights(new_weights)
        self.current_cycle += 1
        return new_weights

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, dataset: Optional[Dataset] = None,
                 batch_size: int = 256) -> float:
        """Global-model accuracy on ``dataset`` (defaults to the test set)."""
        target = dataset if dataset is not None else self.test_dataset
        if target is None:
            raise ValueError("no evaluation dataset available")
        self.global_model.clear_neuron_masks()
        return self.global_model.evaluate_accuracy(
            target.images, target.labels, batch_size=batch_size)
