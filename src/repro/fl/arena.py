"""Shared-memory weight arenas for the localhost persistent backend.

The pipe-based :class:`~repro.fl.executor.PersistentProcessBackend`
ships every cycle's weight tables through OS pipes — one full copy of
the global snapshot *per worker*, serialized through the kernel.  This
module replaces those bulk bytes with POSIX shared memory:

* the parent **stages** each frame's large out-of-band segments into a
  per-cycle *generation* (one :class:`multiprocessing.shared_memory.
  SharedMemory` block, named uniquely per backend instance), deduping
  identical source buffers across worker slots, so the snapshot is
  copied **once** no matter how many workers there are;
* the pipe frames then carry only tiny ``(generation, offset, length)``
  descriptors (see ``codec.py``'s arena segment flag) — cold dispatch
  drops from O(weights x workers) pipe bytes to O(1) publish +
  O(descriptors);
* workers **attach** each generation on first reference and read the
  segments as zero-copy writable views into the mapping.

Generation lifecycle (double buffering)
---------------------------------------
``stage_segment`` lazily opens a staging generation; ``publish`` maps
it, copies the staged bytes in, and makes it live.  Published
generations are retired (closed + unlinked) by ``collect``, which keeps
the *most recent* generation alive — a dispatch retry inside the same
exchange may publish a successor generation while frames referencing
the previous one are still owed to workers, so only older generations
are ever unlinked.  Unlinking while workers still hold attached
mappings is safe on Linux: the name disappears but every existing
mapping stays valid until its holder closes it.

Resource-tracker semantics
--------------------------
Both ``SharedMemory(create=True)`` and plain attaches register the
segment name with :mod:`multiprocessing.resource_tracker`.  The workers
are forked children, so they share the parent's tracker process: the
parent's ``unlink`` is the single point that unregisters a name, and a
worker-side attach adds no separate registration to clean up.  Workers
therefore never call ``resource_tracker.unregister`` — keeping the
registration alive also means the tracker still unlinks the segments if
the *parent* dies without running teardown.  For normal interpreter
exits a module-level ``atexit`` hook closes every live writer, so no
"leaked shared_memory objects" warnings are emitted and ``/dev/shm``
ends empty.
"""

from __future__ import annotations

import atexit
import os
import secrets
import time
import weakref
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None

__all__ = ["WEIGHT_ARENA_MODES", "ArenaError", "WeightArenaWriter",
           "ArenaReader"]

#: Valid ``weight_arena`` settings of the persistent backend.
WEIGHT_ARENA_MODES = ("off", "shm")

#: Segment offsets are aligned so decoded ndarray views land on
#: cache-line boundaries (numpy is happiest with aligned buffers).
_ALIGNMENT = 64


class ArenaError(RuntimeError):
    """A shared-memory arena operation failed (missing generation,
    descriptor out of bounds, or platform without shm support)."""


def _require_shm():
    if _shared_memory is None:  # pragma: no cover - exotic builds
        raise ArenaError("multiprocessing.shared_memory is unavailable "
                         "on this platform; use weight_arena='off'")
    return _shared_memory


class _StagingGeneration:
    """Bytes promised to the next published generation.

    Holds *references* to the source buffers (no copies yet) plus a
    dedup table keyed by the id of each buffer's owner, so the same
    snapshot ndarray referenced by every worker slot's frame is staged
    exactly once.  The strong references also pin those ids for the
    staging window, which is what makes the id-based dedup sound.
    """

    __slots__ = ("name", "size", "sources", "dedup")

    def __init__(self, name: str) -> None:
        self.name = name
        self.size = 0
        self.sources: List[Tuple[int, memoryview]] = []
        self.dedup: Dict[int, Tuple[str, int, int]] = {}


class WeightArenaWriter:
    """Parent-side arena: stage segments, publish generations, retire.

    One writer per backend instance; generation names embed the pid, a
    random session token and a counter, so concurrent backends (or a
    crashed predecessor's leftovers) can never collide.
    """

    def __init__(self) -> None:
        _require_shm()
        self._session = secrets.token_hex(4)  # lint: allow[determinism] - shm namespace token, not math
        self._counter = 0
        self._staging: Optional[_StagingGeneration] = None
        self._published: List["_shared_memory.SharedMemory"] = []
        #: Wall-clock seconds the most recent :meth:`publish` spent
        #: creating + filling its generation (benchmark instrumentation).
        self.last_publish_seconds = 0.0
        #: Bytes the most recent :meth:`publish` copied into shared
        #: memory (0 when nothing was staged).
        self.last_publish_bytes = 0
        _LIVE_WRITERS.add(self)

    # ------------------------------------------------------------------ #
    @property
    def generation_count(self) -> int:
        """Number of published generations not yet retired."""
        return len(self._published)

    def stage_segment(self, view: memoryview) -> Tuple[str, int, int]:
        """Reserve arena space for ``view``; returns (name, offset, len).

        No bytes move until :meth:`publish`.  Two views over the same
        underlying object (the codec hands us ``PickleBuffer.raw()``
        views, one per frame referencing a shared snapshot array) map to
        one reservation.
        """
        view = memoryview(view)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        owner = getattr(view, "obj", None)
        key = id(owner) if owner is not None else id(view)
        staging = self._staging
        if staging is None:
            staging = _StagingGeneration(
                f"repro_arena_{os.getpid()}_{self._session}_{self._counter}")
            self._counter += 1
            self._staging = staging
        cached = staging.dedup.get(key)
        if cached is not None:
            return cached
        offset = -staging.size % _ALIGNMENT + staging.size
        length = len(view)
        staging.size = offset + length
        staging.sources.append((offset, view))
        descriptor = (staging.name, offset, length)
        staging.dedup[key] = descriptor
        return descriptor

    def publish(self) -> Optional[str]:
        """Materialize the staging generation; returns its name.

        Creates the shared-memory block, copies every staged source in,
        and drops the source references.  A no-op returning ``None``
        when nothing was staged (e.g. a warm delta cycle where every
        parameter was skipped).
        """
        staging, self._staging = self._staging, None
        if staging is None:
            return None
        shm_module = _require_shm()
        started = time.perf_counter()  # lint: allow[determinism] - metric only
        try:
            shm = shm_module.SharedMemory(create=True, name=staging.name,
                                          size=max(staging.size, 1))
        except OSError as exc:
            raise ArenaError(
                f"cannot create shared-memory generation "
                f"{staging.name!r} ({staging.size} bytes): {exc}") from exc
        buffer = shm.buf
        for offset, view in staging.sources:
            buffer[offset:offset + len(view)] = view
        self._published.append(shm)
        self.last_publish_seconds = time.perf_counter() - started  # lint: allow[determinism] - metric only
        self.last_publish_bytes = staging.size
        return staging.name

    def abandon(self) -> None:
        """Discard the staging generation without publishing it."""
        self._staging = None

    def collect(self) -> None:
        """Retire all published generations but the most recent.

        Also abandons any stale staging left behind by an aborted
        dispatch attempt.  Call at the *start* of an exchange: the
        previous exchange's frames are fully answered by then, so only
        the latest generation can still be referenced by undispatched
        retry frames.
        """
        self.abandon()
        while len(self._published) > 1:
            _unlink(self._published.pop(0))

    def close(self) -> None:
        """Retire everything; the writer stays reusable afterwards."""
        self.abandon()
        while self._published:
            _unlink(self._published.pop())


def _unlink(shm: "_shared_memory.SharedMemory") -> None:
    try:
        shm.close()
    except Exception:  # lint: allow[swallow] - best-effort teardown
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # lint: allow[swallow] - best-effort teardown
        pass


#: Writers with possibly-live generations; swept at interpreter exit so
#: an owner that never reached ``close()`` still leaves /dev/shm empty.
_LIVE_WRITERS: "weakref.WeakSet[WeightArenaWriter]" = weakref.WeakSet()


@atexit.register
def _close_live_writers() -> None:  # pragma: no cover - interpreter exit
    for writer in list(_LIVE_WRITERS):
        try:
            writer.close()
        except Exception:  # lint: allow[swallow] - atexit sweep
            pass


class ArenaReader:
    """Worker-side arena: attach generations, resolve descriptors.

    Keeps at most one *active* generation mapped; attaching a new one
    retires the previous mapping.  A retired mapping whose buffer is
    still referenced (the codec's delta-decoder base can hold views
    into it across cycles) raises ``BufferError`` on ``close`` — those
    are parked and re-tried on the next attach, so mappings are released
    as soon as their last view dies instead of accumulating.
    """

    def __init__(self) -> None:
        self._attached: Dict[str, "_shared_memory.SharedMemory"] = {}
        self._deferred: List["_shared_memory.SharedMemory"] = []

    def resolve_segment(self, name: str, offset: int,
                        length: int) -> memoryview:
        """A writable zero-copy view of one staged segment."""
        shm = self._attached.get(name)
        if shm is None:
            shm_module = _require_shm()
            self._sweep_deferred()
            for other in list(self._attached):
                self._retire(self._attached.pop(other))
            try:
                shm = shm_module.SharedMemory(name=name)
            except FileNotFoundError:
                raise ArenaError(
                    f"arena generation {name!r} no longer exists (the "
                    f"parent retired it before this frame arrived)"
                    ) from None
            # No resource_tracker.unregister here: the forked worker
            # shares the parent's tracker, so the parent's unlink is the
            # single unregistration point — see the module docstring.
            self._attached[name] = shm
        if offset < 0 or length < 0 or offset + length > shm.size:
            raise ArenaError(
                f"arena descriptor [{offset}:{offset + length}] exceeds "
                f"generation {name!r} of {shm.size} bytes")
        return memoryview(shm.buf)[offset:offset + length]

    def _sweep_deferred(self) -> None:
        still_held = []
        for shm in self._deferred:
            try:
                shm.close()
            except BufferError:
                still_held.append(shm)
            except Exception:  # lint: allow[swallow] - best-effort teardown
                pass
        self._deferred = still_held

    def _retire(self, shm: "_shared_memory.SharedMemory") -> None:
        try:
            shm.close()
        except BufferError:
            self._deferred.append(shm)
        except Exception:  # lint: allow[swallow] - best-effort teardown
            pass

    def close(self) -> None:
        """Release every mapping (exported views permitting)."""
        for name in list(self._attached):
            self._retire(self._attached.pop(name))
        self._sweep_deferred()
