"""Federated-learning client.

A client owns a local dataset, a device profile and a local replica of the
training model.  Its job is purely numerical: load global weights, train the
(optionally masked) model on the local data for a number of epochs and
return the resulting weights.  Time accounting is the scheduler's job — the
simulator derives per-cycle durations from the hardware cost model so that
a weak device training a shrunk model is *numerically* identical to this
code but *temporally* cheaper.

Spec / state split
------------------
A client is two things with very different lifetimes:

* :class:`ClientSpec` — the immutable, picklable *description*: dataset
  reference, device profile, hyper-parameters, model/loss factories and
  seed.  A spec fully determines a fresh client; execution backends ship
  specs to worker processes exactly once and keep the built client
  resident there.
* runtime state — the model replica and the RNG, which advance as the
  client trains.  :meth:`FLClient.get_state` / :meth:`FLClient.set_state`
  capture and restore it, and the RNG digest is what travels between the
  parent process and persistent workers every cycle (a few hundred bytes,
  independent of dataset or model size).

The split is also what makes shard failover recoverable: the parent-side
client always holds the last *committed* runtime state (backends mirror
post-training weights/RNG only after a batch fully succeeds), so spec +
current RNG digest form a per-client recovery snapshot from which a
replacement worker rebuilds a bit-identical resident replica after a
shard dies mid-run (see ``on_failure="rebalance"`` in
:mod:`repro.fl.executor`).

``FLClient`` keeps its historical constructor; it simply records the
arguments as a spec.  Mutating an identity attribute (``client.device =
new_profile``) replaces the spec, so a re-shipped spec always reflects the
current identity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Type

import numpy as np

from ..data.dataset import Dataset
from ..hardware.device import DeviceProfile
from ..nn.losses import Loss, SoftmaxCrossEntropy
from ..nn.masking import ModelMask
from ..nn.model import Sequential
from ..nn.optimizers import SGD, Optimizer

__all__ = ["ClientConfig", "ClientSpec", "ClientState", "ClientUpdate",
           "FLClient", "TrainingSummary"]


@dataclass(frozen=True)
class ClientConfig:
    """Local-training hyper-parameters shared by all strategies."""

    batch_size: int = 32
    local_epochs: int = 1
    learning_rate: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass(frozen=True, eq=False)
class ClientSpec:
    """Everything needed to (re)build one client, and nothing that moves.

    Specs are what execution backends pickle: the model and loss factories
    must therefore be module-level callables (or picklable callable
    objects such as ``SeededModelFactory``), never closures.  Building
    twice from the same spec yields bit-identical clients.
    """

    client_id: int
    dataset: Dataset
    device: DeviceProfile
    model_factory: Callable[[], Sequential]
    config: ClientConfig = field(default_factory=ClientConfig)
    loss_factory: Callable[[], Loss] = SoftmaxCrossEntropy
    seed: int = 0
    #: Concrete client class to build (``None`` = :class:`FLClient`);
    #: subclasses record themselves here so a spec round-trips the type.
    client_type: Optional[Type["FLClient"]] = None

    def __post_init__(self) -> None:
        if len(self.dataset) == 0:
            raise ValueError("client dataset must not be empty")

    def replace(self, **changes) -> "ClientSpec":
        """A copy of this spec with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def initial_rng(self) -> np.random.Generator:
        """The RNG a freshly built client starts from."""
        return np.random.default_rng(self.seed + 1000 * self.client_id)

    def build(self, rng_state: Optional[dict] = None) -> "FLClient":
        """Construct a client from this spec.

        ``rng_state`` (a NumPy bit-generator state digest) optionally
        fast-forwards the fresh client's RNG — this is how a worker-resident
        replica resumes exactly where the parent-side client stopped.
        """
        cls = self.client_type or FLClient
        client = cls(client_id=self.client_id, dataset=self.dataset,
                     device=self.device, model_factory=self.model_factory,
                     config=self.config, loss_factory=self.loss_factory,
                     seed=self.seed)
        if rng_state is not None:
            client.rng.bit_generator.state = rng_state
        return client


@dataclass
class ClientState:
    """Compact digest of a client's mutable runtime state.

    ``weights`` is the model replica's parameters; ``rng_state`` is the
    NumPy bit-generator state.  Together with the spec this reconstructs a
    client exactly — it is the unit :meth:`FederatedSimulation.set_backend`
    relies on when migrating a fleet between execution backends.
    """

    weights: Dict[str, np.ndarray]
    rng_state: dict


@dataclass
class ClientUpdate:
    """What a client sends back to the server after a local training cycle."""

    client_id: int
    client_name: str
    weights: Dict[str, np.ndarray]
    num_samples: int
    train_loss: float
    mask: Optional[ModelMask] = None
    local_epochs: int = 1
    base_cycle: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def neuron_fraction(self) -> float:
        """Fraction of neurons this update actually trained."""
        return self.mask.active_fraction() if self.mask is not None else 1.0


@dataclass(frozen=True)
class TrainingSummary:
    """The weight-free residue of one training: what strategies consume.

    Under hierarchical aggregation a client's trained weights are folded
    into the shard-local partial aggregate and never travel upstream;
    this is the O(1)-per-client remainder
    (:meth:`~repro.fl.simulation.FederatedSimulation.train_and_aggregate`
    returns one per trained client, whatever the aggregation topology).
    """

    client_id: int
    client_name: str
    num_samples: int
    train_loss: float


class FLClient:
    """One edge device participating in the collaboration.

    Identity lives in :attr:`spec`; runtime state is the model replica and
    the RNG.  Subclasses that override behavior (not construction) are
    spec-compatible automatically: the spec records the concrete type and
    :meth:`ClientSpec.build` re-instantiates it in worker processes.
    """

    def __init__(self, client_id: int, dataset: Dataset,
                 device: DeviceProfile,
                 model_factory: Callable[[], Sequential],
                 config: Optional[ClientConfig] = None,
                 loss_factory: Callable[[], Loss] = SoftmaxCrossEntropy,
                 seed: int = 0) -> None:
        self._spec_version = 0
        self.spec = ClientSpec(
            client_id=client_id, dataset=dataset, device=device,
            model_factory=model_factory, config=config or ClientConfig(),
            loss_factory=loss_factory, seed=seed,
            client_type=type(self))
        self.model = model_factory()
        self.rng = self.spec.initial_rng()

    @classmethod
    def from_spec(cls, spec: ClientSpec,
                  rng_state: Optional[dict] = None) -> "FLClient":
        """Build a client from a spec (honoring ``spec.client_type``)."""
        return spec.build(rng_state=rng_state)

    # ------------------------------------------------------------------ #
    # identity (delegated to the spec)
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> ClientSpec:
        """The client's immutable identity description."""
        return self._spec

    @spec.setter
    def spec(self, spec: ClientSpec) -> None:
        # Every identity change bumps the version; backends holding
        # worker-resident replicas compare it to decide whether a spec
        # must be re-shipped (see PersistentProcessBackend).
        self._spec = spec
        self._spec_version += 1

    @property
    def spec_version(self) -> int:
        """Monotonic counter of identity mutations (spec replacements)."""
        return self._spec_version

    @property
    def client_id(self) -> int:
        return self.spec.client_id

    @property
    def dataset(self) -> Dataset:
        return self.spec.dataset

    @dataset.setter
    def dataset(self, dataset: Dataset) -> None:
        self.spec = self.spec.replace(dataset=dataset)

    @property
    def device(self) -> DeviceProfile:
        return self.spec.device

    @device.setter
    def device(self, device: DeviceProfile) -> None:
        self.spec = self.spec.replace(device=device)

    @property
    def config(self) -> ClientConfig:
        return self.spec.config

    @config.setter
    def config(self, config: ClientConfig) -> None:
        self.spec = self.spec.replace(config=config)

    @property
    def model_factory(self) -> Callable[[], Sequential]:
        return self.spec.model_factory

    @property
    def loss_factory(self) -> Callable[[], Loss]:
        return self.spec.loss_factory

    @property
    def name(self) -> str:
        """Device name used in reports."""
        return self.device.name

    @property
    def num_samples(self) -> int:
        """Number of local training samples."""
        return len(self.dataset)

    # ------------------------------------------------------------------ #
    # runtime state
    # ------------------------------------------------------------------ #
    def get_state(self) -> ClientState:
        """Digest of the mutable runtime state (weights + RNG)."""
        return ClientState(weights=self.model.get_weights(),
                           rng_state=self.rng.bit_generator.state)

    def set_state(self, state: ClientState) -> None:
        """Restore a digest captured by :meth:`get_state`."""
        self.model.set_weights(state.weights)
        self.model.clear_neuron_masks()
        self.rng.bit_generator.state = state.rng_state

    def _make_optimizer(self) -> Optimizer:
        if self.config.momentum > 0:
            from ..nn.optimizers import MomentumSGD
            return MomentumSGD(self.model.parameters(),
                               lr=self.config.learning_rate,
                               momentum=self.config.momentum,
                               weight_decay=self.config.weight_decay)
        return SGD(self.model.parameters(), lr=self.config.learning_rate,
                   weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------ #
    def local_train(self, global_weights: Dict[str, np.ndarray],
                    mask: Optional[ModelMask] = None,
                    local_epochs: Optional[int] = None,
                    base_cycle: int = 0) -> ClientUpdate:
        """Run one local training cycle and return the updated weights.

        Parameters
        ----------
        global_weights:
            The global model the server distributed for this cycle.
        mask:
            Optional neuron mask (Helios soft-training / Random baseline).
            ``None`` trains the full model.
        local_epochs:
            Override the configured number of local epochs (asynchronous
            baselines let stragglers accumulate several epochs).
        base_cycle:
            The aggregation cycle whose global weights this training is
            based on (used by staleness-aware aggregation).
        """
        epochs = local_epochs if local_epochs is not None else self.config.local_epochs
        if epochs <= 0:
            raise ValueError("local_epochs must be positive")
        self.model.set_weights(global_weights)
        if mask is not None:
            mask.apply(self.model)
        else:
            self.model.clear_neuron_masks()
        self.model.train()
        loss_fn = self.loss_factory()
        optimizer = self._make_optimizer()
        losses = []
        for _ in range(epochs):
            for images, labels in self.dataset.batches(
                    self.config.batch_size, rng=self.rng):
                losses.append(self.model.train_step(
                    images, labels, loss_fn, optimizer))
        # Masks are training-time only; the exchanged weights are full-size.
        self.model.clear_neuron_masks()
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return ClientUpdate(
            client_id=self.client_id,
            client_name=self.name,
            weights=self.model.get_weights(),
            num_samples=self.num_samples,
            train_loss=mean_loss,
            mask=mask.copy() if mask is not None else None,
            local_epochs=epochs,
            base_cycle=base_cycle,
        )

    def evaluate(self, dataset: Dataset,
                 weights: Optional[Dict[str, np.ndarray]] = None) -> float:
        """Accuracy of (optionally provided) weights on ``dataset``."""
        if weights is not None:
            self.model.set_weights(weights)
        self.model.clear_neuron_masks()
        return self.model.evaluate_accuracy(dataset.images, dataset.labels)
