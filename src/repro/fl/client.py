"""Federated-learning client.

A client owns a local dataset, a device profile and a local replica of the
training model.  Its job is purely numerical: load global weights, train the
(optionally masked) model on the local data for a number of epochs and
return the resulting weights.  Time accounting is the scheduler's job — the
simulator derives per-cycle durations from the hardware cost model so that
a weak device training a shrunk model is *numerically* identical to this
code but *temporally* cheaper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..data.dataset import Dataset
from ..hardware.device import DeviceProfile
from ..nn.losses import Loss, SoftmaxCrossEntropy
from ..nn.masking import ModelMask
from ..nn.model import Sequential
from ..nn.optimizers import SGD, Optimizer

__all__ = ["ClientConfig", "ClientUpdate", "FLClient"]


@dataclass(frozen=True)
class ClientConfig:
    """Local-training hyper-parameters shared by all strategies."""

    batch_size: int = 32
    local_epochs: int = 1
    learning_rate: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.local_epochs <= 0:
            raise ValueError("local_epochs must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass
class ClientUpdate:
    """What a client sends back to the server after a local training cycle."""

    client_id: int
    client_name: str
    weights: Dict[str, np.ndarray]
    num_samples: int
    train_loss: float
    mask: Optional[ModelMask] = None
    local_epochs: int = 1
    base_cycle: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def neuron_fraction(self) -> float:
        """Fraction of neurons this update actually trained."""
        return self.mask.active_fraction() if self.mask is not None else 1.0


class FLClient:
    """One edge device participating in the collaboration."""

    def __init__(self, client_id: int, dataset: Dataset,
                 device: DeviceProfile,
                 model_factory: Callable[[], Sequential],
                 config: Optional[ClientConfig] = None,
                 loss_factory: Callable[[], Loss] = SoftmaxCrossEntropy,
                 seed: int = 0) -> None:
        if len(dataset) == 0:
            raise ValueError("client dataset must not be empty")
        self.client_id = client_id
        self.dataset = dataset
        self.device = device
        self.config = config or ClientConfig()
        self.model_factory = model_factory
        self.loss_factory = loss_factory
        self.model = model_factory()
        self.rng = np.random.default_rng(seed + 1000 * client_id)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Device name used in reports."""
        return self.device.name

    @property
    def num_samples(self) -> int:
        """Number of local training samples."""
        return len(self.dataset)

    def _make_optimizer(self) -> Optimizer:
        if self.config.momentum > 0:
            from ..nn.optimizers import MomentumSGD
            return MomentumSGD(self.model.parameters(),
                               lr=self.config.learning_rate,
                               momentum=self.config.momentum,
                               weight_decay=self.config.weight_decay)
        return SGD(self.model.parameters(), lr=self.config.learning_rate,
                   weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------ #
    def local_train(self, global_weights: Dict[str, np.ndarray],
                    mask: Optional[ModelMask] = None,
                    local_epochs: Optional[int] = None,
                    base_cycle: int = 0) -> ClientUpdate:
        """Run one local training cycle and return the updated weights.

        Parameters
        ----------
        global_weights:
            The global model the server distributed for this cycle.
        mask:
            Optional neuron mask (Helios soft-training / Random baseline).
            ``None`` trains the full model.
        local_epochs:
            Override the configured number of local epochs (asynchronous
            baselines let stragglers accumulate several epochs).
        base_cycle:
            The aggregation cycle whose global weights this training is
            based on (used by staleness-aware aggregation).
        """
        epochs = local_epochs if local_epochs is not None else self.config.local_epochs
        if epochs <= 0:
            raise ValueError("local_epochs must be positive")
        self.model.set_weights(global_weights)
        if mask is not None:
            mask.apply(self.model)
        else:
            self.model.clear_neuron_masks()
        self.model.train()
        loss_fn = self.loss_factory()
        optimizer = self._make_optimizer()
        losses = []
        for _ in range(epochs):
            for images, labels in self.dataset.batches(
                    self.config.batch_size, rng=self.rng):
                losses.append(self.model.train_step(
                    images, labels, loss_fn, optimizer))
        # Masks are training-time only; the exchanged weights are full-size.
        self.model.clear_neuron_masks()
        mean_loss = float(np.mean(losses)) if losses else 0.0
        return ClientUpdate(
            client_id=self.client_id,
            client_name=self.name,
            weights=self.model.get_weights(),
            num_samples=self.num_samples,
            train_loss=mean_loss,
            mask=mask.copy() if mask is not None else None,
            local_epochs=epochs,
            base_cycle=base_cycle,
        )

    def evaluate(self, dataset: Dataset,
                 weights: Optional[Dict[str, np.ndarray]] = None) -> float:
        """Accuracy of (optionally provided) weights on ``dataset``."""
        if weights is not None:
            self.model.set_weights(weights)
        self.model.clear_neuron_masks()
        return self.model.evaluate_accuracy(dataset.images, dataset.labels)
