"""Server-side parameter aggregation.

Two aggregation modes are provided:

* :func:`aggregate_full` — classical FedAvg: a weighted average of complete
  model updates (weights default to local sample counts).
* :func:`aggregate_partial` — neuron-granular aggregation for partial-model
  updates (soft-training, Random/federated-dropout baselines): every neuron
  of the global model is averaged only over the devices that actually
  trained it this cycle; untouched neurons keep their previous global
  value.  Per-device aggregation weights are where Helios' heterogeneity
  adjustment ``α_n = r_n / Σ r_n`` plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..nn.model import Sequential
from .client import ClientUpdate

__all__ = ["ModelStructure", "aggregate_full", "aggregate_partial",
           "sample_count_weights", "normalize_weights"]


@dataclass(frozen=True)
class ParameterInfo:
    """Structural metadata for one named parameter."""

    name: str
    layer_name: Optional[str]
    neuron_axis: Optional[int]
    shape: tuple


class ModelStructure:
    """Mapping from parameter names to the maskable layer that owns them.

    The server needs this to know, for every exchanged tensor, which axis
    indexes neurons and which soft-training mask (keyed by layer name)
    applies to it.
    """

    def __init__(self, parameters: Sequence[ParameterInfo]) -> None:
        self._by_name: Dict[str, ParameterInfo] = {
            info.name: info for info in parameters}

    @classmethod
    def from_model(cls, model: Sequential) -> "ModelStructure":
        """Build the structure table from a reference model instance."""
        owner_by_param_id: Dict[int, str] = {}
        for layer in model.neuron_layers():
            for param in layer.parameters():
                owner_by_param_id[id(param)] = layer.name
        infos: List[ParameterInfo] = []
        for name, param in model.named_parameters().items():
            layer_name = owner_by_param_id.get(id(param))
            infos.append(ParameterInfo(
                name=name,
                layer_name=layer_name,
                neuron_axis=param.neuron_axis if layer_name else None,
                shape=tuple(param.data.shape),
            ))
        return cls(infos)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ParameterInfo:
        return self._by_name[name]

    def parameter_names(self) -> List[str]:
        """All parameter names in the structure."""
        return list(self._by_name)

    def layer_of(self, parameter_name: str) -> Optional[str]:
        """Maskable layer owning a parameter (None for shared parameters)."""
        return self._by_name[parameter_name].layer_name


def sample_count_weights(updates: Sequence[ClientUpdate]) -> np.ndarray:
    """FedAvg weights proportional to each client's local sample count."""
    counts = np.array([float(update.num_samples) for update in updates])
    if counts.sum() <= 0:
        raise ValueError("total sample count must be positive")
    return counts / counts.sum()


def normalize_weights(weights: Sequence[float]) -> np.ndarray:
    """Normalize non-negative weights to sum to one."""
    values = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("weights must be a 1-D sequence")
    if np.any(values < 0):
        raise ValueError("weights must be non-negative")
    total = values.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return values / total


def aggregate_full(updates: Sequence[ClientUpdate],
                   client_weights: Optional[Sequence[float]] = None
                   ) -> Dict[str, np.ndarray]:
    """Weighted average of complete model updates (FedAvg)."""
    if not updates:
        raise ValueError("need at least one update to aggregate")
    if client_weights is None:
        weights = sample_count_weights(updates)
    else:
        if len(client_weights) != len(updates):
            raise ValueError("client_weights length must match updates")
        weights = normalize_weights(client_weights)
    aggregated: Dict[str, np.ndarray] = {}
    for name in updates[0].weights:
        stacked = np.stack([update.weights[name] for update in updates])
        aggregated[name] = np.tensordot(weights, stacked, axes=1)
    return aggregated


#: Updates contracted per einsum call in :func:`aggregate_partial` —
#: bounds the transient stacked tensor at chunk x largest-parameter.
_AGGREGATION_CHUNK = 16


def _neuron_weight_vector(mask: Optional[np.ndarray], size: int,
                          weight: float) -> np.ndarray:
    """Per-neuron contribution weight of one client for one layer."""
    if mask is None:
        return np.full(size, weight)
    return np.where(mask, weight, 0.0)


def _neuron_weight_matrix(updates: Sequence[ClientUpdate],
                          weights: np.ndarray, layer_name: str,
                          num_neurons: int) -> np.ndarray:
    """``(num_updates, num_neurons)`` contribution-weight matrix.

    Row ``u`` is update ``u``'s per-neuron aggregation weight for one
    layer: its scalar weight where its mask covers the neuron, zero
    where it does not (no mask covers everything).
    """
    matrix = np.empty((len(updates), num_neurons), dtype=np.float64)
    for row, (weight, update) in enumerate(zip(weights, updates)):
        layer_mask = None
        if update.mask is not None and layer_name in update.mask:
            layer_mask = update.mask[layer_name]
        matrix[row] = _neuron_weight_vector(layer_mask, num_neurons,
                                            float(weight))
    return matrix


def aggregate_partial(global_weights: Mapping[str, np.ndarray],
                      updates: Sequence[ClientUpdate],
                      structure: ModelStructure,
                      client_weights: Optional[Sequence[float]] = None
                      ) -> Dict[str, np.ndarray]:
    """Neuron-granular weighted aggregation of partial-model updates.

    Parameters
    ----------
    global_weights:
        The current global model (provides values for neurons nobody
        trained this cycle).
    updates:
        Client updates; an update with ``mask=None`` contributes to every
        neuron.
    structure:
        Parameter-to-layer mapping of the global model.
    client_weights:
        Per-update aggregation weight (defaults to sample counts).  Helios
        passes FedAvg sample weights multiplied by ``α_n``.
    """
    if not updates:
        raise ValueError("need at least one update to aggregate")
    if client_weights is None:
        weights = sample_count_weights(updates)
    else:
        if len(client_weights) != len(updates):
            raise ValueError("client_weights length must match updates")
        weights = normalize_weights(client_weights)

    aggregated: Dict[str, np.ndarray] = {}
    for name, global_value in global_weights.items():
        info = structure[name] if name in structure else None
        global_value = np.asarray(global_value)
        if info is None or info.layer_name is None or info.neuron_axis is None:
            # Shared (non-neuron-structured) parameter: plain weighted mean.
            stacked = np.stack([update.weights[name] for update in updates])
            aggregated[name] = np.tensordot(weights, stacked, axes=1)
            continue
        axis = info.neuron_axis
        num_neurons = global_value.shape[axis]
        # Vectorized across updates: one (U, n) weight matrix and an
        # einsum contraction over the update axis — no per-update
        # Python loop over O(parameters) work.  The contraction runs in
        # chunks of the update axis so peak transient memory stays
        # O(chunk x parameter), not O(num_updates x parameter) — wide
        # aggregation rounds (hundreds of clients) must not multiply
        # the largest layer's footprint by the fleet size.
        weight_matrix = _neuron_weight_matrix(updates, weights,
                                              info.layer_name, num_neurons)
        denominator = weight_matrix.sum(axis=0)
        moved_shape = ((num_neurons,)
                       + tuple(np.delete(global_value.shape, axis)))
        numerator_moved = np.zeros(moved_shape, dtype=np.float64)
        for start in range(0, len(updates), _AGGREGATION_CHUNK):
            chunk = updates[start:start + _AGGREGATION_CHUNK]
            stacked = np.stack([np.asarray(update.weights[name],
                                           dtype=np.float64)
                                for update in chunk])
            # Move the neuron axis next to the update axis so one
            # einsum signature covers every parameter shape.
            stacked_moved = np.moveaxis(stacked, axis + 1, 1)
            numerator_moved += np.einsum(
                "un,un...->n...",
                weight_matrix[start:start + _AGGREGATION_CHUNK],
                stacked_moved)
        numerator = np.moveaxis(numerator_moved, 0, axis)
        covered = denominator > 0
        safe_denominator = np.where(covered, denominator, 1.0)
        broadcast_shape = [1] * global_value.ndim
        broadcast_shape[axis] = num_neurons
        blended = numerator / safe_denominator.reshape(broadcast_shape)
        keep_mask = (~covered).reshape(broadcast_shape)
        aggregated[name] = np.where(keep_mask, global_value, blended)
    return aggregated
