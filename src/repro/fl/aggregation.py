"""Server-side parameter aggregation.

Two aggregation modes are provided:

* :func:`aggregate_full` — classical FedAvg: a weighted average of complete
  model updates (weights default to local sample counts).
* :func:`aggregate_partial` — neuron-granular aggregation for partial-model
  updates (soft-training, Random/federated-dropout baselines): every neuron
  of the global model is averaged only over the devices that actually
  trained it this cycle; untouched neurons keep their previous global
  value.  Per-device aggregation weights are where Helios' heterogeneity
  adjustment ``α_n = r_n / Σ r_n`` plugs in.

Hierarchical folding
--------------------
Both modes are built on one partition-independent reduction so that the
same set of updates aggregates to the **bit-identical** result whether it
is reduced in one flat pass or folded shard-by-shard and combined later
(see :meth:`FederatedSimulation.train_and_aggregate` and the ``"fold"``
wire path in :mod:`repro.fl.executor`):

* :func:`fold_updates` reduces any subset of a cycle's updates into a
  :class:`PartialAggregate` — per-parameter weighted sums plus the
  per-neuron contribution-weight table, each kept as *exact* per-level
  sums (below);
* :func:`merge_partials` losslessly merges partial aggregates (shard →
  parent combine);
* :func:`finalize_partials` turns merged partials into new global
  weights, keeping the previous global value for any neuron no update
  covered.

Reproducible summation
----------------------
Floating-point addition is not associative, so a shard-local fold could
never bit-match a flat reduction under arbitrary client→shard
partitions.  The cross-update reductions here therefore pre-round every
addend onto three fixed power-of-two grids (Rump/Demmel–Nguyen style
error-free extraction: ``hi = (a + anchor) - anchor`` splits ``a`` into a
grid multiple and an exact remainder).  Sums of grid multiples whose
magnitudes fit the grid's exactness range are **exact** in float64 and
hence independent of summation order and partitioning; the three per-level
sums travel separately and are collapsed in one fixed final step.

Domain (asserted where cheap, documented here): addends — aggregation
weight x parameter value, weights normalized to sum to 1 — must stay
below ``2^13`` in magnitude, and one reduction may span at most ``2^24``
addends.  The discarded residual after the third grid is below
``2^-72`` absolute, far inside every numerical tolerance used in this
repository.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..nn.model import Sequential
from .client import ClientUpdate

__all__ = ["ModelStructure", "PartialAggregate", "aggregate_full",
           "aggregate_partial", "collapse_levels", "finalize_partials",
           "fold_updates", "level_sums", "merge_partials",
           "normalize_weights", "sample_count_weights"]


@dataclass(frozen=True)
class ParameterInfo:
    """Structural metadata for one named parameter."""

    name: str
    layer_name: Optional[str]
    neuron_axis: Optional[int]
    shape: tuple


class ModelStructure:
    """Mapping from parameter names to the maskable layer that owns them.

    The server needs this to know, for every exchanged tensor, which axis
    indexes neurons and which soft-training mask (keyed by layer name)
    applies to it.
    """

    def __init__(self, parameters: Sequence[ParameterInfo]) -> None:
        self._by_name: Dict[str, ParameterInfo] = {
            info.name: info for info in parameters}

    @classmethod
    def from_model(cls, model: Sequential) -> "ModelStructure":
        """Build the structure table from a reference model instance."""
        owner_by_param_id: Dict[int, str] = {}
        for layer in model.neuron_layers():
            for param in layer.parameters():
                owner_by_param_id[id(param)] = layer.name
        infos: List[ParameterInfo] = []
        for name, param in model.named_parameters().items():
            layer_name = owner_by_param_id.get(id(param))
            infos.append(ParameterInfo(
                name=name,
                layer_name=layer_name,
                neuron_axis=param.neuron_axis if layer_name else None,
                shape=tuple(param.data.shape),
            ))
        return cls(infos)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ParameterInfo:
        return self._by_name[name]

    def parameter_names(self) -> List[str]:
        """All parameter names in the structure."""
        return list(self._by_name)

    def layer_of(self, parameter_name: str) -> Optional[str]:
        """Maskable layer owning a parameter (None for shared parameters)."""
        return self._by_name[parameter_name].layer_name


def sample_count_weights(updates: Sequence[ClientUpdate]) -> np.ndarray:
    """FedAvg weights proportional to each client's local sample count."""
    counts = np.array([float(update.num_samples) for update in updates])
    if counts.sum() <= 0:
        raise ValueError("total sample count must be positive")
    return counts / counts.sum()


def normalize_weights(weights: Sequence[float]) -> np.ndarray:
    """Normalize non-negative finite weights to sum to one."""
    values = np.asarray(weights, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("weights must be a 1-D sequence")
    if not np.all(np.isfinite(values)):
        raise ValueError("weights must be finite (no NaN/Inf)")
    if np.any(values < 0):
        raise ValueError("weights must be non-negative")
    total = values.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return values / total


# --------------------------------------------------------------------- #
# reproducible (partition-independent) summation
# --------------------------------------------------------------------- #

#: Exponents of the three pre-rounding grids.  Chosen so that, for
#: addends below ``2^13`` and at most ``2^24`` of them, every per-level
#: sum stays inside its grid's float64 exactness range (see module docs).
_LEVEL_EXPONENTS = (-37, -66, -95)
NUM_LEVELS = len(_LEVEL_EXPONENTS)

#: Largest addend magnitude the grids support (weights are normalized to
#: sum to 1, so this effectively bounds the model-parameter magnitude).
_MAX_ADDEND = float(2.0 ** 13)


def _split_levels(values: np.ndarray) -> List[np.ndarray]:
    """Error-free split of ``values`` onto the three fixed grids.

    Each returned component is an exact multiple of its grid; their sum
    reconstructs ``values`` up to a ``< 2^-96`` per-element residual that
    is discarded.  The split is elementwise and deterministic, so it is
    identical wherever (parent or shard) it runs.
    """
    if values.size:
        peak = float(np.max(np.abs(values)))
        if not np.isfinite(peak) or peak >= _MAX_ADDEND:
            raise ValueError(
                f"aggregation addend magnitude {peak!r} outside the "
                f"reproducible-summation domain (|addend| < {_MAX_ADDEND}); "
                f"weighted parameter values must stay below 2^13")
    parts: List[np.ndarray] = []
    residual = np.asarray(values, dtype=np.float64)
    for exponent in _LEVEL_EXPONENTS:
        anchor = np.ldexp(1.5, 52 + exponent)
        hi = (residual + anchor) - anchor
        parts.append(hi)
        residual = residual - hi
    return parts


def level_sums(values: np.ndarray, axis: int = 0) -> np.ndarray:
    """Per-level exact sums of ``values`` along ``axis``.

    Returns an array with a new leading axis of size :data:`NUM_LEVELS`;
    each level is exact (hence independent of summation order and of how
    the addends were partitioned before summing).  Accumulating several
    calls' results with ``+`` stays exact, which is what makes shard-side
    incremental folds combine losslessly.
    """
    parts = _split_levels(np.asarray(values, dtype=np.float64))
    return np.stack([part.sum(axis=axis) for part in parts])


def collapse_levels(levels: np.ndarray) -> np.ndarray:
    """Collapse per-level sums into a scalar/tensor total.

    One fixed left-to-right three-term addition — the only inexact step
    of the reduction, performed exactly once on exact operands, so the
    result is a pure function of the addend *set*.
    """
    return (levels[0] + levels[1]) + levels[2]


# --------------------------------------------------------------------- #
# partial (hierarchical) aggregation
# --------------------------------------------------------------------- #

@dataclass
class PartialAggregate:
    """Order-independent fold of a subset of one cycle's updates.

    ``weighted_sums[name]`` holds the per-level sums (leading axis
    :data:`NUM_LEVELS`) of ``weight x update`` over the folded updates;
    ``weight_tables[name]`` the per-level sums of the contribution
    weights — per neuron (``(levels, num_neurons)``) for neuron-structured
    parameters, scalar (``(levels,)``) otherwise.  Two partial aggregates
    of disjoint update subsets merge losslessly with
    :func:`merge_partials`; this is the unit a shard ships upstream
    instead of its residents' full updates — O(weights), independent of
    how many clients the shard hosts.
    """

    num_updates: int
    weighted_sums: Dict[str, np.ndarray]
    weight_tables: Dict[str, np.ndarray]


#: Updates contracted per chunk in :func:`fold_updates` — bounds the
#: transient stacked tensor at chunk x largest-parameter.
_AGGREGATION_CHUNK = 16


def _neuron_weight_vector(mask: Optional[np.ndarray], size: int,
                          weight: float) -> np.ndarray:
    """Per-neuron contribution weight of one client for one layer."""
    if mask is None:
        return np.full(size, weight)
    return np.where(mask, weight, 0.0)


def _neuron_weight_matrix(updates: Sequence[ClientUpdate],
                          weights: np.ndarray, layer_name: str,
                          num_neurons: int) -> np.ndarray:
    """``(num_updates, num_neurons)`` contribution-weight matrix.

    Row ``u`` is update ``u``'s per-neuron aggregation weight for one
    layer: its scalar weight where its mask covers the neuron, zero
    where it does not (no mask covers everything).
    """
    matrix = np.empty((len(updates), num_neurons), dtype=np.float64)
    for row, (weight, update) in enumerate(zip(weights, updates)):
        layer_mask = None
        if update.mask is not None and layer_name in update.mask:
            layer_mask = update.mask[layer_name]
        matrix[row] = _neuron_weight_vector(layer_mask, num_neurons,
                                            float(weight))
    return matrix


def _is_neuron_param(name: str, structure: Optional[ModelStructure]
                     ) -> bool:
    if structure is None or name not in structure:
        return False
    info = structure[name]
    return info.layer_name is not None and info.neuron_axis is not None


def fold_updates(updates: Sequence[ClientUpdate],
                 weight_factors: Sequence[float],
                 structure: Optional[ModelStructure] = None,
                 partial: bool = True) -> PartialAggregate:
    """Fold updates into a :class:`PartialAggregate`.

    Parameters
    ----------
    updates:
        The updates to fold (any subset of one cycle's updates).
    weight_factors:
        Each update's **globally normalized** aggregation weight — over
        the *whole* cycle, not just this subset; the caller (parent)
        normalizes once and ships each shard its updates' factors, so
        every shard folds with the exact same per-update floats a flat
        reduction would use.
    structure:
        Parameter→layer mapping; ``None`` treats every parameter as
        shared (plain weighted mean).
    partial:
        Honor per-update neuron masks (neuron-granular weight matrix).
        ``False`` reproduces FedAvg semantics: masks are ignored and
        every update contributes everywhere.
    """
    if not updates:
        raise ValueError("need at least one update to fold")
    factors = np.asarray(weight_factors, dtype=np.float64)
    if factors.shape != (len(updates),):
        raise ValueError("need exactly one weight factor per update")
    if not np.all(np.isfinite(factors)) or np.any(factors < 0):
        raise ValueError("weight factors must be finite and non-negative")

    weighted_sums: Dict[str, np.ndarray] = {}
    weight_tables: Dict[str, np.ndarray] = {}
    for name in updates[0].weights:
        sample = np.asarray(updates[0].weights[name])
        if partial and _is_neuron_param(name, structure):
            info = structure[name]
            axis = info.neuron_axis
            num_neurons = sample.shape[axis]
            moved_shape = ((num_neurons,)
                           + tuple(np.delete(sample.shape, axis)))
            sums = np.zeros((NUM_LEVELS,) + moved_shape, dtype=np.float64)
            table = np.zeros((NUM_LEVELS, num_neurons), dtype=np.float64)
            for start in range(0, len(updates), _AGGREGATION_CHUNK):
                chunk = updates[start:start + _AGGREGATION_CHUNK]
                matrix = _neuron_weight_matrix(
                    chunk, factors[start:start + _AGGREGATION_CHUNK],
                    info.layer_name, num_neurons)
                stacked = np.stack([np.asarray(update.weights[name],
                                               dtype=np.float64)
                                    for update in chunk])
                # Move the neuron axis next to the update axis so one
                # broadcast shape covers every parameter layout; peak
                # transient memory stays O(chunk x parameter).
                stacked_moved = np.moveaxis(stacked, axis + 1, 1)
                shaped = matrix.reshape(matrix.shape
                                        + (1,) * (stacked_moved.ndim - 2))
                sums += level_sums(shaped * stacked_moved, axis=0)
                table += level_sums(matrix, axis=0)
            weighted_sums[name] = sums
            weight_tables[name] = table
        else:
            shape = sample.shape
            sums = np.zeros((NUM_LEVELS,) + shape, dtype=np.float64)
            for start in range(0, len(updates), _AGGREGATION_CHUNK):
                chunk = updates[start:start + _AGGREGATION_CHUNK]
                stacked = np.stack([np.asarray(update.weights[name],
                                               dtype=np.float64)
                                    for update in chunk])
                shaped = factors[start:start + len(chunk)].reshape(
                    (len(chunk),) + (1,) * len(shape))
                sums += level_sums(shaped * stacked, axis=0)
            weighted_sums[name] = sums
            weight_tables[name] = level_sums(factors)
    return PartialAggregate(num_updates=len(updates),
                            weighted_sums=weighted_sums,
                            weight_tables=weight_tables)


def merge_partials(partials: Sequence[PartialAggregate]
                   ) -> PartialAggregate:
    """Losslessly merge partial aggregates of disjoint update subsets.

    Per-level sums add exactly, so the merge is associative, commutative
    and independent of how the updates were partitioned — the property
    the hierarchical (in-shard) aggregation path rests on.
    """
    if not partials:
        raise ValueError("need at least one partial aggregate to merge")
    first = partials[0]
    merged_sums = {name: array.copy()
                   for name, array in first.weighted_sums.items()}
    merged_tables = {name: array.copy()
                     for name, array in first.weight_tables.items()}
    total = first.num_updates
    for other in partials[1:]:
        if other.weighted_sums.keys() != merged_sums.keys():
            raise ValueError("partial aggregates cover different "
                             "parameter sets")
        for name in merged_sums:
            merged_sums[name] += other.weighted_sums[name]
            merged_tables[name] += other.weight_tables[name]
        total += other.num_updates
    return PartialAggregate(num_updates=total, weighted_sums=merged_sums,
                            weight_tables=merged_tables)


def finalize_partials(global_weights: Optional[Mapping[str, np.ndarray]],
                      partials: Sequence[PartialAggregate],
                      structure: Optional[ModelStructure] = None
                      ) -> Dict[str, np.ndarray]:
    """Merge partial aggregates and normalize them into new weights.

    Every neuron (or shared tensor) is divided by its summed contribution
    weight; a neuron covered by **zero** updates — every mask excluded it,
    or all its contributors had zero weight — keeps its previous global
    value instead of dividing by zero.  ``global_weights`` may be ``None``
    only when full coverage is guaranteed (plain FedAvg); partial
    coverage without a fallback raises.
    """
    merged = merge_partials(partials)
    names = (list(global_weights) if global_weights is not None
             else list(merged.weighted_sums))
    aggregated: Dict[str, np.ndarray] = {}
    for name in names:
        levels = merged.weighted_sums[name]
        table = merged.weight_tables[name]
        denominator = collapse_levels(table)
        if table.ndim == 1:  # shared parameter: scalar denominator
            if denominator > 0:
                numerator = collapse_levels(levels)
                aggregated[name] = numerator / denominator
            elif global_weights is not None:
                aggregated[name] = np.array(global_weights[name],
                                            dtype=np.float64, copy=True)
            else:
                raise ValueError(
                    f"parameter {name!r} received zero total weight and "
                    f"no global fallback weights were provided")
            continue
        if not _is_neuron_param(name, structure):
            raise ValueError(
                f"parameter {name!r} was folded with a per-neuron weight "
                f"table but the structure does not mark it "
                f"neuron-structured")
        axis = structure[name].neuron_axis
        num_neurons = table.shape[1]
        numerator_moved = collapse_levels(levels)
        covered = denominator > 0
        if global_weights is None and not np.all(covered):
            raise ValueError(
                f"parameter {name!r} has neurons covered by zero updates "
                f"and no global fallback weights were provided")
        safe_denominator = np.where(covered, denominator, 1.0)
        broadcast_shape = (num_neurons,) + (1,) * (numerator_moved.ndim - 1)
        blended_moved = numerator_moved / safe_denominator.reshape(
            broadcast_shape)
        blended = np.moveaxis(blended_moved, 0, axis)
        if np.all(covered):
            aggregated[name] = blended
            continue
        global_value = np.asarray(global_weights[name])
        keep_shape = [1] * global_value.ndim
        keep_shape[axis] = num_neurons
        keep_mask = (~covered).reshape(keep_shape)
        aggregated[name] = np.where(keep_mask, global_value, blended)
    return aggregated


# --------------------------------------------------------------------- #
# flat entry points (one-shot folds of a whole cycle)
# --------------------------------------------------------------------- #

def _resolve_weights(updates: Sequence[ClientUpdate],
                     client_weights: Optional[Sequence[float]]
                     ) -> np.ndarray:
    if client_weights is None:
        return sample_count_weights(updates)
    if len(client_weights) != len(updates):
        raise ValueError("client_weights length must match updates")
    return normalize_weights(client_weights)


def aggregate_full(updates: Sequence[ClientUpdate],
                   client_weights: Optional[Sequence[float]] = None
                   ) -> Dict[str, np.ndarray]:
    """Weighted average of complete model updates (FedAvg).

    Implemented as a one-partial hierarchical fold, so a shard-wise fold
    of the same updates (:func:`fold_updates` with ``partial=False`` +
    :func:`finalize_partials`) is bit-identical by construction.
    """
    if not updates:
        raise ValueError("need at least one update to aggregate")
    weights = _resolve_weights(updates, client_weights)
    folded = fold_updates(updates, weights, structure=None, partial=False)
    return finalize_partials(None, [folded])


def aggregate_partial(global_weights: Mapping[str, np.ndarray],
                      updates: Sequence[ClientUpdate],
                      structure: ModelStructure,
                      client_weights: Optional[Sequence[float]] = None
                      ) -> Dict[str, np.ndarray]:
    """Neuron-granular weighted aggregation of partial-model updates.

    Parameters
    ----------
    global_weights:
        The current global model (provides values for neurons nobody
        trained this cycle).
    updates:
        Client updates; an update with ``mask=None`` contributes to every
        neuron.
    structure:
        Parameter-to-layer mapping of the global model.
    client_weights:
        Per-update aggregation weight (defaults to sample counts).  Helios
        passes FedAvg sample weights multiplied by ``α_n``.

    Like :func:`aggregate_full` this is a one-partial fold: folding the
    same updates shard-by-shard with the same normalized weights and
    finalizing the merged partials yields the bit-identical result.
    """
    if not updates:
        raise ValueError("need at least one update to aggregate")
    weights = _resolve_weights(updates, client_weights)
    folded = fold_updates(updates, weights, structure=structure,
                          partial=True)
    return finalize_partials(global_weights, [folded], structure=structure)
