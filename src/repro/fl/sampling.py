"""Client-selection (sampling) policies.

The paper's experiments let every device participate in every cycle, but
real FL deployments select a subset of clients per round.  Three policies
are provided:

* :class:`FullParticipation` — everyone, every cycle (the paper's setting);
* :class:`RandomSampling` — a uniform random fraction per cycle (FedAvg's
  classical setting);
* :class:`ResourceAwareSampling` — prefer devices whose expected cycle time
  fits a deadline, the FedCS idea of the paper's ref. [11].  This is the
  "kick the stragglers out" policy Helios argues against, so it doubles as
  an additional baseline ingredient.

Policies are deliberately independent of the strategies: a strategy asks
the policy which client indices participate this cycle and proceeds with
that subset.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .simulation import FederatedSimulation

__all__ = ["ClientSampler", "FullParticipation", "RandomSampling",
           "ResourceAwareSampling"]


class ClientSampler:
    """Base class for per-cycle client selection."""

    def select(self, cycle: int, sim: FederatedSimulation) -> List[int]:
        """Return the client indices participating in ``cycle``."""
        raise NotImplementedError


class FullParticipation(ClientSampler):
    """Every client participates in every cycle."""

    def select(self, cycle: int, sim: FederatedSimulation) -> List[int]:
        return sim.client_indices()


class RandomSampling(ClientSampler):
    """A uniform random fraction of clients participates each cycle."""

    def __init__(self, fraction: float = 0.5, minimum: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if minimum < 1:
            raise ValueError("minimum must be at least 1")
        self.fraction = fraction
        self.minimum = minimum
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def select(self, cycle: int, sim: FederatedSimulation) -> List[int]:
        indices = sim.client_indices()
        count = max(self.minimum,
                    int(round(self.fraction * len(indices))))
        count = min(count, len(indices))
        chosen = self.rng.choice(indices, size=count, replace=False)
        return sorted(int(index) for index in chosen)


class ResourceAwareSampling(ClientSampler):
    """Select clients whose expected cycle time fits a deadline (FedCS-like).

    Parameters
    ----------
    deadline_s:
        Per-cycle deadline in simulated seconds.  ``None`` derives it from
        the fastest client's cycle time times ``deadline_factor``.
    deadline_factor:
        Multiplier applied to the fastest cycle when no explicit deadline
        is given.
    minimum:
        Always keep at least this many clients (the fastest ones), even if
        nobody meets the deadline.
    """

    def __init__(self, deadline_s: Optional[float] = None,
                 deadline_factor: float = 1.5, minimum: int = 1) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")
        if minimum < 1:
            raise ValueError("minimum must be at least 1")
        self.deadline_s = deadline_s
        self.deadline_factor = deadline_factor
        self.minimum = minimum

    def cycle_deadline(self, sim: FederatedSimulation) -> float:
        """The effective deadline for one cycle."""
        if self.deadline_s is not None:
            return self.deadline_s
        return self.deadline_factor * sim.fastest_full_cycle_seconds()

    def select(self, cycle: int, sim: FederatedSimulation) -> List[int]:
        deadline = self.cycle_deadline(sim)
        times = {index: sim.client_cycle_seconds(index)
                 for index in sim.client_indices()}
        selected = [index for index, seconds in times.items()
                    if seconds <= deadline]
        if len(selected) < self.minimum:
            by_speed = sorted(times, key=times.get)
            selected = by_speed[:self.minimum]
        return sorted(selected)
