"""Fused multi-client GEMM training for worker-resident backends.

A worker that hosts several clients sharing one model topology and one
batch schedule spends most of a batch re-running the same tiny
forward/backward graph per client — Python dispatch, not FLOPs.  This
module *stacks* such clients: per-layer weights are gathered into
``(C, out, in)`` tensors and every training step runs as one batched
``matmul`` over all ``C`` clients, with per-client neuron masks applied
as multiplicative gates.

Bit-exactness contract
----------------------
The fused path must produce byte-identical results to running
:meth:`FLClient.local_train <repro.fl.client.FLClient.local_train>`
serially, because the whole substrate's trust anchor is bit-identical
histories across backends.  This holds because:

* ``np.matmul`` over a stacked ``(C, B, n)`` operand computes each
  client's slice with the same dtype, same contraction order and same
  SIMD kernels as the standalone 2-D ``matmul`` — verified per batch
  shape by the parity suite in ``tests/fl/test_fusion.py``;
* element-wise ops (bias add, activation, gates, optimizer steps)
  broadcast per client without cross-client reductions;
* the softmax cross-entropy is computed stacked with reductions along
  the last axis only: every ``max``/``sum``/``mean`` run covers exactly
  the elements of one client's slice in the same order as the serial
  2-D computation, so the per-client losses and logit gradients are
  bit-identical (the same argument the stacked ``Softmax`` layer
  rests on);
* stacked gradients are computed as ``matmul(...) + 0.0`` — serial
  accumulates into zeroed ``param.grad`` buffers (``0.0 + g``), which
  normalizes ``-0.0`` to ``+0.0``; adding ``0.0`` reproduces that
  normalization, and IEEE addition of zero is insensitive to the
  operand order;
* per-client RNG streams draw exactly the serial sequence: one
  permutation per epoch from each client's own generator, in epoch
  order.

Eligibility is *conservative*: anything the stacked engine cannot
reproduce exactly (custom client/model subclasses, layers outside the
whitelist, non-default losses, label values the serial path would
reject, mask/weight tables the serial path would reject) simply opts
the client out, and it trains through the classic per-client loop
instead.  Fusion can therefore never change semantics — only speed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers.activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from ..nn.layers.dense import Dense
from ..nn.layers.reshape import Flatten
from ..nn.losses import SoftmaxCrossEntropy
from ..nn.model import Sequential
from .client import ClientUpdate, FLClient

__all__ = ["FUSION_MODES", "cluster_signature", "train_cluster"]

#: Valid ``fusion`` settings of the worker-resident backends.
FUSION_MODES = ("off", "stacked")

#: Stateless activations the stacked engine reproduces exactly.  Keys
#: are exact types — a subclass may override ``forward`` arbitrarily,
#: so it opts its client out of fusion.
_ACTIVATIONS = (ReLU, LeakyReLU, Sigmoid, Tanh, Softmax)


def _topology_signature(model: Sequential
                        ) -> Optional[Tuple[Tuple[Any, ...], ...]]:
    """Hashable layer-stack fingerprint, or ``None`` if not fusable.

    Two clients fuse only when their signatures match, so the signature
    must pin everything that affects the math: layer kinds and order,
    dense dimensions/bias, activation parameters.
    """
    if type(model) is not Sequential:
        return None
    signature: List[Tuple[Any, ...]] = []
    dense_names = set()
    for layer in model.layers:
        layer_type = type(layer)
        if layer_type is Flatten:
            signature.append(("flatten",))
        elif layer_type is Dense:
            if layer.name in dense_names:
                # Duplicate names would collide in the weights table
                # (named_parameters de-duplicates with a "#2" suffix the
                # stacked write-back cannot reproduce).
                return None
            dense_names.add(layer.name)
            signature.append(("dense", layer.name, layer.in_features,
                              layer.out_features, layer.use_bias))
        elif layer_type is ReLU:
            signature.append(("relu",))
        elif layer_type is LeakyReLU:
            signature.append(("leakyrelu", float(layer.alpha)))
        elif layer_type is Sigmoid:
            signature.append(("sigmoid",))
        elif layer_type is Tanh:
            signature.append(("tanh",))
        elif layer_type is Softmax:
            signature.append(("softmax",))
        else:
            # Dropout (own RNG stream), convolutions, composites, …:
            # the stacked engine does not model them.
            return None
    return tuple(signature)


def _feature_flow(signature: Sequence[Tuple[Any, ...]],
                  feature_shape: Tuple[int, ...]) -> Optional[int]:
    """Final logit width if the shapes compose, else ``None``.

    Mirrors the serial validation path: ``Dense.forward`` insists on 2-D
    inputs of its ``in_features``, so a topology that would make serial
    raise is simply not fusable (the classic path then raises the exact
    serial error).
    """
    shape = tuple(int(dim) for dim in feature_shape)
    for entry in signature:
        if entry[0] == "flatten":
            size = 1
            for dim in shape:
                size *= dim
            shape = (size,)
        elif entry[0] == "dense":
            if len(shape) != 1 or shape[0] != entry[2]:
                return None
            shape = (entry[3],)
        # Activations preserve the shape.
    if len(shape) != 1:
        return None
    return shape[0]


def cluster_signature(client: FLClient, group: Any,
                      weights_table: Sequence[Dict[str, np.ndarray]]
                      ) -> Optional[Tuple[Any, ...]]:
    """Fusion-cluster key for one wire group, or ``None`` if ineligible.

    Groups whose keys compare equal train bit-identically as one
    stacked pass: same topology, same starting weights (same table
    slot), same resolved epoch/batch/optimizer schedule, same dataset
    geometry.  Masks may differ per client — they become gates.
    """
    if len(group.jobs) != 1:
        # Multi-job groups interleave one client's RNG stream across
        # jobs; the classic loop already handles them.
        return None
    if type(client) is not FLClient:
        return None
    spec = client.spec
    if spec.loss_factory is not SoftmaxCrossEntropy:
        return None
    job = group.jobs[0]
    config = spec.config
    epochs = (job.local_epochs if job.local_epochs is not None
              else config.local_epochs)
    if not isinstance(epochs, int) or epochs <= 0:
        return None
    topology = _topology_signature(client.model)
    if topology is None:
        return None
    dataset = client.dataset
    feature_shape = tuple(int(dim) for dim in dataset.images.shape[1:])
    num_classes = _feature_flow(topology, feature_shape)
    if num_classes is None:
        return None
    labels = dataset.labels
    if len(labels) == 0 or labels.min() < 0 or labels.max() >= num_classes:
        # Serial raises per client inside the loss; keep that exact
        # error on the classic path.
        return None
    try:
        snapshot = weights_table[job.weights_ref]
    except (IndexError, TypeError):
        return None
    if not isinstance(snapshot, dict):
        return None
    dense_layers = {entry[1]: entry for entry in topology
                    if entry[0] == "dense"}
    for name, (_, _, in_features, out_features, use_bias) in \
            dense_layers.items():
        weight = snapshot.get(f"{name}/weight")
        if (not isinstance(weight, np.ndarray)
                or weight.shape != (out_features, in_features)
                # Serial's set_weights copies with order='K', so an
                # F-order snapshot would train on an F-order parameter;
                # the stacked engine is only parity-verified for the
                # C-order layout every real snapshot has.
                or not weight.flags.c_contiguous):
            return None
        if use_bias:
            bias = snapshot.get(f"{name}/bias")
            if (not isinstance(bias, np.ndarray)
                    or bias.shape != (out_features,)):
                return None
    if job.mask is not None:
        for name in job.mask.layer_names():
            entry = dense_layers.get(name)
            if entry is None or job.mask[name].shape != (entry[3],):
                # Serial's set_neuron_masks would raise; classic path
                # preserves that.
                return None
    return ("stacked", job.weights_ref, epochs, config.batch_size,
            config.learning_rate, config.momentum, config.weight_decay,
            len(dataset), feature_shape, topology)


def train_cluster(members: Sequence[Tuple[FLClient, Any]],
                  weights_table: Sequence[Dict[str, np.ndarray]]
                  ) -> List[ClientUpdate]:
    """Train every (client, job) member as one stacked pass.

    All members share one :func:`cluster_signature`; returns one
    :class:`~repro.fl.client.ClientUpdate` per member, in order,
    bit-identical to serial ``local_train`` calls.
    """
    clients = [client for client, _ in members]
    jobs = [job for _, job in members]
    spec = clients[0].spec
    config = spec.config
    epochs = (jobs[0].local_epochs if jobs[0].local_epochs is not None
              else config.local_epochs)
    snapshot = weights_table[jobs[0].weights_ref]
    model = clients[0].model
    num_clients = len(members)
    num_samples = len(clients[0].dataset)
    batch_size = config.batch_size

    # ----- stacked parameters + per-client mask gates ----------------- #
    ops: List[Dict[str, Any]] = []
    dense_ops: List[Dict[str, Any]] = []
    for layer in model.layers:
        layer_type = type(layer)
        if layer_type is Flatten:
            ops.append({"kind": "flatten"})
        elif layer_type is Dense:
            weight = np.asarray(snapshot[f"{layer.name}/weight"])
            stacked_w = np.stack([weight.astype(np.float64, copy=True)
                                  for _ in range(num_clients)])
            stacked_b = None
            if layer.use_bias:
                bias = np.asarray(snapshot[f"{layer.name}/bias"])
                stacked_b = np.stack([bias.astype(np.float64, copy=True)
                                      for _ in range(num_clients)])
            gate = None
            if any(job.mask is not None and layer.name in job.mask
                   for job in jobs):
                gate = np.ones((num_clients, layer.out_features), bool)
                for index, job in enumerate(jobs):
                    if job.mask is not None and layer.name in job.mask:
                        gate[index] = job.mask[layer.name]
            op = {"kind": "dense", "name": layer.name, "W": stacked_w,
                  "b": stacked_b, "gate": gate}
            ops.append(op)
            dense_ops.append(op)
        elif layer_type is ReLU:
            ops.append({"kind": "relu"})
        elif layer_type is LeakyReLU:
            ops.append({"kind": "leakyrelu", "alpha": layer.alpha})
        elif layer_type is Sigmoid:
            ops.append({"kind": "sigmoid"})
        elif layer_type is Tanh:
            ops.append({"kind": "tanh"})
        elif layer_type is Softmax:
            ops.append({"kind": "softmax"})
        else:  # pragma: no cover - excluded by cluster_signature
            raise RuntimeError(f"unfusable layer {type(layer).__name__}")

    # Serial local_train flips the model into training mode; mirror the
    # resident objects' state even though the fused math ignores it.
    for client in clients:
        client.model.train()

    losses: List[List[float]] = [[] for _ in range(num_clients)]
    # All datasets share one geometry (pinned by the cluster signature),
    # so one stacked copy turns the per-client batch gathers into a
    # single fancy-index per step.
    stacked_images = np.stack([client.dataset.images for client in clients])
    stacked_labels = np.stack([client.dataset.labels for client in clients])
    client_rows = np.arange(num_clients)[:, None]
    velocities: Dict[Tuple[int, str], np.ndarray] = {}
    momentum = config.momentum
    learning_rate = config.learning_rate
    weight_decay = config.weight_decay

    for _ in range(epochs):
        orders = [client.rng.permutation(num_samples) for client in clients]
        for start in range(0, num_samples, batch_size):
            chunk = np.stack([order[start:start + batch_size]
                              for order in orders])
            batch_x = stacked_images[client_rows, chunk]
            batch_y = stacked_labels[client_rows, chunk]

            # forward ------------------------------------------------- #
            stash: List[Any] = []
            out = batch_x
            for op in ops:
                kind = op["kind"]
                if kind == "flatten":
                    stash.append(out.shape)
                    out = out.reshape(out.shape[0], out.shape[1], -1)
                elif kind == "dense":
                    stash.append(out)
                    out = np.matmul(out, op["W"].transpose(0, 2, 1))
                    if op["b"] is not None:
                        out = out + op["b"][:, None, :]
                    if op["gate"] is not None:
                        out = out * op["gate"][:, None, :]
                elif kind == "relu":
                    mask = out > 0
                    stash.append(mask)
                    out = out * mask
                elif kind == "leakyrelu":
                    mask = out > 0
                    stash.append((mask, out))
                    out = np.where(mask, out, op["alpha"] * out)
                elif kind == "sigmoid":
                    out = 1.0 / (1.0 + np.exp(-np.clip(out, -60.0, 60.0)))
                    stash.append(out)
                elif kind == "tanh":
                    out = np.tanh(out)
                    stash.append(out)
                else:  # softmax
                    shifted = out - out.max(axis=-1, keepdims=True)
                    exps = np.exp(shifted)
                    out = exps / exps.sum(axis=-1, keepdims=True)
                    stash.append(out)

            # loss: stacked softmax cross-entropy ---------------------- #
            # Reductions run along the last axis only, so every run
            # covers one client's slice exactly as the serial 2-D loss
            # would — bit-identical losses and gradients (module doc).
            batch_len = chunk.shape[1]
            shifted = out - out.max(axis=-1, keepdims=True)
            exp = np.exp(shifted)
            probs = exp / exp.sum(axis=-1, keepdims=True)
            picked = probs[client_rows, np.arange(batch_len)[None, :],
                           batch_y]
            log_likelihood = -np.log(np.clip(picked, 1e-12, None))
            step_losses = log_likelihood.mean(axis=-1)
            for index in range(num_clients):
                losses[index].append(float(step_losses[index]))
            grad = probs.copy()
            grad[client_rows, np.arange(batch_len)[None, :],
                 batch_y] -= 1.0
            grad = grad / batch_len

            # backward ------------------------------------------------ #
            for op in reversed(ops):
                saved = stash.pop()
                kind = op["kind"]
                if kind == "flatten":
                    grad = grad.reshape(saved)
                elif kind == "dense":
                    if op["gate"] is not None:
                        grad = grad * op["gate"][:, None, :]
                    # "+ 0.0": serial accumulates into zeroed grads,
                    # which maps -0.0 products to +0.0 — see module doc.
                    op["w_grad"] = np.matmul(grad.transpose(0, 2, 1),
                                             saved) + 0.0
                    if op["b"] is not None:
                        op["b_grad"] = grad.sum(axis=1) + 0.0
                    grad = np.matmul(grad, op["W"])
                elif kind == "relu":
                    grad = grad * saved
                elif kind == "leakyrelu":
                    mask, _ = saved
                    grad = np.where(mask, grad, op["alpha"] * grad)
                elif kind == "sigmoid":
                    grad = grad * saved * (1.0 - saved)
                elif kind == "tanh":
                    grad = grad * (1.0 - saved ** 2)
                else:  # softmax
                    inner = (grad * saved).sum(axis=-1, keepdims=True)
                    grad = saved * (grad - inner)

            # optimizer (after the full backward pass, like serial) --- #
            for op_index, op in enumerate(dense_ops):
                for slot in ("W", "b"):
                    param = op[slot]
                    if param is None:
                        continue
                    step_grad = op.pop("w_grad" if slot == "W" else "b_grad")
                    if weight_decay:
                        step_grad = step_grad + weight_decay * param
                    if momentum > 0:
                        key = (op_index, slot)
                        velocity = velocities.get(key)
                        if velocity is None:
                            velocity = np.zeros_like(param)
                        velocity = momentum * velocity \
                            - learning_rate * step_grad
                        velocities[key] = velocity
                        param += velocity
                    else:
                        param -= learning_rate * step_grad

    # ----- write back + build per-client updates ---------------------- #
    updates: List[ClientUpdate] = []
    for index, (client, job) in enumerate(members):
        final = {}
        for op in dense_ops:
            final[f"{op['name']}/weight"] = op["W"][index]
            if op["b"] is not None:
                final[f"{op['name']}/bias"] = op["b"][index]
        client.model.set_weights(final)
        client.model.clear_neuron_masks()
        updates.append(ClientUpdate(
            client_id=client.client_id,
            client_name=client.name,
            weights=client.model.get_weights(),
            num_samples=client.num_samples,
            train_loss=float(np.mean(losses[index])),
            mask=job.mask.copy() if job.mask is not None else None,
            local_epochs=epochs,
            base_cycle=job.base_cycle))
    return updates
