"""Wire codec of the worker-resident backends: delta + zero-copy framing.

Every cycle, the resident backends (``persistent`` pipes, ``sharded``
sockets) ship each slot one ``("run", _WireBatch)`` message whose bulk is
the weights table — O(weights) per slot per cycle.  This module cuts that
cost on two independent axes:

Zero-copy ndarray framing
-------------------------
A codec frame is *not* one monolithic pickle.  The message skeleton
(dataclasses, dicts, scalars) is pickled with protocol 5 and every
contiguous ndarray travels **out-of-band** as a raw ``(dtype, shape,
buffer)`` segment: encoding collects :class:`pickle.PickleBuffer` views
of the arrays' memory — no intermediate copies — and the transport writes
the segments straight to the wire (vectored ``sendmsg`` on sockets).
Decoding hands ``pickle.loads`` memoryview slices of the receive buffer,
so arrays are reconstructed as views as well.

Frame layout (the payload inside the transport's length-prefixed frame)::

    byte 0      magic 0xEC  (plain pickles start with 0x80 — the codec
                             and the legacy format coexist on one wire)
    byte 1      codec version
    byte 2      compression algorithm id (0 = none, 1 = zlib)
    byte 3      reserved (0)
    bytes 4:8   u32 segment count N
    N × 5 bytes u32 stored segment length | u8 flags (bit 0: compressed)
    ...         the N segments, back to back
    segment 0   the protocol-5 skeleton pickle:
                ``(kind, payload, delta_table_or_None)``
    segments 1+ out-of-band ndarray buffers, in pickling order

Per-segment compression (``compression="zlib"``) is applied to any
segment it actually shrinks; small or incompressible segments stay raw,
so the flag can never make a frame bigger than the uncompressed layout
(beyond the 5-byte table entry it already pays).

Delta shipping
--------------
The encoder side of a slot keeps the last weights table entry the peer
*acknowledged* (:class:`DeltaEncoderState`); the decoder side mirrors it
(:class:`DeltaDecoderState`).  A ``run`` message's weights table is then
shipped as per-parameter deltas against that base:

* ``skip`` — the parameter is bit-identical to the base: only its name
  travels (the changed-parameter bitmap of the classic scheme);
* ``xor``  — same dtype/shape but different bits: the byte-wise XOR
  against the base travels.  XOR of adjacent training snapshots zeroes
  the bytes that did not move (sign, exponent, high mantissa), which is
  exactly what ``zlib`` then folds away — so XOR mode is only chosen
  when per-segment compression is on (an uncompressed XOR is as large
  as the raw array);
* ``full`` — first contact, shape/dtype change, or non-contiguous
  array: the raw array travels (still zero-copy when contiguous).

Reconstruction is *bit-exact* by construction (XOR is an involution and
``skip`` reuses the decoder's base arrays), so delta shipping cannot
perturb the backends' bit-identical-histories guarantee.

Base synchronization is sequence-checked: every delta names the
``base_seq`` it was computed against, the decoder refuses a delta whose
base it does not hold (:class:`DeltaBaseMismatchError`) and the backend
falls back to a full snapshot.  Encoders additionally only *commit* a
new base once the peer's reply arrived, and drop the base entirely on
any transport failure or reconnect — a reconnecting or failed-over slot
always restarts from a full snapshot.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CODEC_VERSION",
    "CODEC_MAGIC",
    "COMPRESSIONS",
    "WIRE_KINDS",
    "DELTA_KINDS",
    "KIND_HELLO",
    "KIND_HELLO_ACK",
    "KIND_PING",
    "KIND_PONG",
    "KIND_BYE",
    "KIND_SHUTDOWN",
    "KIND_CLOSE",
    "KIND_RUN",
    "KIND_FOLD",
    "KIND_VFOLD",
    "KIND_MAP",
    "KIND_RESULTS",
    "KIND_OK",
    "KIND_ERROR",
    "CodecError",
    "DeltaBaseMismatchError",
    "DeltaEncoderState",
    "DeltaDecoderState",
    "EncodedFrame",
    "encode_message",
    "decode_message",
    "is_codec_frame",
    "negotiate_compression",
]

#: Version of the codec frame layout; negotiated in the hello handshake.
CODEC_VERSION = 1

#: First byte of every codec frame.  Pickle protocol 2+ streams start
#: with ``0x80``, so one byte tells the two formats apart on the wire.
CODEC_MAGIC = 0xEC

#: Supported per-segment compression algorithms, in preference order.
COMPRESSIONS = ("none", "zlib")

# --------------------------------------------------------------------- #
# wire-kind registry
# --------------------------------------------------------------------- #
# Every ``(kind, payload)`` message the worker-resident backends speak,
# across all three layers (this codec, the transport's shard server, the
# executor's dispatch and worker loops).  The constants are the spelling
# the layers must use — ``repro lint``'s wire-kind checker cross-checks
# every usage site against :data:`WIRE_KINDS`, so a kind added in one
# layer but not registered here (or deleted here while still spoken
# anywhere) fails CI instead of surfacing as a runtime
# ``MalformedMessageError``.

KIND_HELLO = "hello"          # connection opener (parent -> shard)
KIND_HELLO_ACK = "hello-ack"  # handshake answer (shard -> parent)
KIND_PING = "ping"            # liveness probe, answered inline
KIND_PONG = "pong"            # probe answer
KIND_BYE = "bye"              # polite session end (external shards)
KIND_SHUTDOWN = "shutdown"    # stop serving (auto-spawned shards)
KIND_CLOSE = "close"          # stop a pipe worker (persistent backend)
KIND_RUN = "run"              # train a wire batch of resident clients
KIND_FOLD = "fold"            # train + fold in-shard (hierarchical)
KIND_VFOLD = "vfold"          # build/train/fold a virtual-client span
KIND_MAP = "map"              # generic function map over items
KIND_RESULTS = "results"      # batch reply (run/fold/vfold)
KIND_OK = "ok"                # map reply
KIND_ERROR = "error"          # any failure reply (carries the exception)

#: Canonical kind -> role table.  Roles: ``control`` messages are
#: answered inline by the serving loop (or consumed without a reply),
#: ``request`` messages get exactly one heavy reply, ``reply`` kinds
#: only ever travel shard/worker -> parent.
WIRE_KINDS: Dict[str, str] = {
    KIND_HELLO: "control",
    KIND_HELLO_ACK: "reply",
    KIND_PING: "control",
    KIND_PONG: "reply",
    KIND_BYE: "control",
    KIND_SHUTDOWN: "control",
    KIND_CLOSE: "control",
    KIND_RUN: "request",
    KIND_FOLD: "request",
    KIND_VFOLD: "request",
    KIND_MAP: "request",
    KIND_RESULTS: "reply",
    KIND_OK: "reply",
    KIND_ERROR: "reply",
}

#: Kinds whose payload carries a ``weights_table`` eligible for delta
#: encoding against the slot's acknowledged base (see module docs).
DELTA_KINDS = frozenset((KIND_RUN, KIND_FOLD, KIND_VFOLD))

#: Compression algorithm ids as stored in frame byte 2.
_COMPRESSION_IDS = {"none": 0, "zlib": 1}
_COMPRESSION_NAMES = {value: key for key, value in _COMPRESSION_IDS.items()}

#: zlib level of the hot path: 1 trades a few percent of ratio for
#: several-fold faster compression — the codec sits in every cycle's
#: dispatch, so encode speed matters more than the last byte.
_ZLIB_LEVEL = 1

#: Segments smaller than this are never compressed (zlib's header alone
#: would eat the win, and tiny segments are metadata, not weights).
_MIN_COMPRESS_BYTES = 128

#: Pickle protocol of the skeleton.  Out-of-band buffers need >= 5.
_PICKLE_PROTOCOL = 5

_HEADER = struct.Struct(">BBBBI")
_SEGMENT_ENTRY = struct.Struct(">IB")

_FLAG_COMPRESSED = 0x01
#: The segment's bytes live in a shared-memory arena generation; the
#: wire carries only an :data:`_ARENA_REF` descriptor (persistent
#: backend's pipe frames — see :mod:`repro.fl.arena`).
_FLAG_ARENA = 0x02

#: Out-of-band segments at least this large are diverted into the
#: arena when the encoder is given one; smaller segments cost less on
#: the pipe than through a descriptor + mapping lookup.
_MIN_ARENA_BYTES = 512

#: Wire layout of one arena descriptor: byte offset and length within
#: the generation, then the length of the ascii generation name that
#: follows inline.
_ARENA_REF = struct.Struct(">QQH")


class CodecError(RuntimeError):
    """A codec frame could not be decoded (malformed or unsupported)."""


class DeltaBaseMismatchError(CodecError):
    """A delta-encoded weights table referenced a base the decoder lacks.

    Recoverable by protocol: the decoder reports it instead of applying
    the delta, and the encoder re-sends the batch as a full snapshot.
    """


def is_codec_frame(blob) -> bool:
    """Whether a payload is a codec frame (vs. a plain pickle)."""
    if len(blob) == 0:
        return False
    first = blob[0]
    if isinstance(first, (bytes, bytearray)):  # pragma: no cover - py2 relic
        first = first[0]
    return first == CODEC_MAGIC


def negotiate_compression(requested: Any) -> str:
    """The compression a peer's hello gets: requested if supported.

    Unknown or malformed requests degrade to ``"none"`` rather than
    failing the handshake — compression is an optimization, not a
    compatibility requirement.
    """
    return requested if requested in COMPRESSIONS else "none"


# --------------------------------------------------------------------- #
# delta state
# --------------------------------------------------------------------- #

class DeltaEncoderState:
    """Encoder-side half of one slot's delta channel.

    ``base`` is the weights mapping the peer is known to hold (``None``
    until the first committed batch, and again after any failure), and
    ``seq`` the monotonically growing sequence number the peer last
    acknowledged holding.  :func:`encode_message` never mutates the
    state — the backend calls :meth:`commit` only once the peer's reply
    proves the frame was decoded, and :meth:`reset` on any transport
    failure, reconnect or close, which forces the next batch back to a
    full snapshot.
    """

    def __init__(self) -> None:
        self.base: Optional[Dict[str, np.ndarray]] = None
        self.seq = 0

    def commit(self, base: Optional[Dict[str, np.ndarray]],
               seq: Optional[int],
               array_cache: Optional[Dict[int, np.ndarray]] = None) -> None:
        """Adopt the base/seq a successfully answered frame established.

        The base arrays are *copied*: the encoder's view of what the
        peer holds must stay frozen even if the caller later mutates the
        snapshot arrays in place.  ``array_cache`` (id(source) → frozen
        copy) lets a caller committing the same shared snapshot into
        several slots pay for each array copy once — the cache must not
        outlive the batch that owns the source arrays.
        """
        if seq is None:
            return
        if base is not None:
            if array_cache is None:
                self.base = {name: np.array(value, copy=True)
                             for name, value in base.items()}
            else:
                # get-then-copy, not setdefault: setdefault would build
                # the copy before the lookup and discard it on a hit,
                # re-introducing the per-slot O(weights) work this
                # cache exists to share.
                frozen = {}
                for name, value in base.items():
                    cached = array_cache.get(id(value))
                    if cached is None:
                        cached = np.array(value, copy=True)
                        array_cache[id(value)] = cached
                    frozen[name] = cached
                self.base = frozen
        self.seq = seq

    def reset(self) -> None:
        """Forget the base; the next encode ships a full snapshot."""
        self.base = None


class DeltaDecoderState:
    """Decoder-side half: the base the *encoder* believes we hold."""

    def __init__(self) -> None:
        self.base: Optional[Dict[str, np.ndarray]] = None
        self.seq = 0


# --------------------------------------------------------------------- #
# delta encoding of one weights table
# --------------------------------------------------------------------- #

#: Per-parameter wire modes.
_MODE_SKIP = 0   # bit-identical to the base: nothing travels
_MODE_XOR = 1    # same dtype/shape: byte-wise XOR against the base
_MODE_FULL = 2   # raw array (first contact / shape change / fallback)


class _DeltaTable:
    """Wire form of a weights table (picklable, arrays out-of-band).

    ``entries`` mirrors the table: one list per table entry, each item a
    ``(name, mode, array_or_meta)`` triple where ``array_or_meta`` is
    ``None`` for ``skip``, the raw ndarray for ``full``, and ``(dtype
    string, shape, order, xor ndarray)`` for ``xor``.  ``base_seq`` is
    ``None`` for a table that needs no decoder base (all-full).
    """

    __slots__ = ("base_seq", "new_seq", "entries")

    def __init__(self, base_seq: Optional[int], new_seq: int,
                 entries: List[List[Tuple]]) -> None:
        self.base_seq = base_seq
        self.new_seq = new_seq
        self.entries = entries

    def __reduce__(self):
        return (_DeltaTable, (self.base_seq, self.new_seq, self.entries))


def _byte_view(array: np.ndarray) -> Optional[np.ndarray]:
    """Flat ``uint8`` view of an array's memory, or ``None``.

    Only contiguous numeric arrays have a stable, copy-free byte view;
    anything else (object dtypes, slices with gaps) falls back to
    ``full`` mode.
    """
    if array.dtype.hasobject:
        return None
    if array.flags.c_contiguous:
        pass
    elif array.flags.f_contiguous:
        array = array.T
    else:
        return None
    if array.size == 0:
        return array.view(np.uint8).reshape(-1)
    return array.reshape(-1).view(np.uint8)


def _array_order(array: np.ndarray) -> str:
    """Memory order tag stored with an ``xor`` entry."""
    if array.flags.c_contiguous:
        return "C"
    return "F"


def _encode_entry(value: np.ndarray, reference: Optional[np.ndarray],
                  prefer_xor: bool) -> Tuple[int, Any]:
    """``(mode, payload)`` of one parameter against its base array."""
    if (reference is None or reference.dtype != value.dtype
            or reference.shape != value.shape):
        return _MODE_FULL, value
    value_bytes = _byte_view(value)
    base_bytes = _byte_view(reference)
    if (value_bytes is None or base_bytes is None
            or _array_order(value) != _array_order(reference)):
        return _MODE_FULL, value
    delta = np.bitwise_xor(value_bytes, base_bytes)
    if not delta.any():
        return _MODE_SKIP, None
    if prefer_xor:
        return _MODE_XOR, (value.dtype.str, value.shape,
                           _array_order(value), delta)
    return _MODE_FULL, value


def _encode_table(table: Sequence[Dict[str, np.ndarray]],
                  state: DeltaEncoderState,
                  force_full: bool,
                  prefer_xor: bool,
                  delta_cache: Optional[Dict[Tuple[int, int], Tuple[int, Any]]]
                  = None) -> Tuple[_DeltaTable,
                                   Optional[Dict[str, np.ndarray]],
                                   int]:
    """Delta-encode one weights table against an encoder state.

    ``prefer_xor`` selects XOR mode for changed parameters — worth it
    only when per-segment compression runs afterwards (an uncompressed
    XOR is exactly as large as the raw array, plus metadata), so the
    uncompressed codec ships changed parameters raw.  ``delta_cache``
    ((id(value), id(base)) → (mode, payload)) dedups the O(weights)
    XOR/equality work when the same shared snapshot is encoded against
    the same base arrays for several slots; like ``commit``'s array
    cache it must not outlive the batch.  Returns ``(wire table,
    pending base, pending seq)``; the caller commits the pending pair
    into ``state`` only after the peer replied.
    """
    base = None if force_full else state.base
    new_seq = state.seq + 1
    entries: List[List[Tuple]] = []
    for snapshot in table:
        entry: List[Tuple] = []
        for name, value in snapshot.items():
            value = np.asarray(value)
            reference = base.get(name) if base is not None else None
            if delta_cache is None or reference is None:
                mode, payload = _encode_entry(value, reference, prefer_xor)
            else:
                key = (id(value), id(reference))
                cached = delta_cache.get(key)
                if cached is None:
                    cached = _encode_entry(value, reference, prefer_xor)
                    delta_cache[key] = cached
                mode, payload = cached
            entry.append((name, mode, payload))
        entries.append(entry)
    uses_base = any(mode in (_MODE_SKIP, _MODE_XOR)
                    for entry in entries for _, mode, _ in entry)
    wire = _DeltaTable(state.seq if uses_base else None, new_seq, entries)
    new_base = dict(table[0]) if table else None
    return wire, new_base, new_seq


def _decode_table(wire: _DeltaTable,
                  state: DeltaDecoderState) -> List[Dict[str, np.ndarray]]:
    """Reconstruct a weights table, committing the decoder state.

    Raises :class:`DeltaBaseMismatchError` — *before* touching the state
    — when the table references a base this decoder does not hold.
    """
    if wire.base_seq is not None:
        if state.base is None or state.seq != wire.base_seq:
            raise DeltaBaseMismatchError(
                f"delta batch was encoded against base seq {wire.base_seq}, "
                f"but this decoder holds "
                f"{state.seq if state.base is not None else 'no base'}")
    table: List[Dict[str, np.ndarray]] = []
    for entry in wire.entries:
        snapshot: Dict[str, np.ndarray] = {}
        for name, mode, payload in entry:
            if mode == _MODE_FULL:
                snapshot[name] = payload
            elif mode == _MODE_SKIP:
                base_value = (state.base.get(name)
                              if state.base is not None else None)
                if base_value is None:
                    raise DeltaBaseMismatchError(
                        f"delta batch skips parameter {name!r}, which the "
                        f"decoder's base does not hold")
                snapshot[name] = base_value
            elif mode == _MODE_XOR:
                dtype_str, shape, order, delta = payload
                base_value = (state.base.get(name)
                              if state.base is not None else None)
                base_bytes = (None if base_value is None
                              else _byte_view(base_value))
                if base_bytes is None or base_bytes.shape != delta.shape:
                    raise DeltaBaseMismatchError(
                        f"delta for parameter {name!r} does not match the "
                        f"decoder's base")
                raw = np.bitwise_xor(delta, base_bytes)
                array = raw.view(np.dtype(dtype_str))
                snapshot[name] = array.reshape(shape, order=order)
            else:
                raise CodecError(f"unknown delta mode {mode!r}")
        table.append(snapshot)
    if table:
        state.base = dict(table[0])
    state.seq = wire.new_seq
    return table


# --------------------------------------------------------------------- #
# frames
# --------------------------------------------------------------------- #

class EncodedFrame:
    """One encoded message, ready for the transport.

    ``segments`` are the raw buffers to write after the frame header
    (memoryviews where encoding was zero-copy).  ``pending_base`` /
    ``pending_seq`` carry the delta state the sender must commit once
    the peer acknowledged the frame (``None`` when no delta state was
    involved).  ``skeleton_bytes`` / ``array_bytes`` break the payload
    down for diagnostics — oversized-frame errors name them.
    """

    __slots__ = ("kind", "segments", "header", "pending_base",
                 "pending_seq", "skeleton_bytes", "array_bytes")

    def __init__(self, kind: str, segments: List[Any], header: bytes,
                 pending_base: Optional[Dict[str, np.ndarray]],
                 pending_seq: Optional[int], skeleton_bytes: int,
                 array_bytes: int) -> None:
        self.kind = kind
        self.segments = segments
        self.header = header
        self.pending_base = pending_base
        self.pending_seq = pending_seq
        self.skeleton_bytes = skeleton_bytes
        self.array_bytes = array_bytes

    @property
    def total_bytes(self) -> int:
        """Payload size on the wire (header + every segment)."""
        return len(self.header) + sum(len(segment)
                                      for segment in self.segments)

    def buffers(self) -> List[Any]:
        """Header + segments, in wire order (for vectored sends)."""
        return [self.header] + list(self.segments)

    def tobytes(self) -> bytes:
        """The frame as one contiguous payload (pipe transports).

        ``join`` consumes the segment memoryviews directly — one copy
        total, not one per segment plus the join.
        """
        return b"".join(self.buffers())

    def describe(self) -> str:
        """Size breakdown used by oversized-frame diagnostics."""
        return (f"{self.total_bytes} bytes: skeleton (specs/masks/"
                f"metadata) {self.skeleton_bytes} B + ndarray payload "
                f"(weights/deltas) {self.array_bytes} B in "
                f"{len(self.segments) - 1} segments")


def _strip_weights_table(payload: Any):
    """Detach ``payload.weights_table`` without mutating the original."""
    import copy

    stripped = copy.copy(payload)
    stripped.weights_table = None
    return stripped


def encode_message(message: Tuple[str, Any], *,
                   compression: str = "none",
                   delta_state: Optional[DeltaEncoderState] = None,
                   force_full: bool = False,
                   delta_cache: Optional[Dict] = None,
                   arena=None) -> EncodedFrame:
    """Encode one ``(kind, payload)`` message into a codec frame.

    With ``delta_state`` and a ``run`` payload carrying a
    ``weights_table``, the table is delta-encoded against the state (see
    module docs); ``force_full`` bypasses the base (the mismatch-recovery
    resend) and ``delta_cache`` shares the per-array delta work across
    several encodes of one batch (see :func:`_encode_table`).  The state
    itself is never mutated here — commit the returned frame's
    ``pending_base``/``pending_seq`` after the peer replied.

    ``arena`` (a :class:`~repro.fl.arena.WeightArenaWriter`) diverts
    every out-of-band segment of at least ``_MIN_ARENA_BYTES`` into the
    writer's staging generation, replacing its wire bytes with a small
    descriptor — the caller must :meth:`publish
    <repro.fl.arena.WeightArenaWriter.publish>` the writer before the
    frame is dispatched.  Identical source arrays shared by several
    frames of one batch are staged once (the writer dedups them).
    """
    if compression not in COMPRESSIONS:
        raise ValueError(f"unknown wire compression {compression!r}; "
                         f"available: {COMPRESSIONS}")
    kind, payload = message
    table_wire = None
    pending_base: Optional[Dict[str, np.ndarray]] = None
    pending_seq: Optional[int] = None
    if (delta_state is not None and kind in DELTA_KINDS
            and getattr(payload, "weights_table", None) is not None):
        table_wire, pending_base, pending_seq = _encode_table(
            payload.weights_table, delta_state, force_full,
            prefer_xor=compression != "none", delta_cache=delta_cache)
        payload = _strip_weights_table(payload)
    out_of_band: List[pickle.PickleBuffer] = []
    skeleton = pickle.dumps((kind, payload, table_wire), _PICKLE_PROTOCOL,
                            buffer_callback=out_of_band.append)
    segments: List[Any] = [skeleton]
    segments.extend(buffer.raw() for buffer in out_of_band)
    entry_flags = bytearray(len(segments))
    if arena is not None:
        # The skeleton (segment 0) stays on the wire: it is small and
        # the decoder needs it before it can resolve anything.
        for index in range(1, len(segments)):
            segment = segments[index]
            if len(segment) < _MIN_ARENA_BYTES:
                continue
            name, seg_offset, seg_length = arena.stage_segment(segment)
            encoded_name = name.encode("ascii")
            segments[index] = (_ARENA_REF.pack(seg_offset, seg_length,
                                               len(encoded_name))
                               + encoded_name)
            entry_flags[index] = _FLAG_ARENA
    compress = compression == "zlib"
    if compress:
        for index, segment in enumerate(segments):
            if entry_flags[index] or len(segment) < _MIN_COMPRESS_BYTES:
                continue
            # zlib consumes the buffer protocol directly — no staging
            # copy of the (possibly O(weights)) segment.
            packed = zlib.compress(segment, _ZLIB_LEVEL)
            if len(packed) < len(segment):
                segments[index] = packed
                entry_flags[index] = _FLAG_COMPRESSED
    header = bytearray(_HEADER.pack(CODEC_MAGIC, CODEC_VERSION,
                                    _COMPRESSION_IDS[compression], 0,
                                    len(segments)))
    for segment, flags in zip(segments, entry_flags):
        header += _SEGMENT_ENTRY.pack(len(segment), flags)
    skeleton_bytes = len(segments[0])
    array_bytes = sum(len(segment) for segment in segments[1:])
    return EncodedFrame(kind, segments, bytes(header), pending_base,
                        pending_seq, skeleton_bytes, array_bytes)


def _resolve_arena_segment(segment: memoryview, arena) -> memoryview:
    """Swap an arena descriptor for its shared-memory view."""
    if arena is None:
        raise CodecError(
            "frame references a shared-memory arena segment but this "
            "peer has no arena reader (arenas are single-host — "
            "persistent-backend pipes only)")
    try:
        seg_offset, seg_length, name_length = _ARENA_REF.unpack_from(segment)
    except struct.error as exc:
        raise CodecError(f"truncated arena descriptor: {exc}") from None
    name_bytes = bytes(segment[_ARENA_REF.size:
                               _ARENA_REF.size + name_length])
    if len(name_bytes) != name_length:
        raise CodecError("truncated arena generation name")
    try:
        return arena.resolve_segment(name_bytes.decode("ascii"),
                                     seg_offset, seg_length)
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"cannot resolve arena segment: "
                         f"{type(exc).__name__}: {exc}") from None


def _validated_message(obj: Any) -> Tuple[str, Any]:
    if (not isinstance(obj, tuple) or len(obj) != 2
            or not isinstance(obj[0], str)):
        raise CodecError(f"expected a (kind, payload) tuple, "
                         f"got {type(obj).__name__}")
    return obj


def decode_message(blob, *,
                   delta_state: Optional[DeltaDecoderState] = None,
                   arena=None) -> Tuple[str, Any]:
    """Decode one frame payload (codec frame *or* plain pickle).

    Codec frames are decoded zero-copy: array segments are handed to the
    unpickler as memoryview slices of ``blob`` (pass a writable buffer —
    e.g. a memoryview over a ``bytearray`` — to get writable arrays).
    Plain pickles (legacy peers, control messages) fall through to
    ``pickle.loads``.  Raises :class:`CodecError` on malformed frames
    and :class:`DeltaBaseMismatchError` when a delta references a base
    ``delta_state`` does not hold.

    ``arena`` (a :class:`~repro.fl.arena.ArenaReader`) resolves
    arena-flagged segments into zero-copy shared-memory views; a frame
    carrying arena descriptors fails with :class:`CodecError` when no
    reader is supplied (socket peers never negotiate arenas — they are
    single-host by construction).
    """
    if not is_codec_frame(blob):
        try:
            return _validated_message(pickle.loads(blob))
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(f"frame payload does not unpickle: "
                             f"{exc}") from None
    view = memoryview(blob)
    try:
        magic, version, compression_id, _, count = _HEADER.unpack_from(view)
    except struct.error as exc:
        raise CodecError(f"truncated codec header: {exc}") from None
    if version != CODEC_VERSION:
        raise CodecError(f"unsupported codec version {version} "
                         f"(this side speaks {CODEC_VERSION})")
    if compression_id not in _COMPRESSION_NAMES:
        raise CodecError(f"unknown compression id {compression_id}")
    offset = _HEADER.size
    entries = []
    for _ in range(count):
        try:
            length, flags = _SEGMENT_ENTRY.unpack_from(view, offset)
        except struct.error as exc:
            raise CodecError(f"truncated segment table: {exc}") from None
        offset += _SEGMENT_ENTRY.size
        entries.append((length, flags))
    segments: List[Any] = []
    for length, flags in entries:
        if offset + length > len(view):
            raise CodecError(
                f"segment of {length} bytes overruns the "
                f"{len(view)}-byte frame")
        segment: Any = view[offset:offset + length]
        offset += length
        if flags & _FLAG_ARENA:
            segment = _resolve_arena_segment(segment, arena)
        elif flags & _FLAG_COMPRESSED:
            try:
                # bytearray keeps decompressed arrays writable, matching
                # the uncompressed path's behavior.
                segment = memoryview(bytearray(
                    zlib.decompress(bytes(segment))))
            except zlib.error as exc:
                raise CodecError(f"segment does not decompress: "
                                 f"{exc}") from None
        segments.append(segment)
    if offset != len(view):
        raise CodecError(f"{len(view) - offset} trailing bytes after the "
                         f"last segment")
    if not segments:
        raise CodecError("codec frame carries no segments")
    try:
        obj = pickle.loads(segments[0], buffers=iter(segments[1:]))
    except DeltaBaseMismatchError:
        raise
    except Exception as exc:
        raise CodecError(f"codec skeleton does not unpickle: "
                         f"{exc}") from None
    if not isinstance(obj, tuple) or len(obj) != 3:
        raise CodecError(f"codec skeleton is not a (kind, payload, delta) "
                         f"triple, got {type(obj).__name__}")
    kind, payload, table_wire = obj
    if not isinstance(kind, str):
        raise CodecError(f"message kind is {type(kind).__name__}, "
                         f"expected str")
    if table_wire is not None:
        if not isinstance(table_wire, _DeltaTable):
            raise CodecError("delta slot does not hold a delta table")
        if delta_state is None:
            delta_state = DeltaDecoderState()
        # A structurally broken table (malformed entry triples, a
        # payload object without a weights_table attribute, …) must
        # surface as CodecError so a garbage frame degrades to an error
        # reply instead of crashing a long-running shard server.
        try:
            payload.weights_table = _decode_table(table_wire, delta_state)
        except (DeltaBaseMismatchError, CodecError):
            raise
        except Exception as exc:
            raise CodecError(
                f"malformed delta table: {type(exc).__name__}: "
                f"{exc}") from None
    return kind, payload
