"""Training history: the record every experiment and benchmark reads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["CycleRecord", "TrainingHistory"]


@dataclass
class CycleRecord:
    """Metrics captured at the end of one parameter-aggregation cycle.

    ``dropped_clients`` is the audit trail of graceful degradation
    (``on_shard_failure="degrade"``): exactly which client indices were
    excluded from this cycle because their shard was down — empty on
    every undisturbed cycle, so abort/rebalance histories are unchanged.
    """

    cycle: int
    sim_time_s: float
    global_accuracy: float
    mean_train_loss: float
    participating_clients: int
    straggler_fraction_trained: float = 1.0
    extra: Dict[str, float] = field(default_factory=dict)
    dropped_clients: Tuple[int, ...] = ()


@dataclass
class TrainingHistory:
    """Ordered list of :class:`CycleRecord` plus convenience accessors."""

    strategy_name: str = ""
    records: List[CycleRecord] = field(default_factory=list)

    def append(self, record: CycleRecord) -> None:
        """Add a cycle record (cycles must be appended in order)."""
        if self.records and record.cycle <= self.records[-1].cycle:
            raise ValueError("cycle records must be appended in increasing order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # series accessors
    # ------------------------------------------------------------------ #
    def cycles(self) -> List[int]:
        """Aggregation-cycle indices."""
        return [record.cycle for record in self.records]

    def accuracies(self) -> List[float]:
        """Global-model accuracy per cycle."""
        return [record.global_accuracy for record in self.records]

    def times_s(self) -> List[float]:
        """Simulated wall-clock time (seconds) at the end of each cycle."""
        return [record.sim_time_s for record in self.records]

    def losses(self) -> List[float]:
        """Mean local training loss per cycle."""
        return [record.mean_train_loss for record in self.records]

    # ------------------------------------------------------------------ #
    # summary metrics
    # ------------------------------------------------------------------ #
    def final_accuracy(self) -> float:
        """Accuracy after the last recorded cycle (0 when empty)."""
        return self.records[-1].global_accuracy if self.records else 0.0

    def best_accuracy(self) -> float:
        """Best accuracy over the run (0 when empty)."""
        if not self.records:
            return 0.0
        return max(record.global_accuracy for record in self.records)

    def converged_accuracy(self, window: int = 3) -> float:
        """Mean accuracy over the last ``window`` cycles (the paper's
        "convergence accuracy")."""
        if not self.records:
            return 0.0
        tail = self.records[-window:]
        return sum(record.global_accuracy for record in tail) / len(tail)

    def cycles_to_accuracy(self, target: float) -> Optional[int]:
        """First cycle index reaching ``target`` accuracy (None if never)."""
        for record in self.records:
            if record.global_accuracy >= target:
                return record.cycle
        return None

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds to reach ``target`` accuracy (None if never)."""
        for record in self.records:
            if record.global_accuracy >= target:
                return record.sim_time_s
        return None

    def total_time(self) -> float:
        """Simulated seconds for the entire run."""
        return self.records[-1].sim_time_s if self.records else 0.0

    def accuracy_variance(self, window: int = 5) -> float:
        """Variance of the accuracy curve over its last ``window`` cycles.

        Used by the Fig. 6 analysis (aggregation optimization reduces the
        fluctuation caused by partial-model aggregation).
        """
        values = self.accuracies()[-window:]
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return sum((value - mean) ** 2 for value in values) / len(values)

    def summary(self) -> Dict[str, float]:
        """Compact summary dictionary used by the reporting helpers."""
        return {
            "strategy": self.strategy_name,
            "cycles": float(len(self.records)),
            "final_accuracy": self.final_accuracy(),
            "best_accuracy": self.best_accuracy(),
            "converged_accuracy": self.converged_accuracy(),
            "total_time_s": self.total_time(),
        }
