"""Declarative chaos scenarios: JSON specs composing faults over a run.

A scenario spec describes one federated run *and* everything that goes
wrong during it — fleet churn (clients joining/leaving per cycle),
shard crashes, straggler waves, flaky links — over the hardware presets
of :mod:`repro.hardware.presets`, executed through the existing
strategies.  ``repro scenario run examples/scenario_shard_kill.json``
is the CLI entry point; :func:`run_scenario` the library one.

Spec format (every section optional unless noted)::

    {
      "name": "shard-kill-rebalance",
      "seed": 7,
      "cycles": 4,                       # required
      "fleet": {
        "num_capable": 2, "num_stragglers": 1,
        "samples_per_client": 40,
        "batch_size": 20, "local_epochs": 1, "learning_rate": 0.1,
        "workload_scale": 200.0
      },
      "strategy": {"name": "sync_fl"},
      "backend": {
        "name": "sharded", "workers": 2,
        "on_failure": "rebalance",       # abort | rebalance | degrade
        "aggregation": "flat",
        "heartbeat_interval": null,
        "retry": { ... RetryPolicy spec ... }
      },
      "faults": { ... FaultPlan spec, see repro.fl.chaos ... },
      "churn": [
        {"cycle": 2, "leave": [2]},      # deactivate clients
        {"cycle": 3, "join": 1},         # add fresh clients
        {"cycle": 4, "rejoin": [2]}      # reactivate departed clients
      ]
    }

Determinism contract
--------------------
A scenario is replayable end to end: the fleet is built from seeds
derived from the spec's ``seed``, every fault decision comes from the
:class:`~repro.fl.chaos.FaultPlan`'s seeded streams, and the event log
records cycle indices, never timestamps — so the same ``(seed, spec)``
produces the identical event log twice, and under
``on_failure="rebalance"`` the history is bit-identical to the same
scenario on the serial backend with no faults at all (which is what
``repro scenario run --assert-serial`` checks).
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines import (AFOStrategy, AsynchronousFLStrategy,
                         SynchronousFLStrategy)
from ..data.synthetic import SyntheticImageSpec, make_classification_images
from ..hardware.presets import build_fleet, get_device
from ..nn.layers import Dense, Flatten, ReLU
from ..nn.model import Sequential
from .chaos import ChaosController, FaultPlan
from .client import ClientConfig, ClientSpec, FLClient
from .history import TrainingHistory
from .simulation import FederatedSimulation, build_simulation
from .strategy import CycleOutcome, FederatedStrategy

__all__ = [
    "SCENARIO_STRATEGIES",
    "ScenarioResult",
    "load_spec",
    "run_scenario",
    "compare_histories",
]

#: Strategies a scenario may name (spec key ``strategy.name``); every
#: remaining key of the ``strategy`` object is passed to the
#: constructor unchanged.
SCENARIO_STRATEGIES = {
    "sync_fl": SynchronousFLStrategy,
    "async_fl": AsynchronousFLStrategy,
    "afo": AFOStrategy,
}

#: The synthetic workload every scenario trains on — the test suite's
#: tiny 4-class image family: fast enough that a multi-cycle scenario
#: with real shard processes stays in CI budgets, real enough that
#: accuracies move and aggregation re-weighting is observable.
_IMAGE_SPEC = SyntheticImageSpec(
    name="scenario", image_shape=(1, 8, 8), num_classes=4, separation=1.2,
    noise_std=0.5, max_shift=1, label_noise=0.0, prototypes_per_class=1,
    smoothness=2)

#: Device preset assigned to clients joining mid-run (churn ``join``
#: entries may override it per entry).
_DEFAULT_JOIN_PRESET = "jetson-nano-gpu"


def _scenario_model(seed: int) -> Sequential:
    """Dense classifier over the scenario image family (picklable)."""
    generator = np.random.default_rng(seed)
    return Sequential([
        Flatten(name="flatten"),
        Dense(64, 16, rng=generator, name="fc1"),
        ReLU(name="relu1"),
        Dense(16, 8, rng=generator, name="fc2"),
        ReLU(name="relu2"),
        Dense(8, 4, rng=generator, name="output"),
    ], name="scenario-mlp")


def _pop_section(spec: Dict[str, Any], key: str) -> Dict[str, Any]:
    section = spec.pop(key, {})
    if not isinstance(section, dict):
        raise ValueError(f"scenario section {key!r} must be an object, "
                         f"not {type(section).__name__}")
    return dict(section)


def _reject_unknown(section: Dict[str, Any], where: str,
                    known: Sequence[str]) -> None:
    if section:
        raise ValueError(f"unknown {where} key {sorted(section)[0]!r}; "
                         f"available: {', '.join(known)}")


@dataclass
class _ChurnEvent:
    """One fleet mutation scheduled for the start of a cycle."""

    cycle: int
    leave: Tuple[int, ...] = ()
    rejoin: Tuple[int, ...] = ()
    join: int = 0
    preset: str = _DEFAULT_JOIN_PRESET


def _parse_churn(entries: Any) -> List[_ChurnEvent]:
    if entries is None:
        return []
    churn: List[_ChurnEvent] = []
    for entry in entries:
        entry = dict(entry)
        cycle = int(entry.pop("cycle"))
        if cycle < 1:
            raise ValueError("churn cycle must be positive")
        event = _ChurnEvent(
            cycle=cycle,
            leave=tuple(int(i) for i in entry.pop("leave", ())),
            rejoin=tuple(int(i) for i in entry.pop("rejoin", ())),
            join=int(entry.pop("join", 0)),
            preset=str(entry.pop("preset", _DEFAULT_JOIN_PRESET)))
        if event.join < 0:
            raise ValueError("churn join count must be non-negative")
        get_device(event.preset)
        _reject_unknown(entry, "churn", ("cycle", "leave", "rejoin",
                                         "join", "preset"))
        churn.append(event)
    return churn


@dataclass
class ScenarioResult:
    """What one scenario run produced.

    ``events`` is the append-only per-run log: every injected fault and
    churn action plus one ``cycle_end`` entry per cycle (accuracy,
    loss, participants, dropped clients) — plain dicts, cycle-indexed,
    JSONL-serializable via :meth:`write_events`.
    """

    name: str
    seed: int
    history: TrainingHistory
    events: List[Dict[str, Any]] = field(default_factory=list)

    def write_events(self, path: Union[str, Path]) -> None:
        """Persist the event log as JSON Lines (one event per line)."""
        lines = [json.dumps(event, sort_keys=True) for event in self.events]
        Path(path).write_text("\n".join(lines) + "\n" if lines else "",
                              encoding="utf-8")


class _ScenarioStrategy(FederatedStrategy):
    """Wrap a strategy with per-cycle churn and fault execution.

    Before each inner cycle: apply the cycle's churn (recorded in the
    event log) and let the chaos controller execute the cycle's
    scheduled kills and rotate its fault streams.  The inner strategy
    never knows it is being tormented — that is the point: scenarios
    exercise the substrate underneath unmodified strategies.
    """

    def __init__(self, inner: FederatedStrategy,
                 controller: ChaosController,
                 churn: Sequence[_ChurnEvent],
                 model_seed: int, data_seed: int,
                 samples_per_client: int,
                 client_config: ClientConfig) -> None:
        self.inner = inner
        self.name = inner.name
        self.controller = controller
        self.churn = tuple(churn)
        self.model_seed = model_seed
        self.data_seed = data_seed
        self.samples_per_client = samples_per_client
        self.client_config = client_config

    def setup(self, sim: FederatedSimulation) -> None:
        self.inner.setup(sim)

    def _join_client(self, sim: FederatedSimulation, preset: str) -> int:
        """Build one fresh client on ``preset`` and add it to the fleet.

        The dataset seed derives from the fleet position, so a scenario
        replay (and its serial reference run) builds bit-identical
        joiners.
        """
        position = len(sim.clients)
        dataset = make_classification_images(
            self.samples_per_client, _IMAGE_SPEC,
            np.random.default_rng(self.data_seed + position))
        spec = ClientSpec(
            client_id=position, dataset=dataset, device=get_device(preset),
            model_factory=functools.partial(_scenario_model,
                                            self.model_seed),
            config=self.client_config, seed=self.data_seed + position)
        return sim.add_client(FLClient.from_spec(spec))

    def execute_cycle(self, cycle: int,
                      sim: FederatedSimulation) -> CycleOutcome:
        self.controller.begin_cycle(cycle)
        for event in self.churn:
            if event.cycle != cycle:
                continue
            for index in event.leave:
                sim.deactivate_client(index)
                self.controller.record("client_leave", client=index)
            for index in event.rejoin:
                sim.reactivate_client(index)
                self.controller.record("client_rejoin", client=index)
            for _ in range(event.join):
                index = self._join_client(sim, event.preset)
                self.controller.record("client_join", client=index,
                                       preset=event.preset)
        return self.inner.execute_cycle(cycle, sim)


def load_spec(source: Union[str, Path, Dict[str, Any]]) -> Dict[str, Any]:
    """Load a scenario spec from a path (or pass a dict through)."""
    if isinstance(source, dict):
        return dict(source)
    path = Path(source)
    if not path.is_file():
        raise ValueError(f"scenario spec {str(path)!r} does not exist")
    try:
        spec = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"scenario spec {str(path)!r} is not valid "
                         f"JSON: {exc}") from None
    if not isinstance(spec, dict):
        raise ValueError(f"scenario spec {str(path)!r} must contain a "
                         f"JSON object")
    return spec


def run_scenario(source: Union[str, Path, Dict[str, Any]], *,
                 seed: Optional[int] = None,
                 backend_override: Optional[str] = None,
                 inject: bool = True,
                 verbose: bool = False) -> ScenarioResult:
    """Execute one scenario spec and return its history + event log.

    ``seed`` overrides the spec's seed (fleet, faults and jitter all
    derive from it).  ``backend_override``/``inject=False`` run the
    same scenario on another backend with fault injection disabled —
    the serial reference the ``--assert-serial`` check compares
    against (churn still applies; it is fleet composition, not a
    fault).
    """
    spec = load_spec(source)
    name = str(spec.pop("name", "scenario"))
    spec_seed = spec.pop("seed", 0)
    run_seed = int(spec_seed if seed is None else seed)
    if "cycles" not in spec:
        raise ValueError("scenario spec needs a 'cycles' count")
    cycles = int(spec.pop("cycles"))
    if cycles <= 0:
        raise ValueError("cycles must be positive")

    fleet_spec = _pop_section(spec, "fleet")
    strategy_spec = _pop_section(spec, "strategy")
    backend_spec = _pop_section(spec, "backend")
    fault_spec = _pop_section(spec, "faults")
    churn = _parse_churn(spec.pop("churn", None))
    _reject_unknown(spec, "scenario", ("name", "seed", "cycles", "fleet",
                                       "strategy", "backend", "faults",
                                       "churn"))

    # ------------------------------------------------------------------ #
    # fleet
    # ------------------------------------------------------------------ #
    num_capable = int(fleet_spec.pop("num_capable", 2))
    num_stragglers = int(fleet_spec.pop("num_stragglers", 1))
    samples_per_client = int(fleet_spec.pop("samples_per_client", 40))
    test_samples = int(fleet_spec.pop("test_samples", 60))
    workload_scale = float(fleet_spec.pop("workload_scale", 200.0))
    client_config = ClientConfig(
        batch_size=int(fleet_spec.pop("batch_size", 20)),
        local_epochs=int(fleet_spec.pop("local_epochs", 1)),
        learning_rate=float(fleet_spec.pop("learning_rate", 0.1)))
    _reject_unknown(fleet_spec, "fleet",
                    ("num_capable", "num_stragglers", "samples_per_client",
                     "test_samples", "workload_scale", "batch_size",
                     "local_epochs", "learning_rate"))
    if num_capable + num_stragglers <= 0:
        raise ValueError("fleet must contain at least one client")
    if samples_per_client <= 0:
        raise ValueError("samples_per_client must be positive")
    devices = build_fleet(num_capable, num_stragglers)
    datasets = [make_classification_images(
                    samples_per_client, _IMAGE_SPEC,
                    np.random.default_rng(run_seed + position))
                for position in range(len(devices))]
    test_dataset = make_classification_images(
        test_samples, _IMAGE_SPEC,
        np.random.default_rng(run_seed + 10_000))
    model_factory = functools.partial(_scenario_model, run_seed + 7)

    # ------------------------------------------------------------------ #
    # strategy
    # ------------------------------------------------------------------ #
    strategy_name = str(strategy_spec.pop("name", "sync_fl"))
    try:
        strategy_cls = SCENARIO_STRATEGIES[strategy_name]
    except KeyError:
        raise ValueError(
            f"unknown scenario strategy {strategy_name!r}; available: "
            f"{tuple(sorted(SCENARIO_STRATEGIES))}") from None
    inner = strategy_cls(**strategy_spec)

    # ------------------------------------------------------------------ #
    # backend + faults
    # ------------------------------------------------------------------ #
    backend_name = backend_spec.pop("name", "serial")
    backend_knobs = {
        "max_workers": backend_spec.pop("workers", None),
        "shards": backend_spec.pop("shards", None),
        "on_shard_failure": backend_spec.pop("on_failure", None),
        "heartbeat_interval": backend_spec.pop("heartbeat_interval", None),
        "wire_compression": backend_spec.pop("wire_compression", None),
        "delta_shipping": backend_spec.pop("delta_shipping", None),
        "aggregation": backend_spec.pop("aggregation", None),
        "fusion": backend_spec.pop("fusion", None),
        "retry_policy": backend_spec.pop("retry", None),
        "connect_timeout": backend_spec.pop("connect_timeout", None),
    }
    _reject_unknown(backend_spec, "backend",
                    ("name", "workers", "shards", "on_failure",
                     "heartbeat_interval", "wire_compression",
                     "delta_shipping", "aggregation", "fusion",
                     "retry", "connect_timeout"))
    if backend_override is not None:
        # The serial reference run keeps the fleet and strategy but
        # drops every resident-backend knob along with the backend.
        backend_name = backend_override
        backend_knobs = {}
    plan = FaultPlan.from_spec(fault_spec, seed=run_seed)
    controller = ChaosController(plan)

    sim = build_simulation(
        model_factory=model_factory, client_datasets=datasets,
        devices=devices, test_dataset=test_dataset, input_shape=(1, 8, 8),
        client_config=client_config, workload_scale=workload_scale,
        seed=run_seed)
    try:
        if backend_name != "serial":
            sim.set_backend(backend_name, **backend_knobs)
        plan_is_armed = bool(plan.shard_kills or plan.straggler_waves
                             or plan.has_frame_faults)
        if plan_is_armed and inject:
            # attach_chaos raises on backends without a substrate to
            # injure, so a scenario never silently skips its faults.
            sim.backend.attach_chaos(controller)
        wrapper = _ScenarioStrategy(
            inner, controller, churn, model_seed=run_seed + 7,
            data_seed=run_seed, samples_per_client=samples_per_client,
            client_config=client_config)
        history = sim.run(wrapper, num_cycles=cycles, verbose=verbose)
    finally:
        sim.close()

    events = list(controller.events)
    for record in history.records:
        events.append({
            "cycle": record.cycle, "event": "cycle_end",
            "accuracy": record.global_accuracy,
            "mean_train_loss": record.mean_train_loss,
            "participants": record.participating_clients,
            "dropped_clients": list(record.dropped_clients),
        })
    # Stable by-cycle ordering: each cycle's injections (recorded live,
    # hence earlier in the list) precede its cycle_end summary.
    events.sort(key=lambda event: event["cycle"])
    return ScenarioResult(name=name, seed=run_seed, history=history,
                          events=events)


def compare_histories(chaos: TrainingHistory,
                      reference: TrainingHistory) -> List[str]:
    """Bit-exact comparison of two run histories (empty = identical).

    The ``--assert-serial`` check: a rebalance-recovered chaos run must
    match the serial, fault-free reference *exactly* — same cycles,
    same accuracies, same losses, same simulated clock.  Returns
    human-readable mismatch lines, most fundamental first.
    """
    problems: List[str] = []
    if len(chaos.records) != len(reference.records):
        return [f"cycle count differs: {len(chaos.records)} != "
                f"{len(reference.records)}"]
    for ours, theirs in zip(chaos.records, reference.records):
        for field_name in ("cycle", "global_accuracy", "mean_train_loss",
                           "sim_time_s", "participating_clients",
                           "dropped_clients"):
            mine = getattr(ours, field_name)
            ref = getattr(theirs, field_name)
            if mine != ref:
                problems.append(
                    f"cycle {ours.cycle}: {field_name} differs "
                    f"({mine!r} != {ref!r})")
    return problems
