"""Socket transport for the sharded execution backend.

This module is the wire layer of :class:`~repro.fl.executor.
ShardedSocketBackend`: length-prefixed message framing over TCP, a
version-checked hello handshake, and the shard-server loop that hosts
worker-resident clients behind the ``repro shard-worker`` CLI.

Framing
-------
Every frame is a 4-byte big-endian unsigned length followed by exactly
that many payload bytes.  Payloads come in two formats that coexist on
one connection, told apart by their first byte:

* **codec frames** (:mod:`repro.fl.codec`, magic ``0xEC``) — the
  message skeleton as a protocol-5 pickle plus raw out-of-band ndarray
  segments, optionally per-segment compressed and delta-encoded against
  the peer's acknowledged base.  This is what the resident backends
  ship per cycle; :meth:`MessageChannel.send_frame` writes the segments
  with one vectored ``sendmsg`` so encoding stays copy-free end to end.
* **plain pickles** of ``(kind, payload)`` tuples — control messages
  (hello, ping, bye, shutdown) and legacy peers.

Both directions carry the same message shapes the pipe-based persistent
backend uses (:class:`~repro.fl.executor._WireBatch` and friends), so
the sharded backend reuses the persistent wire format unchanged.

Malformed traffic never hangs and never surfaces as a bare socket error:

* a connection closed cleanly *between* frames raises
  :class:`ConnectionClosedError`;
* a connection dying *inside* a frame (header or payload) raises
  :class:`TruncatedFrameError`;
* a header announcing more than ``max_frame_bytes`` raises
  :class:`FrameTooLargeError` before any payload is read (the stream is
  unrecoverable afterwards — close the connection);
* a payload that does not unpickle to a ``(kind, payload)`` tuple raises
  :class:`MalformedMessageError`;
* a hello carrying the wrong protocol version raises
  :class:`ProtocolVersionError` on the connecting side.

Handshake
---------
The connecting side opens every connection with ``("hello",
{"protocol": PROTOCOL_VERSION, "session": ..., "codec": {"version": ...,
"compression": ...}})``; the shard replies ``("hello-ack", {"protocol":
..., "resumed": ..., "codec": ...})`` or ``("error",
ProtocolVersionError(...))`` and closes.  The ``codec`` entry negotiates
the wire codec: the shard echoes the compression it will actually use
for its replies (downgrading an unsupported algorithm to ``"none"``
rather than failing), and a hello without a codec entry keeps the whole
connection on plain pickles.  Both sides run the handshake under a
timeout, so a version-mismatched or silent peer fails fast instead of
blocking a fleet start-up forever.

Reconnects and resident state
-----------------------------
A shard keeps the resident clients of its *most recent session* across
connection drops: a parent that reconnects with the same ``session``
token resumes them (the ack carries ``"resumed": True``) instead of
re-shipping every spec — this is what makes failover of a sibling shard
cheap, because the surviving shards' fleets survive the reconnect.  A
hello with a different (or no) session token drops the stored residents,
so state can never leak between unrelated runs; a polite ``bye`` clears
them too.

Health checking
---------------
``ping`` frames are answered with ``("pong", {"residents": ...})`` at
any point in a connection's lifetime.  The sharded backend uses them as
heartbeat probes between batches (see
:meth:`~repro.fl.executor.ShardedSocketBackend.check_health`) so a dead
shard is detected at a cycle boundary, where recovery is cheapest.

Trust boundary
--------------
Payloads are pickles and a shard *executes* what it is sent (specs
build models, ``map`` ships functions) — that is the backend's job, and
it means **any peer that can reach a shard port can run code as the
shard user**.  There is no authentication layer yet.  The default bind
address is loopback; bind non-loopback addresses (``--host 0.0.0.0``)
only on networks where every host is already trusted, e.g. behind a
private interface or an SSH tunnel/WireGuard mesh.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import codec as wire_codec

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_LISTEN_BACKLOG",
    "TransportError",
    "ConnectionClosedError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "ProtocolError",
    "ProtocolVersionError",
    "MalformedMessageError",
    "MessageChannel",
    "connect_to_shard",
    "serve_shard",
    "parse_address",
    "format_address",
]

#: Version of the shard wire protocol; bumped on incompatible changes.
#: Version 2 introduced the codec frame format (zero-copy ndarray
#: segments, delta-encoded weight tables — see :mod:`repro.fl.codec`).
PROTOCOL_VERSION = 2

#: Default cap on one frame's payload (weights tables of large fleets fit
#: comfortably; a corrupt header claiming gigabytes is rejected instead).
DEFAULT_MAX_FRAME_BYTES = 1 << 30

#: Listen backlog of the shard server.  One connection is *served* at a
#: time, but reconnects racing a half-closed predecessor (failover
#: resets every channel at once) and overlapping parents must be able to
#: queue instead of having their SYNs dropped — ``listen(1)`` made a
#: second connection in quick succession hang until its connect timeout.
DEFAULT_LISTEN_BACKLOG = 128

#: Pickle protocol for shard traffic (matches the pipe workers).
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

_HEADER = struct.Struct(">I")

#: Seconds both sides allow the hello handshake to take.
_HANDSHAKE_TIMEOUT_S = 20.0


class TransportError(RuntimeError):
    """Base class of every shard-transport failure."""


class ConnectionClosedError(TransportError):
    """The peer closed the connection cleanly between frames."""


class TruncatedFrameError(TransportError):
    """The connection died mid-frame (incomplete header or payload)."""


class FrameTooLargeError(TransportError):
    """A frame header announced a payload above ``max_frame_bytes``."""


class ProtocolError(TransportError):
    """The peer spoke a structurally valid but unexpected message."""


class ProtocolVersionError(ProtocolError):
    """The hello handshake revealed incompatible protocol versions."""


class MalformedMessageError(ProtocolError):
    """A frame's payload was not a picklable ``(kind, payload)`` tuple."""


def _picklable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.dumps(exc, _PICKLE_PROTOCOL)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def parse_address(address: Any) -> Tuple[str, int]:
    """Normalize a shard address into a ``(host, port)`` pair.

    Accepts ``"host:port"`` strings (the CLI's ``--shards`` format) and
    ``(host, port)`` tuples.
    """
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"shard address {address!r} is not of the form 'host:port'")
        try:
            return host, int(port)
        except ValueError:
            raise ValueError(f"shard address {address!r} has a non-integer "
                             f"port") from None
    try:
        host, port = address
    except (TypeError, ValueError):
        raise ValueError(f"cannot parse shard address {address!r}; expected "
                         f"'host:port' or (host, port)") from None
    return str(host), int(port)


def format_address(address: Tuple[str, int]) -> str:
    """``host:port`` rendering used in logs and error messages."""
    return f"{address[0]}:{address[1]}"


def _load_message(blob: bytes) -> Tuple[str, Any]:
    """Unpickle one frame payload into a ``(kind, payload)`` message."""
    try:
        message = pickle.loads(blob)
    except Exception as exc:
        raise MalformedMessageError(
            f"frame payload does not unpickle: {exc}") from None
    if (not isinstance(message, tuple) or len(message) != 2
            or not isinstance(message[0], str)):
        raise MalformedMessageError(
            f"expected a (kind, payload) tuple, got {type(message).__name__}")
    return message


class MessageChannel:
    """One framed, message-oriented connection over a stream socket.

    Thin and stateless beyond the socket itself: ``send``/``recv`` move
    whole ``(kind, payload)`` messages, ``send_bytes``/``recv_bytes``
    move pre-pickled frames (the backend pre-pickles batches to measure
    dispatch bytes before sending).  ``close`` is idempotent and safe to
    call during interpreter shutdown.
    """

    def __init__(self, sock: socket.socket,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        if max_frame_bytes > 0xFFFFFFFF:
            raise ValueError("max_frame_bytes cannot exceed the 4-byte "
                             "frame header's 4 GiB limit")
        self._sock: Optional[socket.socket] = sock
        self.max_frame_bytes = max_frame_bytes
        #: Whether the hello handshake resumed a previous session's
        #: resident state on the shard (set by :func:`connect_to_shard`).
        self.resumed = False
        #: Wire-codec compression the hello handshake negotiated, or
        #: ``None`` when the connection speaks plain pickles only (set
        #: by :func:`connect_to_shard`).
        self.codec_compression: Optional[str] = None
        #: Whether the shard granted the shared-memory arena capability
        #: (set by :func:`connect_to_shard`; shard servers always answer
        #: ``False`` — arenas are single-host).
        self.arena = False

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _socket(self) -> socket.socket:
        if self._sock is None:
            raise ConnectionClosedError("channel is closed")
        return self._sock

    # ------------------------------------------------------------------ #
    def send_bytes(self, blob: bytes) -> None:
        """Send one pre-pickled payload as a length-prefixed frame."""
        if len(blob) > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"refusing to send a {len(blob)}-byte frame "
                f"(max_frame_bytes={self.max_frame_bytes})")
        sock = self._socket()
        # Two sendalls instead of header+blob concatenation: batches
        # carry whole weights tables, and copying them once per send
        # just to prepend 4 bytes would be an O(weights) tax per cycle.
        sock.sendall(_HEADER.pack(len(blob)))
        sock.sendall(blob)

    def send_frame(self, frame: "wire_codec.EncodedFrame") -> None:
        """Send one encoded codec frame without assembling its payload.

        The frame's header and segments are written with vectored
        ``sendmsg`` calls (one syscall for the common case), so the
        ndarray segments the codec collected as memoryviews reach the
        kernel without ever being concatenated — the zero-copy half of
        the codec's contract.  An oversized frame is rejected locally
        with the message kind and a skeleton-vs-ndarray size breakdown.
        """
        total = frame.total_bytes
        if total > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"refusing to send a {frame.kind!r} frame of {total} bytes "
                f"(max_frame_bytes={self.max_frame_bytes}; "
                f"{frame.describe()})")
        sock = self._socket()
        buffers: List[Any] = [_HEADER.pack(total)]
        buffers.extend(frame.buffers())
        if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
            for buffer in buffers:
                sock.sendall(buffer)
            return
        views = [memoryview(buffer).cast("B") for buffer in buffers]
        while views:
            # Cap the iovec count per call: sendmsg rejects vectors
            # longer than IOV_MAX (1024 on Linux) with EMSGSIZE.
            sent = sock.sendmsg(views[:512])
            while views and sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            if sent and views:
                views[0] = views[0][sent:]

    def send(self, message: Tuple[str, Any]) -> None:
        """Pickle and send one ``(kind, payload)`` message."""
        self.send_bytes(pickle.dumps(message, _PICKLE_PROTOCOL))

    def _recv_exact(self, num_bytes: int, *, mid_frame: bool) -> memoryview:
        """Read exactly ``num_bytes`` into a fresh writable buffer.

        Receiving into one pre-sized ``bytearray`` (instead of joining
        ``recv`` chunks) skips the reassembly copy, and — because the
        codec reconstructs ndarrays as views into this buffer — makes
        the decoded arrays writable, matching what plain pickling would
        have produced.
        """
        sock = self._socket()
        buffer = bytearray(num_bytes)
        view = memoryview(buffer)
        received = 0
        while received < num_bytes:
            chunk = sock.recv_into(view[received:], num_bytes - received)
            if not chunk:
                if mid_frame or received:
                    raise TruncatedFrameError(
                        f"connection closed {received} bytes into a "
                        f"{num_bytes}-byte read")
                raise ConnectionClosedError(
                    "connection closed at a frame boundary")
            received += chunk
        return view

    def recv_bytes(self) -> memoryview:
        """Receive one frame's payload as a writable memoryview.

        Raises :class:`ConnectionClosedError` on a clean close between
        frames, :class:`TruncatedFrameError` on a mid-frame close, and
        :class:`FrameTooLargeError` on an oversized announcement.
        """
        header = self._recv_exact(_HEADER.size, mid_frame=False)
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"peer announced a {length}-byte frame "
                f"(max_frame_bytes={self.max_frame_bytes})")
        return self._recv_exact(length, mid_frame=True)

    def recv(self) -> Tuple[str, Any]:
        """Receive and unpickle one ``(kind, payload)`` message."""
        return _load_message(self.recv_bytes())

    # ------------------------------------------------------------------ #
    def settimeout(self, timeout: Optional[float]) -> None:
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except Exception:
                pass

    def __enter__(self) -> "MessageChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# handshake
# --------------------------------------------------------------------- #

def connect_to_shard(address: Any, *,
                     timeout: float = _HANDSHAKE_TIMEOUT_S,
                     max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                     protocol: int = PROTOCOL_VERSION,
                     session: Optional[str] = None,
                     codec: Optional[Dict[str, Any]] = None,
                     arena: bool = False
                     ) -> MessageChannel:
    """Connect to a shard server and run the hello handshake.

    Returns a ready :class:`MessageChannel` with no operation timeout
    (batches may legitimately train for a long time).  Raises
    :class:`ProtocolVersionError` if the shard rejects our version, and
    ordinary :class:`TransportError` subclasses on malformed replies —
    never hangs past ``timeout`` during the handshake itself.

    ``session`` (opaque token) lets a reconnecting parent resume the
    resident clients its previous connection left on the shard; the
    returned channel's :attr:`~MessageChannel.resumed` says whether the
    shard actually kept them.  Without a token every connection starts
    from a clean resident fleet.

    ``codec`` (e.g. ``{"version": 1, "compression": "zlib"}``) opts the
    connection into the wire codec of :mod:`repro.fl.codec`; the shard
    echoes the compression it will actually use and the returned
    channel's :attr:`~MessageChannel.codec_compression` carries it.
    ``codec_compression`` left at ``None`` means the shard did not
    acknowledge the codec — the caller must then either stick to plain
    pickles on this channel or treat the peer as incompatible (the
    sharded backend does the latter: it only sends codec frames).

    ``arena`` advertises that the caller would ship shared-memory arena
    descriptors (see :mod:`repro.fl.arena`) instead of inline weight
    segments.  Arenas are single-host by construction, so shard servers
    always answer ``"arena": False`` and the returned channel's
    :attr:`~MessageChannel.arena` reflects the shard's answer — a frame
    carrying arena descriptors anyway is rejected by the shard's codec
    with a one-line error reply.
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    channel = MessageChannel(sock, max_frame_bytes)
    try:
        hello: Dict[str, Any] = {"protocol": protocol}
        if session is not None:
            hello["session"] = session
        if codec is not None:
            hello["codec"] = dict(codec)
        if arena:
            hello["arena"] = True
        channel.send(("hello", hello))
        kind, payload = channel.recv()
    except (OSError, socket.timeout) as exc:
        channel.close()
        raise TransportError(
            f"handshake with shard {host}:{port} failed: {exc}") from None
    except TransportError:
        channel.close()
        raise
    if kind == "error" and isinstance(payload, BaseException):
        channel.close()
        raise payload
    if kind != "hello-ack":
        channel.close()
        raise ProtocolError(
            f"shard {host}:{port} answered the hello with {kind!r}")
    channel.resumed = bool(isinstance(payload, dict)
                           and payload.get("resumed"))
    if codec is not None and isinstance(payload, dict):
        ack_codec = payload.get("codec")
        if isinstance(ack_codec, dict):
            channel.codec_compression = wire_codec.negotiate_compression(
                ack_codec.get("compression"))
    channel.arena = bool(isinstance(payload, dict) and payload.get("arena"))
    channel.settimeout(None)
    return channel


def _server_handshake(channel: MessageChannel,
                      session: Dict[str, Any]) -> Optional[Dict[int, Any]]:
    """Validate a fresh connection's hello and resolve its residents.

    ``session`` is the server's cross-connection store (``token`` +
    ``residents`` + codec negotiation/state).  A hello carrying the
    stored token *resumes* the previous connection's residents (and the
    codec's delta-decoder state, which tracks them); any other hello
    (different token, or none) replaces them with a clean fleet.
    Returns the residents dict the connection must serve against, or
    ``None`` if the handshake failed and the connection must be dropped.
    """
    try:
        kind, payload = channel.recv()
    except (TransportError, OSError, socket.timeout):
        return None
    if kind != "hello" or not isinstance(payload, dict):
        _try_send(channel, ("error", ProtocolError(
            f"expected a hello, got {kind!r}")))
        return None
    peer_version = payload.get("protocol")
    if peer_version != PROTOCOL_VERSION:
        _try_send(channel, ("error", ProtocolVersionError(
            f"shard speaks protocol {PROTOCOL_VERSION}, "
            f"client sent {peer_version!r}")))
        return None
    token = payload.get("session")
    resumed = token is not None and token == session.get("token")
    if not resumed:
        session["residents"] = {}
        session["codec_state"] = wire_codec.DeltaDecoderState()
    session.setdefault("codec_state", wire_codec.DeltaDecoderState())
    session["token"] = token
    requested_codec = payload.get("codec")
    if isinstance(requested_codec, dict):
        session["codec"] = {
            "version": wire_codec.CODEC_VERSION,
            "compression": wire_codec.negotiate_compression(
                requested_codec.get("compression")),
        }
    else:
        session["codec"] = None
    # Shared-memory arenas are single-host; a remote shard can never map
    # the parent's /dev/shm, so the capability is always declined.
    ack = {"protocol": PROTOCOL_VERSION, "resumed": resumed,
           "residents": len(session["residents"]),
           "codec": session["codec"], "arena": False}
    if not _try_send(channel, ("hello-ack", ack)):
        return None
    return session["residents"]


def _try_send(channel: MessageChannel, message: Tuple[str, Any]) -> bool:
    try:
        channel.send(message)
        return True
    except (TransportError, OSError):
        return False


def _send_reply(channel: MessageChannel, reply: Tuple[str, Any],
                compression: Optional[str] = None) -> bool:
    """Send a request's reply, degrading to an error reply if needed.

    The parent is blocked waiting for exactly one reply, so a reply that
    cannot be pickled or exceeds the frame limit must not be silently
    dropped (that would hang the fleet) nor crash the server: it is
    replaced by a small ``("error", ...)`` explaining the failure —
    naming the reply kind and its skeleton-vs-ndarray size breakdown
    when it was the frame limit that bit.  ``compression`` selects the
    negotiated codec framing (``None`` = plain pickle, for connections
    that did not negotiate the codec).  ``False`` means the connection
    itself is gone.
    """
    if compression is None:
        try:
            blob = pickle.dumps(reply, _PICKLE_PROTOCOL)
        except Exception as exc:
            return _try_send(channel, ("error", RuntimeError(
                f"shard reply does not pickle: {exc!r}")))
        if len(blob) > channel.max_frame_bytes:
            return _try_send(channel, ("error", FrameTooLargeError(
                f"shard reply is {len(blob)} bytes "
                f"(max_frame_bytes={channel.max_frame_bytes})")))
        try:
            channel.send_bytes(blob)
            return True
        except (TransportError, OSError):
            return False
    try:
        frame = wire_codec.encode_message(reply, compression=compression)
    except Exception as exc:
        return _try_send(channel, ("error", RuntimeError(
            f"shard reply does not encode: {exc!r}")))
    if frame.total_bytes > channel.max_frame_bytes:
        return _try_send(channel, ("error", FrameTooLargeError(
            f"shard reply is an oversized {frame.kind!r} frame "
            f"(max_frame_bytes={channel.max_frame_bytes}; "
            f"{frame.describe()})")))
    try:
        channel.send_frame(frame)
        return True
    except (TransportError, OSError):
        return False


# --------------------------------------------------------------------- #
# shard server
# --------------------------------------------------------------------- #

def serve_shard(host: str = "127.0.0.1", port: int = 0, *,
                max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                backlog: int = DEFAULT_LISTEN_BACKLOG,
                ready: Optional[Callable[[str, int], None]] = None) -> None:
    """Run one shard server until a ``shutdown`` message arrives.

    The server hosts worker-resident clients exactly like a persistent
    pipe worker: specs build residents once, then only weights/masks/RNG
    digests travel per cycle.  One connection is served at a time; a
    dropped or misbehaving connection returns the server to ``accept``
    (reconnect semantics) while further connections queue in the listen
    ``backlog``.  The resident fleet *survives* a reconnect of the same
    session (the parent's hello token decides — see
    :func:`_server_handshake`); a connection from any other session
    starts from a clean fleet, so residents from a previous run can
    never leak into the next.

    ``ready`` is called with the bound ``(host, port)`` once listening —
    the CLI prints the announce line from it, the auto-spawn mode and the
    tests read it back.
    """
    # Imported lazily: executor imports this module at load time.
    from .executor import _handle_resident_request

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((host, port))
        listener.listen(backlog)
        bound_host, bound_port = listener.getsockname()[:2]
        if ready is not None:
            ready(bound_host, bound_port)
        session: Dict[str, Any] = {"token": None, "residents": {}}
        shutdown = False
        while not shutdown:
            try:
                conn, _ = listener.accept()
            except OSError:
                break
            channel = MessageChannel(conn, max_frame_bytes)
            channel.settimeout(_HANDSHAKE_TIMEOUT_S)
            residents = _server_handshake(channel, session)
            if residents is None:
                channel.close()
                continue
            channel.settimeout(None)
            shutdown = _serve_connection(channel, _handle_resident_request,
                                         session=session)
            channel.close()
    finally:
        try:
            listener.close()
        except Exception:
            pass


def _serve_connection(channel: MessageChannel, handle_request: Callable,
                      session: Optional[Dict[str, Any]] = None) -> bool:
    """Serve one parent connection; ``True`` means shut the server down.

    Control messages (``bye``/``shutdown``/``ping``) are handled here;
    everything else goes through ``handle_request`` — the protocol core
    shared with the pipe workers (``run``/``map`` against the resident
    fleet, ``fold``/``vfold`` for shard-local hierarchical aggregation,
    degrading failures to ``("error", ...)`` replies so a misbehaving
    request cannot crash a long-running shard).

    ``session`` is the server's cross-connection store; its residents
    are mutated in place so they survive into the next connection of the
    same session.  A polite ``bye`` empties the residents *and* forgets
    the token — the parent declared the run over, so a later same-token
    reconnect must not be told it resumed anything — whereas an abrupt
    transport failure keeps both for a resuming reconnect.  A frame
    announcing more than the channel's limit leaves the stream
    unrecoverable (the payload was never read), so it drops the
    connection instead of returning to ``recv`` desynchronized.
    """
    if session is None:
        session = {"token": None, "residents": {}}
    residents = session["residents"]
    codec_config = session.get("codec")
    compression = (codec_config or {}).get("compression")
    codec_state = session.setdefault("codec_state",
                                     wire_codec.DeltaDecoderState())
    while True:
        try:
            blob = channel.recv_bytes()
        except (TransportError, OSError):
            # Clean close, truncated frame or oversized announcement: the
            # stream is over either way — back to accept().
            return False
        try:
            if wire_codec.is_codec_frame(blob):
                kind, payload = wire_codec.decode_message(
                    blob, delta_state=codec_state)
            else:
                kind, payload = _load_message(blob)
        except wire_codec.DeltaBaseMismatchError as exc:
            # The parent's delta referenced a base this shard does not
            # hold (e.g. a reply it never saw committed it on our side):
            # report it so the parent re-sends a full snapshot.
            if not _send_reply(channel, ("error", exc), compression):
                return False
            continue
        except (MalformedMessageError, wire_codec.CodecError) as exc:
            # Framing is intact, only this payload was garbage: report it
            # and keep serving.
            if not isinstance(exc, MalformedMessageError):
                exc = MalformedMessageError(str(exc))
            if not _try_send(channel, ("error", exc)):
                return False
            continue
        if kind == "bye":
            residents.clear()
            session["token"] = None
            session["codec_state"] = wire_codec.DeltaDecoderState()
            return False
        if kind == "shutdown":
            return True
        if kind == "ping":
            reply: Tuple[str, Any] = ("pong", {"residents": len(residents)})
        else:
            reply = handle_request(kind, payload, residents)
        if not _send_reply(channel, reply, compression):
            return False
