"""Socket transport for the sharded execution backend.

This module is the wire layer of :class:`~repro.fl.executor.
ShardedSocketBackend`: length-prefixed message framing over TCP, a
version-checked hello handshake, and the shard-server event loop that
hosts worker-resident clients behind the ``repro shard-worker`` CLI and
serves several parent sessions concurrently.

Framing
-------
Every frame is a 4-byte big-endian unsigned length followed by exactly
that many payload bytes.  Payloads come in two formats that coexist on
one connection, told apart by their first byte:

* **codec frames** (:mod:`repro.fl.codec`, magic ``0xEC``) — the
  message skeleton as a protocol-5 pickle plus raw out-of-band ndarray
  segments, optionally per-segment compressed and delta-encoded against
  the peer's acknowledged base.  This is what the resident backends
  ship per cycle; :meth:`MessageChannel.send_frame` writes the segments
  with one vectored ``sendmsg`` so encoding stays copy-free end to end.
* **plain pickles** of ``(kind, payload)`` tuples — control messages
  (hello, ping, bye, shutdown) and legacy peers.

Both directions carry the same message shapes the pipe-based persistent
backend uses (:class:`~repro.fl.executor._WireBatch` and friends), so
the sharded backend reuses the persistent wire format unchanged.

Malformed traffic never hangs and never surfaces as a bare socket error:

* a connection closed cleanly *between* frames raises
  :class:`ConnectionClosedError`;
* a connection dying *inside* a frame (header or payload) raises
  :class:`TruncatedFrameError`;
* a header announcing more than ``max_frame_bytes`` raises
  :class:`FrameTooLargeError` before any payload is read (the stream is
  unrecoverable afterwards — close the connection);
* a payload that does not unpickle to a ``(kind, payload)`` tuple raises
  :class:`MalformedMessageError`;
* a hello carrying the wrong protocol version raises
  :class:`ProtocolVersionError` on the connecting side.

Handshake
---------
The connecting side opens every connection with ``("hello",
{"protocol": PROTOCOL_VERSION, "session": ..., "codec": {"version": ...,
"compression": ...}})``; the shard replies ``("hello-ack", {"protocol":
..., "resumed": ..., "codec": ...})`` or ``("error",
ProtocolVersionError(...))`` and closes.  The ``codec`` entry negotiates
the wire codec: the shard echoes the compression it will actually use
for its replies (downgrading an unsupported algorithm to ``"none"``
rather than failing), and a hello without a codec entry keeps the whole
connection on plain pickles.  Both sides run the handshake under a
timeout, so a version-mismatched or silent peer fails fast instead of
blocking a fleet start-up forever.

Concurrent sessions
-------------------
The shard server (:class:`ShardServer`, behind :func:`serve_shard`) is
a single-threaded ``selectors`` event loop multiplexing every live
connection, in the style of proactor/reactor actor runtimes: each
connection carries its own incremental frame-reassembly buffers, so a
peer that delivers a frame in dribbles never blocks its neighbours.
Sessions are isolated by their hello token: every token owns a private
resident fleet *and* a private delta-decoder state, so two parents
sharing one fleet can never observe each other's residents or delta
bases.  Heavy requests (``run``/``map``/``fold``/``vfold``) execute one
at a time on a dedicated worker thread — arrival order within a
connection, round-robin across connections — which keeps single-parent
runs bit-identical to the serial backend while control traffic stays
live.  ``--max-sessions`` caps how many session fleets a shard retains;
adding one beyond the cap evicts the least-recently-active
*disconnected* session, and is refused when every retained session has
a live connection.

Reconnects and resident state
-----------------------------
A shard keeps each session's resident clients across connection drops:
a parent that reconnects with the same ``session`` token resumes them
(the ack carries ``"resumed": True``) instead of re-shipping every
spec — this is what makes failover of a sibling shard cheap, because
the surviving shards' fleets survive the reconnect.  A hello with a new
token starts a fresh, independent fleet without disturbing anyone
else's; a hello without a token gets a private fleet that dies with the
connection; a polite ``bye`` retires that session's fleet and forgets
its token.  A second connection arriving with a live session's token
takes the session over (the stale predecessor is dropped).

Liveness
--------
``ping`` frames are answered with ``("pong", {"residents": ...})`` at
any point in a connection's lifetime — *from the event loop itself*, so
heartbeat probes (see
:meth:`~repro.fl.executor.ShardedSocketBackend.check_health`) stay
responsive even while a sibling session's batch is mid-training on the
worker thread.  Two deadlines guard the loop: a connection that stalls
*mid-frame* (or with unflushed replies) for longer than
``read_deadline`` seconds is dropped — only that connection; its
session stays resumable — and a connection that never completes the
hello is dropped after the handshake timeout.  Transient
``listener.accept()`` failures (``EMFILE``, ``ECONNABORTED``, …) pause
accepting with exponential backoff and a one-line stderr diagnostic
instead of silently killing a long-running shard.

Trust boundary
--------------
Payloads are pickles and a shard *executes* what it is sent (specs
build models, ``map`` ships functions) — that is the backend's job, and
it means **any peer that can reach a shard port can run code as the
shard user**.  There is no authentication layer yet.  The default bind
address is loopback; bind non-loopback addresses (``--host 0.0.0.0``)
only on networks where every host is already trusted, e.g. behind a
private interface or an SSH tunnel/WireGuard mesh.
"""

from __future__ import annotations

import pickle
import queue
import selectors
import socket
import struct
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import codec as wire_codec
from .codec import (KIND_BYE, KIND_ERROR, KIND_HELLO, KIND_HELLO_ACK,
                    KIND_PING, KIND_PONG, KIND_SHUTDOWN)

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "DEFAULT_LISTEN_BACKLOG",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_READ_DEADLINE_S",
    "TransportError",
    "ConnectionClosedError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "ProtocolError",
    "ProtocolVersionError",
    "MalformedMessageError",
    "MessageChannel",
    "ShardServer",
    "connect_to_shard",
    "serve_shard",
    "parse_address",
    "format_address",
]

#: Version of the shard wire protocol; bumped on incompatible changes.
#: Version 2 introduced the codec frame format (zero-copy ndarray
#: segments, delta-encoded weight tables — see :mod:`repro.fl.codec`).
PROTOCOL_VERSION = 2

#: Default cap on one frame's payload (weights tables of large fleets fit
#: comfortably; a corrupt header claiming gigabytes is rejected instead).
DEFAULT_MAX_FRAME_BYTES = 1 << 30

#: Listen backlog of the shard server.  Connections are accepted as the
#: event loop gets to them, but reconnects racing a half-closed
#: predecessor (failover resets every channel at once) and overlapping
#: parents must be able to queue instead of having their SYNs dropped —
#: ``listen(1)`` made a second connection in quick succession hang until
#: its connect timeout.
DEFAULT_LISTEN_BACKLOG = 128

#: Default cap on retained session fleets per shard (``repro
#: shard-worker --max-sessions``).  Beyond it, adding a session evicts
#: the least-recently-active *disconnected* one; when every retained
#: session still has a live connection the new hello is refused.
DEFAULT_MAX_SESSIONS = 8

#: Default seconds a connection may stall *mid-frame* (or with replies
#: it is not reading back) before the server drops it.  Idle time
#: between complete frames is unlimited — parents legitimately sit idle
#: between cycles — so this only bounds wedged peers, not quiet ones.
DEFAULT_READ_DEADLINE_S = 600.0

#: Pickle protocol for shard traffic (matches the pipe workers).
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

_HEADER = struct.Struct(">I")

#: Seconds both sides allow the hello handshake to take.
_HANDSHAKE_TIMEOUT_S = 20.0

#: Accept-failure backoff window (exponential, per consecutive failure).
_ACCEPT_BACKOFF_MIN_S = 0.05
_ACCEPT_BACKOFF_MAX_S = 2.0


class TransportError(RuntimeError):
    """Base class of every shard-transport failure."""


class ConnectionClosedError(TransportError):
    """The peer closed the connection cleanly between frames."""


class TruncatedFrameError(TransportError):
    """The connection died mid-frame (incomplete header or payload)."""


class FrameTooLargeError(TransportError):
    """A frame header announced a payload above ``max_frame_bytes``."""


class ProtocolError(TransportError):
    """The peer spoke a structurally valid but unexpected message."""


class ProtocolVersionError(ProtocolError):
    """The hello handshake revealed incompatible protocol versions."""


class MalformedMessageError(ProtocolError):
    """A frame's payload was not a picklable ``(kind, payload)`` tuple."""


def _picklable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.dumps(exc, _PICKLE_PROTOCOL)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def parse_address(address: Any) -> Tuple[str, int]:
    """Normalize a shard address into a ``(host, port)`` pair.

    Accepts ``"host:port"`` strings (the CLI's ``--shards`` format) and
    ``(host, port)`` tuples.
    """
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"shard address {address!r} is not of the form 'host:port'")
        try:
            return host, int(port)
        except ValueError:
            raise ValueError(f"shard address {address!r} has a non-integer "
                             f"port") from None
    try:
        host, port = address
    except (TypeError, ValueError):
        raise ValueError(f"cannot parse shard address {address!r}; expected "
                         f"'host:port' or (host, port)") from None
    return str(host), int(port)


def format_address(address: Tuple[str, int]) -> str:
    """``host:port`` rendering used in logs and error messages."""
    return f"{address[0]}:{address[1]}"


def _load_message(blob: bytes) -> Tuple[str, Any]:
    """Unpickle one frame payload into a ``(kind, payload)`` message."""
    try:
        message = pickle.loads(blob)
    except Exception as exc:
        raise MalformedMessageError(
            f"frame payload does not unpickle: {exc}") from None
    if (not isinstance(message, tuple) or len(message) != 2
            or not isinstance(message[0], str)):
        raise MalformedMessageError(
            f"expected a (kind, payload) tuple, got {type(message).__name__}")
    return message


class MessageChannel:
    """One framed, message-oriented connection over a stream socket.

    Thin and stateless beyond the socket itself: ``send``/``recv`` move
    whole ``(kind, payload)`` messages, ``send_bytes``/``recv_bytes``
    move pre-pickled frames (the backend pre-pickles batches to measure
    dispatch bytes before sending).  ``close`` is idempotent and safe to
    call during interpreter shutdown.
    """

    def __init__(self, sock: socket.socket,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        if max_frame_bytes > 0xFFFFFFFF:
            raise ValueError("max_frame_bytes cannot exceed the 4-byte "
                             "frame header's 4 GiB limit")
        self._sock: Optional[socket.socket] = sock
        self.max_frame_bytes = max_frame_bytes
        # Nagle would hold each small control frame (ping/pong, delta
        # headers, error replies) until the previous one is ACKed —
        # with send_bytes' separate header/payload writes that is a
        # delayed-ACK round trip per frame.  Request/reply traffic
        # never benefits from coalescing, so disable it outright.
        self.set_tcp_nodelay(True)
        #: Whether the hello handshake resumed a previous session's
        #: resident state on the shard (set by :func:`connect_to_shard`).
        self.resumed = False
        #: Wire-codec compression the hello handshake negotiated, or
        #: ``None`` when the connection speaks plain pickles only (set
        #: by :func:`connect_to_shard`).
        self.codec_compression: Optional[str] = None
        #: Whether the shard granted the shared-memory arena capability
        #: (set by :func:`connect_to_shard`; shard servers always answer
        #: ``False`` — arenas are single-host).
        self.arena = False
        #: Chaos-engineering hook (``None`` in production): a callable
        #: ``(frame_kind, total_bytes) -> Optional[FrameFault]``
        #: consulted before every :meth:`send_frame`.  Only codec
        #: frames pass through it — never :meth:`send_bytes` control
        #: blobs (pings, byes), whose wall-clock-paced traffic must not
        #: consume the injector's deterministic fault stream.  See
        #: :mod:`repro.fl.chaos`.
        self.fault_injector: Optional[Callable[[str, int], Any]] = None

    @property
    def closed(self) -> bool:
        return self._sock is None

    def _socket(self) -> socket.socket:
        if self._sock is None:
            raise ConnectionClosedError("channel is closed")
        return self._sock

    # ------------------------------------------------------------------ #
    def send_bytes(self, blob: bytes) -> None:
        """Send one pre-pickled payload as a length-prefixed frame."""
        if len(blob) > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"refusing to send a {len(blob)}-byte frame "
                f"(max_frame_bytes={self.max_frame_bytes})")
        sock = self._socket()
        # Two sendalls instead of header+blob concatenation: batches
        # carry whole weights tables, and copying them once per send
        # just to prepend 4 bytes would be an O(weights) tax per cycle.
        sock.sendall(_HEADER.pack(len(blob)))
        sock.sendall(blob)

    def send_frame(self, frame: "wire_codec.EncodedFrame") -> None:
        """Send one encoded codec frame without assembling its payload.

        The frame's header and segments are written with vectored
        ``sendmsg`` calls (one syscall for the common case), so the
        ndarray segments the codec collected as memoryviews reach the
        kernel without ever being concatenated — the zero-copy half of
        the codec's contract.  An oversized frame is rejected locally
        with the message kind and a skeleton-vs-ndarray size breakdown.
        """
        total = frame.total_bytes
        if total > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"refusing to send a {frame.kind!r} frame of {total} bytes "
                f"(max_frame_bytes={self.max_frame_bytes}; "
                f"{frame.describe()})")
        if self.fault_injector is not None:
            fault = self.fault_injector(frame.kind, total)
            if fault is not None:
                self._apply_fault(fault, frame, total)
        sock = self._socket()
        buffers: List[Any] = [_HEADER.pack(total)]
        buffers.extend(frame.buffers())
        if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX
            for buffer in buffers:
                sock.sendall(buffer)
            return
        views = [memoryview(buffer).cast("B") for buffer in buffers]
        while views:
            # Cap the iovec count per call: sendmsg rejects vectors
            # longer than IOV_MAX (1024 on Linux) with EMSGSIZE.
            sent = sock.sendmsg(views[:512])
            while views and sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            if sent and views:
                views[0] = views[0][sent:]

    def send(self, message: Tuple[str, Any]) -> None:
        """Pickle and send one ``(kind, payload)`` message."""
        self.send_bytes(pickle.dumps(message, _PICKLE_PROTOCOL))

    def _apply_fault(self, fault: Any, frame: Any, total: int) -> None:
        """Execute one injected wire fault (see :mod:`repro.fl.chaos`).

        ``delay`` stalls the send and then proceeds normally; the other
        actions destroy the connection mid-protocol — exactly the
        failure shapes (clean close, mid-frame truncation, hard RST)
        the recovery machinery must absorb — and raise the transport
        error a real peer death would have produced.
        """
        action = fault.action
        if action == "delay":
            time.sleep(fault.seconds)
            return
        sock = self._socket()
        if action == "truncate":
            # The header promises ``total`` bytes; shipping only a
            # prefix leaves the peer mid-frame, the worst kind of wire
            # corruption a dying sender produces.
            try:
                sock.sendall(_HEADER.pack(total))
                keep = int(getattr(fault, "keep_bytes", 0))
                if keep > 0:
                    for buffer in frame.buffers():
                        view = memoryview(buffer).cast("B")[:keep]
                        sock.sendall(view)
                        keep -= len(view)
                        if keep <= 0:
                            break
            except OSError:
                pass
        elif action == "reset":
            # RST instead of FIN: the peer sees a connection reset with
            # data in flight, not a polite close.
            try:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
            except OSError:
                pass
        self.close()
        raise ConnectionClosedError(
            f"chaos: injected {action} while sending a "
            f"{frame.kind!r} frame")

    def _recv_exact(self, num_bytes: int, *, mid_frame: bool) -> memoryview:
        """Read exactly ``num_bytes`` into a fresh writable buffer.

        Receiving into one pre-sized ``bytearray`` (instead of joining
        ``recv`` chunks) skips the reassembly copy, and — because the
        codec reconstructs ndarrays as views into this buffer — makes
        the decoded arrays writable, matching what plain pickling would
        have produced.
        """
        sock = self._socket()
        buffer = bytearray(num_bytes)
        view = memoryview(buffer)
        received = 0
        while received < num_bytes:
            try:
                chunk = sock.recv_into(view[received:], num_bytes - received)
            except ConnectionResetError:
                # A peer that drops a desynchronized connection with
                # unread data in flight resets instead of FIN-closing;
                # to the protocol that is the same "the stream is over"
                # signal, not a bare socket error.
                chunk = 0
            if not chunk:
                if mid_frame or received:
                    raise TruncatedFrameError(
                        f"connection closed {received} bytes into a "
                        f"{num_bytes}-byte read")
                raise ConnectionClosedError(
                    "connection closed at a frame boundary")
            received += chunk
        return view

    def recv_bytes(self) -> memoryview:
        """Receive one frame's payload as a writable memoryview.

        Raises :class:`ConnectionClosedError` on a clean close between
        frames, :class:`TruncatedFrameError` on a mid-frame close, and
        :class:`FrameTooLargeError` on an oversized announcement.
        """
        header = self._recv_exact(_HEADER.size, mid_frame=False)
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame_bytes:
            raise FrameTooLargeError(
                f"peer announced a {length}-byte frame "
                f"(max_frame_bytes={self.max_frame_bytes})")
        return self._recv_exact(length, mid_frame=True)

    def recv(self) -> Tuple[str, Any]:
        """Receive and unpickle one ``(kind, payload)`` message."""
        return _load_message(self.recv_bytes())

    # ------------------------------------------------------------------ #
    def set_tcp_nodelay(self, enabled: bool) -> None:
        """Toggle ``TCP_NODELAY`` (on by default; no-op off TCP).

        Non-TCP sockets (the AF_UNIX socketpairs tests use, pipes on
        some platforms) reject the option — that is fine, they have no
        Nagle to disable.  The benchmark suite toggles this to measure
        the latency Nagle would have cost.
        """
        if self._sock is None:
            return
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY,
                                  1 if enabled else 0)
        except OSError:
            pass

    def settimeout(self, timeout: Optional[float]) -> None:
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except Exception:  # lint: allow[swallow] - idempotent close
                pass

    def __enter__(self) -> "MessageChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# handshake
# --------------------------------------------------------------------- #

def connect_to_shard(address: Any, *,
                     timeout: float = _HANDSHAKE_TIMEOUT_S,
                     max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                     protocol: int = PROTOCOL_VERSION,
                     session: Optional[str] = None,
                     codec: Optional[Dict[str, Any]] = None,
                     arena: bool = False
                     ) -> MessageChannel:
    """Connect to a shard server and run the hello handshake.

    Returns a ready :class:`MessageChannel` with no operation timeout
    (batches may legitimately train for a long time).  Raises
    :class:`ProtocolVersionError` if the shard rejects our version, and
    ordinary :class:`TransportError` subclasses on malformed replies —
    never hangs past ``timeout`` during the handshake itself.

    ``session`` (opaque token) lets a reconnecting parent resume the
    resident clients its previous connection left on the shard; the
    returned channel's :attr:`~MessageChannel.resumed` says whether the
    shard actually kept them.  Without a token every connection starts
    from a clean resident fleet.

    ``codec`` (e.g. ``{"version": 1, "compression": "zlib"}``) opts the
    connection into the wire codec of :mod:`repro.fl.codec`; the shard
    echoes the compression it will actually use and the returned
    channel's :attr:`~MessageChannel.codec_compression` carries it.
    ``codec_compression`` left at ``None`` means the shard did not
    acknowledge the codec — the caller must then either stick to plain
    pickles on this channel or treat the peer as incompatible (the
    sharded backend does the latter: it only sends codec frames).

    ``arena`` advertises that the caller would ship shared-memory arena
    descriptors (see :mod:`repro.fl.arena`) instead of inline weight
    segments.  Arenas are single-host by construction, so shard servers
    always answer ``"arena": False`` and the returned channel's
    :attr:`~MessageChannel.arena` reflects the shard's answer — a frame
    carrying arena descriptors anyway is rejected by the shard's codec
    with a one-line error reply.
    """
    host, port = parse_address(address)
    sock = socket.create_connection((host, port), timeout=timeout)
    channel = MessageChannel(sock, max_frame_bytes)
    try:
        hello: Dict[str, Any] = {"protocol": protocol}
        if session is not None:
            hello["session"] = session
        if codec is not None:
            hello["codec"] = dict(codec)
        if arena:
            hello["arena"] = True
        channel.send((KIND_HELLO, hello))
        kind, payload = channel.recv()
    except (OSError, socket.timeout) as exc:
        channel.close()
        raise TransportError(
            f"handshake with shard {host}:{port} failed: {exc}") from None
    except TransportError:
        channel.close()
        raise
    if kind == KIND_ERROR and isinstance(payload, BaseException):
        channel.close()
        raise payload
    if kind != KIND_HELLO_ACK:
        channel.close()
        raise ProtocolError(
            f"shard {host}:{port} answered the hello with {kind!r}")
    channel.resumed = bool(isinstance(payload, dict)
                           and payload.get("resumed"))
    if codec is not None and isinstance(payload, dict):
        ack_codec = payload.get("codec")
        if isinstance(ack_codec, dict):
            channel.codec_compression = wire_codec.negotiate_compression(
                ack_codec.get("compression"))
    channel.arena = bool(isinstance(payload, dict) and payload.get("arena"))
    channel.settimeout(None)
    return channel


# --------------------------------------------------------------------- #
# reply encoding (server side)
# --------------------------------------------------------------------- #

def _pickled_reply_buffers(reply: Tuple[str, Any],
                           max_frame_bytes: int) -> List[Any]:
    """Wire buffers (header + payload) of a plain-pickled reply.

    The parent is blocked waiting for exactly one reply, so a reply that
    cannot be pickled or exceeds the frame limit must not be silently
    dropped (that would hang the fleet) nor crash the server: it is
    replaced by a small ``("error", ...)`` explaining the failure.
    """
    try:
        blob = pickle.dumps(reply, _PICKLE_PROTOCOL)
    except Exception as exc:
        blob = pickle.dumps((KIND_ERROR, RuntimeError(
            f"shard reply does not pickle: {exc!r}")), _PICKLE_PROTOCOL)
    if len(blob) > max_frame_bytes:
        blob = pickle.dumps((KIND_ERROR, FrameTooLargeError(
            f"shard reply is {len(blob)} bytes "
            f"(max_frame_bytes={max_frame_bytes})")), _PICKLE_PROTOCOL)
    return [_HEADER.pack(len(blob)), blob]


def _reply_buffers(reply: Tuple[str, Any], compression: Optional[str],
                   max_frame_bytes: int) -> List[Any]:
    """Wire buffers of a reply under the connection's negotiated framing.

    ``compression`` selects codec framing (``None`` = plain pickle, for
    connections that did not negotiate the codec).  Degradation follows
    :func:`_pickled_reply_buffers`: an unencodable or oversized reply
    becomes a small plain-pickled ``("error", ...)`` naming the reply
    kind and its skeleton-vs-ndarray size breakdown when it was the
    frame limit that bit.
    """
    if compression is None:
        return _pickled_reply_buffers(reply, max_frame_bytes)
    try:
        frame = wire_codec.encode_message(reply, compression=compression)
    except Exception as exc:
        return _pickled_reply_buffers((KIND_ERROR, RuntimeError(
            f"shard reply does not encode: {exc!r}")), max_frame_bytes)
    if frame.total_bytes > max_frame_bytes:
        return _pickled_reply_buffers((KIND_ERROR, FrameTooLargeError(
            f"shard reply is an oversized {frame.kind!r} frame "
            f"(max_frame_bytes={max_frame_bytes}; "
            f"{frame.describe()})")), max_frame_bytes)
    return [_HEADER.pack(frame.total_bytes)] + frame.buffers()


# --------------------------------------------------------------------- #
# shard server
# --------------------------------------------------------------------- #

class _Session:
    """One parent session's server-side state, isolated by hello token.

    ``residents`` is the fleet :func:`~repro.fl.executor.
    _handle_resident_request` mutates; ``codec_state`` the delta-decoder
    bases its frames establish.  Both are private to the token — the
    whole point of the session table is that no other parent can reach
    them.  ``conn`` is the live connection currently owning the session
    (``None`` while disconnected-but-resumable).
    """

    __slots__ = ("token", "residents", "codec_state", "conn", "last_active")

    def __init__(self, token: Optional[str]) -> None:
        self.token = token
        self.residents: Dict[int, Any] = {}
        self.codec_state = wire_codec.DeltaDecoderState()
        self.conn: Optional["_Connection"] = None
        self.last_active = 0.0


class _Connection:
    """Per-connection state machine of the shard-server event loop.

    Owns the incremental frame reassembly (non-blocking reads into a
    pre-sized writable buffer, so codec decodes stay zero-copy and
    writable exactly like the blocking path), the outbox of partially
    written replies, and the protocol state (``hello`` until the
    handshake completes, then ``ready``).
    """

    HELLO = "hello"
    READY = "ready"

    __slots__ = ("sock", "peer", "max_frame_bytes", "state", "session",
                 "compression", "deadline", "frames", "outbox", "busy",
                 "pending_item", "close_after_flush", "dead", "interest",
                 "_header", "_header_got", "_payload", "_payload_view",
                 "_payload_got")

    def __init__(self, sock: socket.socket, max_frame_bytes: int,
                 handshake_deadline: float) -> None:
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self.sock = sock
        try:
            self.peer = format_address(sock.getpeername()[:2])
        except OSError:
            self.peer = "?"
        self.max_frame_bytes = max_frame_bytes
        self.state = _Connection.HELLO
        self.session: Optional[_Session] = None
        self.compression: Optional[str] = None
        #: Monotonic instant after which the connection counts as wedged
        #: (``None`` = no deadline armed; see :meth:`arm_deadline`).
        self.deadline: Optional[float] = handshake_deadline
        #: Complete frame payloads awaiting processing, in arrival order.
        self.frames: deque = deque()
        #: Reply bytes awaiting a writable socket.
        self.outbox: deque = deque()
        #: A heavy request of this connection is queued or executing.
        self.busy = False
        self.pending_item: Optional[Tuple[str, Any]] = None
        self.close_after_flush = False
        self.dead = False
        self.interest = selectors.EVENT_READ
        self._header = bytearray(_HEADER.size)
        self._header_got = 0
        self._payload: Optional[bytearray] = None
        self._payload_view: Optional[memoryview] = None
        self._payload_got = 0

    @property
    def mid_frame(self) -> bool:
        return self._header_got > 0 or self._payload is not None

    def on_readable(self) -> bool:
        """Drain the socket into frames; ``False`` = connection is over.

        Frames completed before an EOF are still queued — a parent that
        sends ``bye`` and closes in one breath must have its ``bye``
        honoured.
        """
        while True:
            if self._payload is None:
                want = _HEADER.size - self._header_got
                try:
                    got = self.sock.recv_into(
                        memoryview(self._header)[self._header_got:], want)
                except (BlockingIOError, InterruptedError):
                    return True
                except OSError:
                    return False
                if got == 0:
                    return False
                self._header_got += got
                if self._header_got < _HEADER.size:
                    continue
                (length,) = _HEADER.unpack(self._header)
                if length > self.max_frame_bytes:
                    # The announced payload is never read, so the stream
                    # is desynchronized beyond repair: drop it.
                    return False
                self._header_got = 0
                self._payload = bytearray(length)
                self._payload_view = memoryview(self._payload)
                self._payload_got = 0
                if length == 0:
                    self._finish_frame()
                continue
            want = len(self._payload) - self._payload_got
            try:
                got = self.sock.recv_into(
                    self._payload_view[self._payload_got:], want)
            except (BlockingIOError, InterruptedError):
                return True
            except OSError:
                return False
            if got == 0:
                return False
            self._payload_got += got
            if self._payload_got == len(self._payload):
                self._finish_frame()

    def _finish_frame(self) -> None:
        view, self._payload_view = self._payload_view, None
        self._payload = None
        self.frames.append(view)

    def queue_reply(self, buffers: List[Any]) -> bool:
        """Queue wire buffers and try to flush them immediately."""
        for buffer in buffers:
            view = memoryview(buffer).cast("B")
            if len(view):
                self.outbox.append(view)
        return self.flush()

    def flush(self) -> bool:
        """Write as much of the outbox as the socket accepts right now."""
        while self.outbox:
            try:
                if hasattr(self.sock, "sendmsg"):
                    # Cap the iovec count per call: sendmsg rejects
                    # vectors longer than IOV_MAX with EMSGSIZE.
                    batch = [self.outbox[index]
                             for index in range(min(len(self.outbox), 512))]
                    sent = self.sock.sendmsg(batch)
                else:  # pragma: no cover - non-POSIX
                    sent = self.sock.send(self.outbox[0])
            except (BlockingIOError, InterruptedError):
                return True
            except OSError:
                return False
            while self.outbox and sent >= len(self.outbox[0]):
                sent -= len(self.outbox[0])
                self.outbox.popleft()
            if sent and self.outbox:
                self.outbox[0] = self.outbox[0][sent:]
        return True

    def arm_deadline(self, now: float, read_deadline: float) -> None:
        """Re-arm the liveness deadline after progress on this socket.

        Handshake deadlines are absolute (set at accept and never
        extended).  After the handshake, the clock only runs while the
        peer owes us bytes — a partially received frame or unflushed
        replies — and resets on every byte of progress, so slow peers
        survive and wedged ones are bounded.
        """
        if self.state == _Connection.HELLO:
            return
        if self.mid_frame or self.outbox:
            self.deadline = now + read_deadline
        else:
            self.deadline = None

    def close(self) -> None:
        self.dead = True
        try:
            self.sock.close()
        except OSError:
            pass


class ShardServer:
    """Event-loop shard server multiplexing concurrent parent sessions.

    A single ``selectors`` loop owns every socket: it accepts,
    reassembles frames incrementally per connection, answers control
    traffic (hello, ping, bye, shutdown, malformed-frame errors) inline,
    and feeds heavy requests (``run``/``map``/``fold``/``vfold``) to one
    dedicated worker thread — arrival order within a connection, round-
    robin across connections when several are ready.  One worker, not a
    pool: resident training is CPU-bound and single-parent runs must
    stay bit-identical to the serial backend, so requests execute
    strictly one at a time while the loop keeps every other session's
    heartbeats and handshakes live.

    Sessions (resident fleets + delta-decoder state) live in a
    ``{token: _Session}`` table — see :class:`_Session` — capped at
    ``max_sessions`` with least-recently-active eviction of disconnected
    entries.  Construct directly only in tests (it exposes the bound
    ``address`` before serving); production entry points are
    :func:`serve_shard` and the ``repro shard-worker`` CLI.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 backlog: int = DEFAULT_LISTEN_BACKLOG,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 read_deadline: float = DEFAULT_READ_DEADLINE_S,
                 handshake_timeout: float = _HANDSHAKE_TIMEOUT_S,
                 ready: Optional[Callable[[str, int], None]] = None,
                 handler: Optional[Callable] = None) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if read_deadline <= 0:
            raise ValueError("read_deadline must be positive")
        self.max_frame_bytes = max_frame_bytes
        self.max_sessions = max_sessions
        self.read_deadline = read_deadline
        self.handshake_timeout = handshake_timeout
        self._ready_callback = ready
        self._handler = handler
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(backlog)
            self._listener.setblocking(False)
        except OSError:
            self._listener.close()
            raise
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._sessions: Dict[str, _Session] = {}
        self._conns: set = set()
        self._run_queue: deque = deque()  # conns with a dispatchable item
        self._worker_active = False
        self._running = False
        self._accept_failures = 0
        self._accept_paused_until: Optional[float] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._work: "queue.Queue" = queue.Queue()
        self._done: "queue.Queue" = queue.Queue()
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None

    # ------------------------------------------------------------------ #
    # loop scaffolding
    # ------------------------------------------------------------------ #

    def serve_forever(self) -> None:
        """Serve until a ``shutdown`` frame arrives, then tear down."""
        if self._handler is None:
            # Imported lazily: executor imports this module at load time.
            from .executor import _handle_resident_request
            self._handler = _handle_resident_request
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._listener, selectors.EVENT_READ,
                                "accept")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        worker = threading.Thread(target=self._worker_main,
                                  name="shard-request-worker", daemon=True)
        worker.start()
        self._running = True
        if self._ready_callback is not None:
            self._ready_callback(*self.address)
        try:
            while self._running:
                now = time.monotonic()
                events = self._selector.select(self._select_timeout(now))
                now = time.monotonic()
                for key, mask in events:
                    if key.data == "accept":
                        self._on_accept_ready()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        self._service_connection(key.data, mask, now)
                    if not self._running:
                        break
                self._drain_done(now)
                self._check_deadlines(now)
                self._maybe_resume_accept(now)
                if self._listener.fileno() == -1:
                    # The listener is gone (external close()): no new
                    # parents can ever arrive, so end the serve loop.
                    self._running = False
        finally:
            self._running = False
            self._work.put(None)
            worker.join(timeout=60)
            for conn in list(self._conns):
                conn.close()
            self._conns.clear()
            self._sessions.clear()
            self._selector.close()
            for sock in (self._wake_r, self._wake_w):
                try:
                    sock.close()
                except OSError:
                    pass
            self.close()

    def close(self) -> None:
        """Close the listener (idempotent; ends a running serve loop)."""
        try:
            self._listener.close()
        except OSError:
            pass
        self._wake()  # a blocked select() must notice the closure

    def _select_timeout(self, now: float) -> Optional[float]:
        deadlines = [conn.deadline for conn in self._conns
                     if conn.deadline is not None]
        if self._accept_paused_until is not None:
            deadlines.append(self._accept_paused_until)
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now)

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (OSError, AttributeError):
            pass  # a pending wakeup (full pipe) or teardown: both fine

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # accepting
    # ------------------------------------------------------------------ #

    def _accept(self) -> Tuple[socket.socket, Any]:
        """One ``accept()`` call (separate so tests can inject failures)."""
        return self._listener.accept()

    def _on_accept_ready(self) -> None:
        while True:
            try:
                sock, _ = self._accept()
            except (BlockingIOError, InterruptedError):
                self._accept_failures = 0
                return
            except OSError as exc:
                if self._listener.fileno() == -1:
                    # The listener itself is gone — nothing left to
                    # serve; only this (or shutdown) ends the loop.
                    self._running = False
                    return
                # Transient (EMFILE, ECONNABORTED, ...): pause accepting
                # with exponential backoff instead of dying; established
                # connections keep being served throughout.
                self._accept_failures += 1
                delay = min(_ACCEPT_BACKOFF_MAX_S,
                            _ACCEPT_BACKOFF_MIN_S
                            * (2 ** (self._accept_failures - 1)))
                print(f"repro shard-worker: accept() failed ({exc}); "
                      f"retrying in {delay:.2f}s", file=sys.stderr)
                try:
                    self._selector.unregister(self._listener)
                except (KeyError, ValueError):
                    pass
                self._accept_paused_until = time.monotonic() + delay
                return
            self._accept_failures = 0
            conn = _Connection(sock, self.max_frame_bytes,
                               time.monotonic() + self.handshake_timeout)
            self._conns.add(conn)
            self._selector.register(conn.sock, selectors.EVENT_READ, conn)

    def _maybe_resume_accept(self, now: float) -> None:
        if (self._accept_paused_until is not None
                and now >= self._accept_paused_until):
            self._accept_paused_until = None
            if self._listener.fileno() != -1:
                self._selector.register(self._listener,
                                        selectors.EVENT_READ, "accept")

    # ------------------------------------------------------------------ #
    # per-connection servicing
    # ------------------------------------------------------------------ #

    def _service_connection(self, conn: _Connection, mask: int,
                            now: float) -> None:
        if conn.dead:
            return
        alive = True
        if mask & selectors.EVENT_READ:
            alive = conn.on_readable()
        self._process_frames(conn, now)
        if conn.dead or not self._running:
            return
        if not alive:
            self._drop(conn)
            return
        self._post_service(conn, now)

    def _post_service(self, conn: _Connection, now: float) -> None:
        """Flush, settle write interest and deadlines after any activity."""
        if conn.outbox and not conn.flush():
            self._drop(conn)
            return
        if not conn.outbox and conn.close_after_flush:
            self._drop(conn)
            return
        interest = selectors.EVENT_READ
        if conn.outbox:
            interest |= selectors.EVENT_WRITE
        if interest != conn.interest:
            conn.interest = interest
            self._selector.modify(conn.sock, interest, conn)
        conn.arm_deadline(now, self.read_deadline)

    def _drop(self, conn: _Connection) -> None:
        """Close one connection; its session stays resumable."""
        if conn.dead:
            return
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.close()
        self._conns.discard(conn)
        session = conn.session
        if session is not None and session.conn is conn:
            session.conn = None
            session.last_active = time.monotonic()

    def _check_deadlines(self, now: float) -> None:
        for conn in list(self._conns):
            if conn.deadline is not None and now >= conn.deadline:
                if conn.state == _Connection.READY:
                    print(f"repro shard-worker: dropping stalled "
                          f"connection {conn.peer} (no progress for "
                          f"{self.read_deadline:.0f}s mid-frame); its "
                          f"session stays resumable", file=sys.stderr)
                self._drop(conn)

    # ------------------------------------------------------------------ #
    # frame processing (event-loop thread)
    # ------------------------------------------------------------------ #

    def _process_frames(self, conn: _Connection, now: float) -> None:
        """Handle queued frames in order until one needs the worker.

        Control frames are answered inline; the first heavy frame marks
        the connection busy and joins the round-robin run queue — later
        frames of the same connection wait so per-connection ordering is
        exact.
        """
        while (not conn.busy and not conn.dead and not conn.close_after_flush
               and conn.frames and self._running):
            blob = conn.frames.popleft()
            if conn.session is not None:
                conn.session.last_active = now
            if conn.state == _Connection.HELLO:
                self._handle_hello(conn, blob, now)
                continue
            if wire_codec.is_codec_frame(blob):
                self._enqueue_heavy(conn, ("codec", blob))
                continue
            try:
                kind, payload = _load_message(blob)
            except MalformedMessageError as exc:
                # Framing is intact, only this payload was garbage:
                # report it and keep serving.
                if not conn.queue_reply(_pickled_reply_buffers(
                        (KIND_ERROR, exc), self.max_frame_bytes)):
                    self._drop(conn)
                continue
            if kind == KIND_PING:
                pong = (KIND_PONG,
                        {"residents": len(conn.session.residents)})
                if not conn.queue_reply(_reply_buffers(
                        pong, conn.compression, self.max_frame_bytes)):
                    self._drop(conn)
                continue
            if kind == KIND_BYE:
                self._end_session(conn)
                self._drop(conn)
                return
            if kind == KIND_SHUTDOWN:
                self._running = False
                return
            self._enqueue_heavy(conn, ("msg", (kind, payload)))

    def _handle_hello(self, conn: _Connection, blob: Any,
                      now: float) -> None:
        try:
            kind, payload = _load_message(blob)
        except MalformedMessageError:
            self._drop(conn)
            return
        if kind != KIND_HELLO or not isinstance(payload, dict):
            self._refuse(conn, ProtocolError(
                f"expected a hello, got {kind!r}"))
            return
        peer_version = payload.get("protocol")
        if peer_version != PROTOCOL_VERSION:
            self._refuse(conn, ProtocolVersionError(
                f"shard speaks protocol {PROTOCOL_VERSION}, "
                f"client sent {peer_version!r}"))
            return
        resolved = self._resolve_session(conn, payload.get("session"), now)
        if resolved is None:
            return
        session, resumed = resolved
        conn.session = session
        requested_codec = payload.get("codec")
        codec_ack: Optional[Dict[str, Any]] = None
        if isinstance(requested_codec, dict):
            codec_ack = {
                "version": wire_codec.CODEC_VERSION,
                "compression": wire_codec.negotiate_compression(
                    requested_codec.get("compression")),
            }
            conn.compression = codec_ack["compression"]
        # Shared-memory arenas are single-host; a remote shard can never
        # map the parent's /dev/shm, so the capability is always declined.
        ack = {"protocol": PROTOCOL_VERSION, "resumed": resumed,
               "residents": len(session.residents),
               "codec": codec_ack, "arena": False}
        conn.state = _Connection.READY
        conn.deadline = None
        if not conn.queue_reply(_pickled_reply_buffers(
                (KIND_HELLO_ACK, ack), self.max_frame_bytes)):
            self._drop(conn)

    def _refuse(self, conn: _Connection, error: BaseException) -> None:
        """Answer a failed hello with an error, then hang up."""
        conn.close_after_flush = True
        if not conn.queue_reply(_pickled_reply_buffers(
                (KIND_ERROR, error), self.max_frame_bytes)):
            self._drop(conn)

    def _resolve_session(self, conn: _Connection, token: Optional[str],
                         now: float):
        """The (session, resumed) a hello token maps to, or ``None``.

        ``None`` (an anonymous hello) gets a private session that is
        never stored: it cannot be resumed and dies with the connection.
        A known token resumes its session, taking it over from a stale
        live connection if one lingers.  A new token claims a table slot,
        evicting the least-recently-active disconnected session when the
        table is full — and is refused outright when every retained
        session still has a live connection.
        """
        if token is None:
            session = _Session(None)
            session.conn = conn
            session.last_active = now
            return session, False
        session = self._sessions.get(token)
        if session is not None:
            stale = session.conn
            if stale is not None and stale is not conn:
                self._drop(stale)
            session.conn = conn
            session.last_active = now
            return session, True
        if len(self._sessions) >= self.max_sessions:
            evictable = [candidate for candidate in self._sessions.values()
                         if candidate.conn is None]
            if not evictable:
                self._refuse(conn, ProtocolError(
                    f"shard is at capacity: {len(self._sessions)} live "
                    f"sessions (raise --max-sessions)"))
                return None
            victim = min(evictable, key=lambda s: s.last_active)
            del self._sessions[victim.token]
        session = _Session(token)
        session.conn = conn
        session.last_active = now
        self._sessions[token] = session
        return session, False

    def _end_session(self, conn: _Connection) -> None:
        """A polite ``bye``: the run is over, retire the session.

        A later reconnect with the same token must start clean instead
        of resuming an emptied fleet, so the token is forgotten too.
        """
        session = conn.session
        if session is None:
            return
        session.residents.clear()
        session.codec_state = wire_codec.DeltaDecoderState()
        session.conn = None
        if session.token is not None:
            self._sessions.pop(session.token, None)

    # ------------------------------------------------------------------ #
    # heavy-request scheduling
    # ------------------------------------------------------------------ #

    def _enqueue_heavy(self, conn: _Connection,
                       item: Tuple[str, Any]) -> None:
        conn.busy = True
        conn.pending_item = item
        self._run_queue.append(conn)
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        while not self._worker_active and self._run_queue:
            conn = self._run_queue.popleft()
            if conn.dead:
                conn.busy = False
                conn.pending_item = None
                continue
            item, conn.pending_item = conn.pending_item, None
            self._worker_active = True
            self._work.put((conn, item))

    def _drain_done(self, now: float) -> None:
        while True:
            try:
                conn, buffers, control = self._done.get_nowait()
            except queue.Empty:
                return
            self._worker_active = False
            conn.busy = False
            if control == KIND_SHUTDOWN:
                self._running = False
                return
            if control == KIND_BYE:
                self._end_session(conn)
                self._drop(conn)
            elif not conn.dead:
                if buffers is not None and not conn.queue_reply(buffers):
                    self._drop(conn)
                else:
                    # The reply freed the connection: its next queued
                    # frame (if any) may now proceed.
                    self._process_frames(conn, now)
                    if not conn.dead and self._running:
                        self._post_service(conn, now)
            self._maybe_dispatch()

    # ------------------------------------------------------------------ #
    # worker thread
    # ------------------------------------------------------------------ #

    def _worker_main(self) -> None:
        while True:
            job = self._work.get()
            if job is None:
                return
            conn, item = job
            try:
                buffers, control = self._execute(conn, item)
            except Exception as exc:  # belt and braces: never die
                buffers, control = _pickled_reply_buffers(
                    (KIND_ERROR, _picklable_exception(exc)),
                    self.max_frame_bytes), None
            self._done.put((conn, buffers, control))
            self._wake()

    def _execute(self, conn: _Connection, item: Tuple[str, Any]):
        """Decode (if codec-framed) and run one heavy request.

        Runs on the worker thread.  Per-session state (residents, delta
        decoder) is only ever touched here, and the worker runs one
        request at a time, so sessions need no locking.  Returns
        ``(reply_buffers, control)`` where ``control`` flags decoded
        ``bye``/``shutdown`` for the loop to act on.
        """
        session = conn.session
        flavor, data = item
        if flavor == "codec":
            try:
                kind, payload = wire_codec.decode_message(
                    data, delta_state=session.codec_state)
            except wire_codec.DeltaBaseMismatchError as exc:
                # The parent's delta referenced a base this shard does
                # not hold (e.g. a reply it never saw committed it on
                # our side): report it so the parent re-sends a full
                # snapshot.
                return _reply_buffers((KIND_ERROR, exc), conn.compression,
                                      self.max_frame_bytes), None
            except wire_codec.CodecError as exc:
                return _pickled_reply_buffers(
                    (KIND_ERROR, MalformedMessageError(str(exc))),
                    self.max_frame_bytes), None
        else:
            kind, payload = data
        if kind in (KIND_BYE, KIND_SHUTDOWN):
            return None, kind
        if kind == KIND_PING:
            reply: Tuple[str, Any] = (KIND_PONG,
                                      {"residents":
                                       len(session.residents)})
        else:
            reply = self._handler(kind, payload, session.residents)
        return _reply_buffers(reply, conn.compression,
                              self.max_frame_bytes), None


def serve_shard(host: str = "127.0.0.1", port: int = 0, *,
                max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                backlog: int = DEFAULT_LISTEN_BACKLOG,
                ready: Optional[Callable[[str, int], None]] = None,
                max_sessions: int = DEFAULT_MAX_SESSIONS,
                read_deadline: float = DEFAULT_READ_DEADLINE_S,
                handshake_timeout: float = _HANDSHAKE_TIMEOUT_S) -> None:
    """Run one shard server until a ``shutdown`` message arrives.

    The server hosts worker-resident clients exactly like a persistent
    pipe worker: specs build residents once, then only weights/masks/RNG
    digests travel per cycle.  Several parent sessions are served
    concurrently by a :class:`ShardServer` event loop — one resident
    fleet and delta-decoder state per hello token (at most
    ``max_sessions`` retained), control traffic answered inline, heavy
    requests executed one at a time in round-robin order so every
    session's history stays bit-identical to a serial run.  A connection
    that stalls mid-frame longer than ``read_deadline`` seconds is
    dropped (its session stays resumable); transient ``accept`` failures
    back off and retry instead of killing the server.

    ``ready`` is called with the bound ``(host, port)`` once listening —
    the CLI prints the announce line from it, the auto-spawn mode and the
    tests read it back.
    """
    server = ShardServer(host, port, max_frame_bytes=max_frame_bytes,
                         backlog=backlog, max_sessions=max_sessions,
                         read_deadline=read_deadline,
                         handshake_timeout=handshake_timeout, ready=ready)
    try:
        server.serve_forever()
    finally:
        server.close()
