"""Federated-learning substrate: clients, server, aggregation, simulation."""

from .aggregation import (ModelStructure, aggregate_full, aggregate_partial,
                          normalize_weights, sample_count_weights)
from .client import (ClientConfig, ClientSpec, ClientState, ClientUpdate,
                     FLClient)
from .executor import (FAILURE_POLICIES, ExecutionBackend,
                       PersistentProcessBackend, ProcessPoolBackend,
                       SerialBackend, ShardError, ShardedSocketBackend,
                       ThreadPoolBackend, TrainingJob, available_backends,
                       make_backend)
from .history import CycleRecord, TrainingHistory
from .sampling import (ClientSampler, FullParticipation, RandomSampling,
                       ResourceAwareSampling)
from .server import FLServer
from .simulation import (FederatedSimulation, build_simulation,
                         make_client_specs)
from .strategy import CycleOutcome, FederatedStrategy

__all__ = [
    "FLClient",
    "ClientConfig",
    "ClientSpec",
    "ClientState",
    "ClientUpdate",
    "FLServer",
    "ModelStructure",
    "aggregate_full",
    "aggregate_partial",
    "sample_count_weights",
    "normalize_weights",
    "TrainingHistory",
    "CycleRecord",
    "FederatedStrategy",
    "CycleOutcome",
    "FederatedSimulation",
    "build_simulation",
    "make_client_specs",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "ShardedSocketBackend",
    "ShardError",
    "FAILURE_POLICIES",
    "TrainingJob",
    "available_backends",
    "make_backend",
    "ClientSampler",
    "FullParticipation",
    "RandomSampling",
    "ResourceAwareSampling",
]
