"""Federated-learning substrate: clients, server, aggregation, simulation."""

from .aggregation import (ModelStructure, PartialAggregate, aggregate_full,
                          aggregate_partial, finalize_partials, fold_updates,
                          merge_partials, normalize_weights,
                          sample_count_weights)
from .chaos import ChaosController, FaultPlan, seeded_jitter
from .client import (ClientConfig, ClientSpec, ClientState, ClientUpdate,
                     FLClient, TrainingSummary)
from .executor import (AGGREGATION_MODES, FAILURE_POLICIES, FUSION_MODES,
                       WEIGHT_ARENA_MODES, ExecutionBackend,
                       PersistentProcessBackend, ProcessPoolBackend,
                       RetryPolicy, SerialBackend, ShardError,
                       ShardedSocketBackend, ThreadPoolBackend, TrainingJob,
                       available_backends, make_backend)
from .history import CycleRecord, TrainingHistory
from .sampling import (ClientSampler, FullParticipation, RandomSampling,
                       ResourceAwareSampling)
from .server import FLServer
from .simulation import (FederatedSimulation, VirtualFleet, build_simulation,
                         make_client_specs)
from .strategy import CycleOutcome, FederatedStrategy

__all__ = [
    "FLClient",
    "ClientConfig",
    "ClientSpec",
    "ClientState",
    "ClientUpdate",
    "TrainingSummary",
    "FLServer",
    "ModelStructure",
    "PartialAggregate",
    "aggregate_full",
    "aggregate_partial",
    "fold_updates",
    "merge_partials",
    "finalize_partials",
    "sample_count_weights",
    "normalize_weights",
    "TrainingHistory",
    "CycleRecord",
    "FederatedStrategy",
    "CycleOutcome",
    "FederatedSimulation",
    "VirtualFleet",
    "build_simulation",
    "make_client_specs",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "ShardedSocketBackend",
    "ShardError",
    "RetryPolicy",
    "ChaosController",
    "FaultPlan",
    "seeded_jitter",
    "AGGREGATION_MODES",
    "FAILURE_POLICIES",
    "FUSION_MODES",
    "WEIGHT_ARENA_MODES",
    "TrainingJob",
    "available_backends",
    "make_backend",
    "ClientSampler",
    "FullParticipation",
    "RandomSampling",
    "ResourceAwareSampling",
]
