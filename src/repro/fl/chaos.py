"""Deterministic chaos engine: seeded fault plans over the substrate.

Robustness of the worker-resident backends used to be exercised by one
hand-written CI script that SIGKILLed a shard mid-run.  This module
turns that into a *parameterized, replayable* subsystem: a
:class:`FaultPlan` describes **which** faults strike **when** (shard
kills at cycle *k*, frame delays/drops/truncations/resets on the wire,
straggler slowdowns inside the workers), and a :class:`ChaosController`
binds the plan to a live backend and executes it.

Determinism contract
--------------------
Every random decision derives from an order-independent seeded stream:
each ``(seed, domain, cycle, slot)`` tuple keys its own
``numpy.random.default_rng`` generator, so the same ``(seed, plan)``
replays the same fault sequence regardless of how the run interleaves —
there is no global RNG, no wall-clock input, and injected events are
recorded against *cycle indices*, never timestamps.  The injected
faults themselves only ever cost wall-clock time: shard kills and wire
faults funnel into the executor's failure policies (retry is
bit-identical by construction) and straggler sleeps do not touch any
numerics.

Layering
--------
This module sits *below* :mod:`repro.fl.executor` (which imports the
jitter helper for its :class:`~repro.fl.executor.RetryPolicy` backoff)
and binds to backends purely through their public/underscore attributes
at runtime — it must never import the executor.  Frame faults are
applied by :class:`~repro.fl.transport.MessageChannel` through its
``fault_injector`` hook; the :class:`FrameFault` objects handed across
that boundary are plain data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FRAME_FAULT_ACTIONS",
    "FrameFault",
    "ShardKill",
    "StragglerWave",
    "FaultPlan",
    "ChaosController",
    "seeded_jitter",
]

#: Wire-level fault actions :class:`~repro.fl.transport.MessageChannel`
#: knows how to apply (see its ``fault_injector`` hook): ``delay`` stalls
#: the frame, ``drop`` closes the connection instead of sending it,
#: ``truncate`` sends the header but cuts the payload short, ``reset``
#: hard-resets the connection (RST instead of FIN).
FRAME_FAULT_ACTIONS = ("delay", "drop", "truncate", "reset")

#: Domain tags separating the independent seeded streams (a kill
#: decision must never perturb a frame-fault decision).
_DOMAIN_JITTER = 0x6A
_DOMAIN_FRAME = 0xF7
_DOMAIN_STRAGGLE = 0x57

#: Mask keeping derived seed words inside SeedSequence's unsigned domain.
_SEED_MASK = 0xFFFFFFFFFFFFFFFF


def _derived_rng(seed: int, domain: int, *words: int) -> np.random.Generator:
    """One order-independent seeded stream per (seed, domain, words) key."""
    entropy = [(int(seed)) & _SEED_MASK, domain & _SEED_MASK]
    entropy.extend(int(word) & _SEED_MASK for word in words)
    return np.random.default_rng(entropy)


def seeded_jitter(seed: int, attempt: int, slot: int = 0) -> float:
    """Deterministic jitter fraction in ``[0, 1)`` for backoff delays.

    Derived from ``(seed, attempt, slot)`` alone, so two processes (or
    two replays of one run) compute the same jitter without sharing any
    RNG state — this is what lets the executor's retry backoff stay
    inside the determinism lint's sanctioned seeded-generator idiom
    instead of reaching for ``random``/wall-clock entropy.
    """
    rng = _derived_rng(seed, _DOMAIN_JITTER, attempt, slot)
    return float(rng.random())


@dataclass(frozen=True)
class FrameFault:
    """One wire-level fault to apply to an outgoing frame.

    ``seconds`` is only meaningful for ``delay``; ``keep_bytes`` only
    for ``truncate`` (how much of the payload still goes out before the
    connection is cut).
    """

    action: str
    seconds: float = 0.0
    keep_bytes: int = 0

    def __post_init__(self) -> None:
        if self.action not in FRAME_FAULT_ACTIONS:
            raise ValueError(f"unknown frame fault action {self.action!r}; "
                             f"available: {FRAME_FAULT_ACTIONS}")
        if self.seconds < 0:
            raise ValueError("frame fault seconds must be non-negative")
        if self.keep_bytes < 0:
            raise ValueError("frame fault keep_bytes must be non-negative")


@dataclass(frozen=True)
class ShardKill:
    """SIGKILL (or sever) one slot's worker at the start of a cycle."""

    cycle: int
    slot: int

    def __post_init__(self) -> None:
        if self.cycle < 1:
            raise ValueError("shard_kill cycle must be positive")
        if self.slot < 0:
            raise ValueError("shard_kill slot must be non-negative")


@dataclass(frozen=True)
class StragglerWave:
    """Slow the named slots down by ``seconds`` during the named cycles.

    The delay is shipped inside the wire batch and slept *inside* the
    worker, so the parent really blocks on a busy slot — the same shape
    a genuinely overloaded shard produces.
    """

    cycles: Tuple[int, ...]
    slots: Tuple[int, ...]
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("straggler wave seconds must be positive")
        if not self.cycles:
            raise ValueError("straggler wave needs at least one cycle")


class FaultPlan:
    """Seeded, declarative description of every fault a run injects.

    Scheduled faults (:class:`ShardKill`, :class:`StragglerWave`) fire
    exactly where the plan names them; probabilistic wire faults draw
    from per-``(cycle, slot)`` derived streams (see module docs), so the
    whole plan replays identically for the same ``(seed, spec)``.
    """

    def __init__(self, seed: int = 0,
                 shard_kills: Sequence[ShardKill] = (),
                 straggler_waves: Sequence[StragglerWave] = (),
                 frame_delay_probability: float = 0.0,
                 frame_delay_max_s: float = 0.01,
                 frame_drop_probability: float = 0.0,
                 frame_truncate_probability: float = 0.0,
                 connection_reset_probability: float = 0.0) -> None:
        for name, probability in (
                ("frame_delay_probability", frame_delay_probability),
                ("frame_drop_probability", frame_drop_probability),
                ("frame_truncate_probability", frame_truncate_probability),
                ("connection_reset_probability",
                 connection_reset_probability)):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} must be within [0, 1] "
                                 f"(got {probability!r})")
        total = (frame_delay_probability + frame_drop_probability
                 + frame_truncate_probability + connection_reset_probability)
        if total > 1.0:
            raise ValueError(f"frame fault probabilities must sum to at "
                             f"most 1 (got {total:g})")
        if frame_delay_max_s < 0:
            raise ValueError("frame_delay_max_s must be non-negative")
        self.seed = int(seed)
        self.shard_kills = tuple(shard_kills)
        self.straggler_waves = tuple(straggler_waves)
        self.frame_delay_probability = frame_delay_probability
        self.frame_delay_max_s = frame_delay_max_s
        self.frame_drop_probability = frame_drop_probability
        self.frame_truncate_probability = frame_truncate_probability
        self.connection_reset_probability = connection_reset_probability

    # ------------------------------------------------------------------ #
    # spec parsing
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: Optional[Dict[str, Any]],
                  seed: int = 0) -> "FaultPlan":
        """Build a plan from the ``"faults"`` object of a scenario spec.

        Recognized keys::

            {"shard_kill": [{"cycle": 3, "slot": 1}, ...],
             "straggler_wave": [{"cycles": [2, 3], "slots": [0],
                                 "seconds": 0.05}, ...],
             "frame_delay": {"probability": 0.2, "max_seconds": 0.01},
             "frame_drop": {"probability": 0.05},
             "frame_truncate": {"probability": 0.02},
             "connection_reset": {"probability": 0.02}}

        Every field is optional; unknown keys are rejected with a
        one-line error naming the key.
        """
        spec = dict(spec or {})
        kills = [ShardKill(cycle=int(entry["cycle"]),
                           slot=int(entry["slot"]))
                 for entry in spec.pop("shard_kill", ())]
        waves = [StragglerWave(
                     cycles=tuple(int(cycle) for cycle in entry["cycles"]),
                     slots=tuple(int(slot) for slot in entry["slots"]),
                     seconds=float(entry["seconds"]))
                 for entry in spec.pop("straggler_wave", ())]
        delay = dict(spec.pop("frame_delay", {}))
        drop = dict(spec.pop("frame_drop", {}))
        truncate = dict(spec.pop("frame_truncate", {}))
        reset = dict(spec.pop("connection_reset", {}))
        if spec:
            raise ValueError(f"unknown fault spec key "
                             f"{sorted(spec)[0]!r}; available: shard_kill, "
                             f"straggler_wave, frame_delay, frame_drop, "
                             f"frame_truncate, connection_reset")
        return cls(
            seed=seed, shard_kills=kills, straggler_waves=waves,
            frame_delay_probability=float(delay.get("probability", 0.0)),
            frame_delay_max_s=float(delay.get("max_seconds", 0.01)),
            frame_drop_probability=float(drop.get("probability", 0.0)),
            frame_truncate_probability=float(truncate.get("probability",
                                                          0.0)),
            connection_reset_probability=float(reset.get("probability",
                                                         0.0)))

    @property
    def has_frame_faults(self) -> bool:
        """Whether any probabilistic wire fault can ever fire."""
        return (self.frame_delay_probability > 0
                or self.frame_drop_probability > 0
                or self.frame_truncate_probability > 0
                or self.connection_reset_probability > 0)

    # ------------------------------------------------------------------ #
    # scheduled faults
    # ------------------------------------------------------------------ #
    def kills_for_cycle(self, cycle: int) -> List[int]:
        """Slots whose workers die at the start of ``cycle`` (sorted)."""
        return sorted(kill.slot for kill in self.shard_kills
                      if kill.cycle == cycle)

    def straggle_seconds(self, cycle: int, slot: int) -> float:
        """Injected in-worker delay for ``slot`` during ``cycle``."""
        return sum(wave.seconds for wave in self.straggler_waves
                   if cycle in wave.cycles and slot in wave.slots)

    # ------------------------------------------------------------------ #
    # probabilistic wire faults
    # ------------------------------------------------------------------ #
    def frame_fault_stream(self, cycle: int, slot: int
                           ) -> Callable[[], Optional[FrameFault]]:
        """One deterministic per-``(cycle, slot)`` fault decision stream.

        Each call decides the fate of one outgoing frame; consecutive
        calls consume the same derived generator, so the n-th frame a
        slot sends within a cycle always meets the same fate across
        replays.
        """
        rng = _derived_rng(self.seed, _DOMAIN_FRAME, cycle, slot)

        def next_fault() -> Optional[FrameFault]:
            if not self.has_frame_faults:
                return None
            draw = float(rng.random())
            edge = self.frame_delay_probability
            if draw < edge:
                return FrameFault(
                    "delay",
                    seconds=float(rng.random()) * self.frame_delay_max_s)
            edge += self.frame_drop_probability
            if draw < edge:
                return FrameFault("drop")
            edge += self.frame_truncate_probability
            if draw < edge:
                return FrameFault("truncate")
            edge += self.connection_reset_probability
            if draw < edge:
                return FrameFault("reset")
            return None

        return next_fault


class ChaosController:
    """Bind a :class:`FaultPlan` to a live backend and execute it.

    The controller duck-types against the worker-resident backends: it
    kills auto-spawned shard processes (``_procs``), persistent pipe
    workers (``_workers``) or severs external shard channels
    (``_channels``), whichever the slot actually has.  Every injected
    fault is appended to :attr:`events` — an append-only list of plain
    dicts keyed by cycle index, the replayable chaos log scenario runs
    persist.

    Install with ``backend.attach_chaos(controller)`` and call
    :meth:`begin_cycle` once per aggregation cycle (the scenario runner
    does both).
    """

    def __init__(self, plan: FaultPlan,
                 events: Optional[List[Dict[str, Any]]] = None) -> None:
        self.plan = plan
        self.backend: Optional[Any] = None
        #: Append-only fault log (plain dicts; cycle-indexed, never
        #: timestamped — see the module's determinism contract).
        self.events: List[Dict[str, Any]] = (events if events is not None
                                             else [])
        self._cycle = 0
        self._frame_streams: Dict[int, Callable[[], Optional[FrameFault]]] = {}
        self._straggled: set = set()

    def bind(self, backend: Any) -> None:
        """Adopt the backend whose slots this controller torments."""
        self.backend = backend

    def record(self, event: str, **fields: Any) -> None:
        """Append one fault event to the chaos log."""
        entry: Dict[str, Any] = {"cycle": self._cycle, "event": event}
        entry.update(fields)
        self.events.append(entry)

    # ------------------------------------------------------------------ #
    def begin_cycle(self, cycle: int) -> None:
        """Advance to ``cycle``: rotate fault streams, execute kills."""
        self._cycle = int(cycle)
        self._frame_streams = {}
        self._straggled = set()
        for slot in self.plan.kills_for_cycle(self._cycle):
            if self._kill_slot(slot):
                self.record("shard_kill", slot=slot)

    def _kill_slot(self, slot: int) -> bool:
        """SIGKILL (or sever) whatever worker serves ``slot``."""
        backend = self.backend
        if backend is None:
            return False
        proc = getattr(backend, "_procs", {}).get(slot)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
            return True
        worker = getattr(backend, "_workers", {}).get(slot)
        if worker is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=10.0)
            return True
        # External shards cannot be killed from here; severing the
        # channel models the connection loss the parent would observe.
        channel = getattr(backend, "_channels", {}).get(slot)
        if channel is not None and not channel.closed:
            channel.close()
            return True
        return False

    # ------------------------------------------------------------------ #
    def straggle_seconds(self, slot: int) -> float:
        """In-worker delay to ship with ``slot``'s next batch."""
        seconds = self.plan.straggle_seconds(self._cycle, slot)
        # Recorded once per (cycle, slot): batch rebuilds and failover
        # retries re-ask for the delay but inject the same fault.
        if seconds > 0 and slot not in self._straggled:
            self._straggled.add(slot)
            self.record("straggle", slot=slot, seconds=seconds)
        return seconds

    def frame_injector(self, slot: int
                       ) -> Callable[[str, int], Optional[FrameFault]]:
        """The ``MessageChannel.fault_injector`` callable for one slot.

        Only consulted for codec frames (batch dispatches), never for
        control blobs — wall-clock-paced traffic like heartbeat pings
        must not consume fault-stream draws, or replays would diverge.
        """
        def inject(frame_kind: str, num_bytes: int) -> Optional[FrameFault]:
            stream = self._frame_streams.get(slot)
            if stream is None:
                stream = self.plan.frame_fault_stream(self._cycle, slot)
                self._frame_streams[slot] = stream
            fault = stream()
            if fault is not None:
                self.record(f"frame_{fault.action}", slot=slot,
                            frame_kind=frame_kind, frame_bytes=num_bytes)
            return fault

        return inject
