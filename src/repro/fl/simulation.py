"""The federated-learning simulation engine.

:class:`FederatedSimulation` wires together clients (with their datasets and
device profiles), the aggregation server, the hardware cost model and a
simulated clock.  Strategies (see :mod:`repro.fl.strategy`) drive it cycle
by cycle; the engine provides them with

* numerical services — training a client on given weights/mask, evaluating
  the global model;
* temporal services — how many simulated seconds a client needs for a
  (possibly shrunk) local training cycle, including communication.

Keeping numerics and timing separate is what lets a single-process NumPy
simulation reproduce the paper's wall-clock comparisons: a straggler
training a 40 %-volume model is numerically identical here and on a real
testbed, while its cycle *time* comes from the analytical cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

import numpy as np

from ..data.dataset import Dataset
from ..hardware.cost_model import TrainingCostModel
from ..hardware.device import DeviceProfile
from ..hardware.network import CommunicationModel
from ..nn.masking import ModelMask
from ..nn.model import Sequential
from .aggregation import collapse_levels, fold_updates, normalize_weights
from .client import (ClientConfig, ClientSpec, ClientUpdate, FLClient,
                     TrainingSummary)
from .executor import ExecutionBackend, TrainingJob, make_backend
from .history import CycleRecord, TrainingHistory
from .server import FLServer
from .strategy import CycleOutcome, FederatedStrategy

__all__ = ["FederatedSimulation", "VirtualFleet", "build_simulation",
           "make_client_specs"]

#: Cache key of one cycle-duration estimate: client index, mask signature,
#: epochs, communication toggle (see
#: :meth:`FederatedSimulation.client_cycle_seconds`).
_CostKey = Tuple[int, Optional[Tuple[Tuple[str, float], ...]], int, bool]


def _mask_signature(mask: Optional[ModelMask]
                    ) -> Optional[Tuple[Tuple[str, float], ...]]:
    """Hashable timing signature of a mask.

    Cycle duration depends only on the per-layer active *fractions*, not on
    which particular neurons are active — rotating selections of the same
    volume therefore share one cache entry.
    """
    if mask is None:
        return None
    return tuple(sorted(mask.layer_fractions().items()))


@dataclass(frozen=True)
class VirtualFleet:
    """Recipe for a fleet of logical clients materialized on demand.

    Fleet virtualization decouples the number of *logical* clients from
    the number of resident slots: instead of shipping one
    :class:`~repro.fl.client.ClientSpec` per client, the parent ships
    this O(1) recipe plus a contiguous ``[lo, hi)`` id range per slot,
    and each shard builds, trains and folds its clients one (chunk) at a
    time — two shards can host 10⁶ logical clients without the parent
    ever holding per-client state.

    Logical clients are stateless across cycles: client ``i`` is rebuilt
    each cycle from ``spec_for(i)`` with a fresh deterministic RNG
    (``seed + 1000 * i``), so results are bit-identical for any shard
    topology.  ``dataset_factory`` and ``model_factory`` must be
    picklable (module-level callables or ``functools.partial`` of such)
    and ``dataset_factory(i)`` must be deterministic in ``i``.
    """

    num_clients: int
    dataset_factory: Callable[[int], Dataset]
    device: DeviceProfile
    model_factory: Callable[[], Sequential]
    config: ClientConfig = field(default_factory=ClientConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("a virtual fleet needs at least one client")

    @property
    def uniform_factor(self) -> float:
        """Per-client aggregation weight — uniform across the fleet.

        Per-client sample counts would require the parent to know O(N)
        state, so virtual cycles weight every client equally; the same
        factor scales each client's training loss into the fleet's exact
        mean-loss accumulator.
        """
        return 1.0 / float(self.num_clients)

    def spec_for(self, client_id: int) -> ClientSpec:
        """Materialize one logical client's spec (deterministically)."""
        if not 0 <= client_id < self.num_clients:
            raise IndexError(f"no virtual client {client_id} "
                             f"(fleet size {self.num_clients})")
        return ClientSpec(client_id=client_id,
                          dataset=self.dataset_factory(client_id),
                          device=self.device,
                          model_factory=self.model_factory,
                          config=self.config, seed=self.seed)


class FederatedSimulation:
    """Discrete-event simulation of one federated collaboration."""

    def __init__(self, clients: Sequence[FLClient], server: FLServer,
                 input_shape: Tuple[int, ...],
                 comm_model: Optional[CommunicationModel] = None,
                 workload_scale: float = 1.0,
                 seed: int = 0,
                 backend: Union[None, str, ExecutionBackend] = None) -> None:
        if not clients:
            raise ValueError("a simulation needs at least one client")
        if workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        self.clients: List[FLClient] = list(clients)
        self.server = server
        self.input_shape = tuple(input_shape)
        self.comm_model = comm_model or CommunicationModel()
        #: Multiplier applied to every client's per-cycle sample count when
        #: estimating *simulated* durations.  The numerical training uses a
        #: reduced synthetic dataset; setting ``workload_scale`` to the
        #: ratio between the paper's real local dataset size and the
        #: synthetic one makes the simulated clock reflect full-size
        #: workloads without paying their NumPy training cost.
        self.workload_scale = workload_scale
        self.clock_s = 0.0
        self.rng = np.random.default_rng(seed)
        #: Execution backend running each batch of client trainings (see
        #: :mod:`repro.fl.executor`).  All backends are bit-identical under
        #: a fixed seed; they differ only in wall-clock behavior.
        self.backend: ExecutionBackend = make_backend(backend)
        # A caller-provided instance may have served another fleet: drop
        # any worker-resident replicas so our clients' specs are shipped.
        self.backend.invalidate_client()
        self._cost_models: Dict[int, TrainingCostModel] = {}
        self._cycle_cost_cache: Dict[_CostKey, float] = {}
        #: Client indices currently churned out of the collaboration
        #: (scenario fleet churn) — excluded from :meth:`client_indices`
        #: but never removed from :attr:`clients`, so indices stay
        #: stable and a departed client can rejoin with its state.
        self._departed: set = set()

    # ------------------------------------------------------------------ #
    # client access
    # ------------------------------------------------------------------ #
    def num_clients(self) -> int:
        """Number of clients in the collaboration."""
        return len(self.clients)

    def client(self, index: int) -> FLClient:
        """Client by index."""
        return self.clients[index]

    def client_indices(self) -> List[int]:
        """Indices of the clients currently in the collaboration.

        Excludes clients churned out via :meth:`deactivate_client`
        (scenario fleet churn); with no churn this is every client.
        """
        return [index for index in range(len(self.clients))
                if index not in self._departed]

    def deactivate_client(self, index: int) -> None:
        """Churn a client out of the collaboration (scenario churn).

        The client object stays in the fleet (stable indices, state
        preserved for a later :meth:`reactivate_client`); it simply
        stops appearing in :meth:`client_indices`, so strategies skip
        it.  Refuses to empty the fleet — a collaboration of zero
        clients cannot aggregate anything.
        """
        if not 0 <= index < len(self.clients):
            raise IndexError(f"no client with index {index} "
                             f"(fleet size {len(self.clients)})")
        remaining = set(self.client_indices()) - {index}
        if not remaining:
            raise ValueError("cannot deactivate the last active client")
        self._departed.add(index)

    def reactivate_client(self, index: int) -> None:
        """Churn a previously deactivated client back in."""
        if not 0 <= index < len(self.clients):
            raise IndexError(f"no client with index {index} "
                             f"(fleet size {len(self.clients)})")
        self._departed.discard(index)

    def client_specs(self) -> List[ClientSpec]:
        """The picklable spec of every fleet member (current identities)."""
        return [client.spec for client in self.clients]

    def add_client(self, client: FLClient) -> int:
        """Register a new client mid-collaboration (scalability path)."""
        self.clients.append(client)
        index = len(self.clients) - 1
        self.invalidate_cost_caches(index)
        return index

    def set_client_device(self, index: int, device: DeviceProfile) -> None:
        """Swap one client's device profile mid-collaboration.

        Routes the mutation through both cache layers: the timing caches
        (the estimate depends on the device) and the execution backend
        (a worker-resident replica carries the old spec until re-shipped).
        """
        self.clients[index].device = device
        self.invalidate_cost_caches(index)

    def set_backend(self,
                    backend: Union[None, str, ExecutionBackend],
                    max_workers: Optional[int] = None,
                    shards=None,
                    on_shard_failure: Optional[str] = None,
                    heartbeat_interval: Optional[float] = None,
                    wire_compression: Optional[str] = None,
                    delta_shipping: Optional[bool] = None,
                    aggregation: Optional[str] = None,
                    weight_arena: Optional[str] = None,
                    fusion: Optional[str] = None,
                    retry_policy=None,
                    connect_timeout: Optional[float] = None
                    ) -> ExecutionBackend:
        """Swap the execution backend, closing the previous pooled one.

        The old backend is always closed unless the caller passed the
        *same instance* back in — in particular, passing the same *name*
        twice builds a fresh pool and shuts the old one down rather than
        leaking its workers.  Swapping is lossless: every backend mirrors
        post-training client state (weights, RNG digests) into the
        parent-side :class:`FLClient` objects after each batch, so the new
        backend picks the fleet up exactly where the old one left it
        (worker-resident backends rebuild their replicas from the current
        specs and RNG digests on first use).

        ``shards`` (addresses or a localhost count, ``"sharded"`` backend
        only) selects the shard topology — see
        :class:`~repro.fl.executor.ShardedSocketBackend`.
        ``on_shard_failure`` (``"abort"``/``"rebalance"``/``"degrade"``,
        worker-resident backends only) selects what a dead worker or
        shard does to a running collaboration, ``retry_policy`` (a
        :class:`~repro.fl.executor.RetryPolicy` or spec dict) tunes the
        recovery pacing, ``connect_timeout`` bounds shard connections,
        and ``heartbeat_interval`` enables between-batch liveness
        probing of connected shards.
        ``wire_compression`` (``"none"``/``"zlib"``) and
        ``delta_shipping`` configure the worker-resident backends' wire
        codec (see :mod:`repro.fl.codec`), and ``aggregation``
        (``"flat"``/``"hierarchical"``) selects the aggregation topology
        used by :meth:`train_and_aggregate` and
        :meth:`run_virtual_cycle` — see
        :func:`~repro.fl.executor.make_backend`.
        ``weight_arena`` (``"off"``/``"shm"``, ``"persistent"`` backend
        only) dispatches weights through shared-memory arenas, and
        ``fusion`` (``"off"``/``"stacked"``, worker-resident backends
        only) trains topology-homogeneous clients as one batched-GEMM
        pass — both bit-identical to serial.
        """
        new_backend = make_backend(backend, max_workers=max_workers,
                                   shards=shards,
                                   on_shard_failure=on_shard_failure,
                                   heartbeat_interval=heartbeat_interval,
                                   wire_compression=wire_compression,
                                   delta_shipping=delta_shipping,
                                   aggregation=aggregation,
                                   weight_arena=weight_arena,
                                   fusion=fusion,
                                   retry_policy=retry_policy,
                                   connect_timeout=connect_timeout)
        if new_backend is self.backend:
            return new_backend
        old_backend = self.backend
        self.backend = new_backend
        # The adopted backend may hold replicas of another fleet; force a
        # spec re-ship so resident state always matches *our* clients.
        new_backend.invalidate_client()
        old_backend.close()
        return new_backend

    def close(self) -> None:
        """Release the execution backend's worker resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "FederatedSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # timing services
    # ------------------------------------------------------------------ #
    def invalidate_cost_caches(self, index: Optional[int] = None) -> None:
        """Drop cached cost models / cycle estimates.

        ``index`` restricts the invalidation to one client (used by
        :meth:`add_client` so a rejoining index never inherits estimates
        from a previously removed fleet member); ``None`` clears
        everything (call after mutating ``workload_scale``, the
        communication model or a client's device in place).

        The invalidation is also forwarded to the execution backend:
        backends keeping worker-resident client replicas re-ship the
        affected client's spec before its next training, so fleet
        mutations never leave a stale replica behind.
        """
        self.backend.invalidate_client(index)
        if index is None:
            self._cost_models.clear()
            self._cycle_cost_cache.clear()
            return
        self._cost_models.pop(index, None)
        for key in [key for key in self._cycle_cost_cache
                    if key[0] == index]:
            del self._cycle_cost_cache[key]

    def cost_model_for(self, index: int) -> TrainingCostModel:
        """Per-epoch training cost model of one client (cached)."""
        if index not in self._cost_models:
            client = self.clients[index]
            scaled_samples = max(1, int(round(client.num_samples
                                              * self.workload_scale)))
            self._cost_models[index] = TrainingCostModel(
                self.server.global_model, self.input_shape,
                samples_per_cycle=scaled_samples,
                batch_size=client.config.batch_size)
        return self._cost_models[index]

    def client_cycle_seconds(self, index: int,
                             mask: Optional[ModelMask] = None,
                             local_epochs: Optional[int] = None,
                             include_communication: bool = True) -> float:
        """Simulated duration of one local training cycle for a client.

        The compute and memory terms come from the analytical cost model
        evaluated on the (possibly shrunk) model; the communication term
        charges the upload of the trained parameters plus the download of
        the full global model.

        Estimates are cached by ``(client, mask signature, epochs,
        communication)`` — strategies re-query the same volumes every
        cycle, and rotating masks of equal volume cost the same.  The
        cache is dropped via :meth:`invalidate_cost_caches`.
        """
        client = self.clients[index]
        epochs_key = (local_epochs if local_epochs is not None
                      else client.config.local_epochs)
        key: _CostKey = (index, _mask_signature(mask), epochs_key,
                         include_communication)
        cached = self._cycle_cost_cache.get(key)
        if cached is not None:
            return cached
        cost_model = self.cost_model_for(index)
        fractions = mask.layer_fractions() if mask is not None else None
        estimate = cost_model.estimate(client.device, fractions)
        duration = ((estimate.compute_seconds + estimate.memory_seconds)
                    * epochs_key)
        if include_communication:
            model_cost = cost_model.model_cost(fractions)
            upload_values = model_cost.parameters
            download_values = cost_model.full_model_cost.parameters
            duration += self.comm_model.round_trip_seconds(
                client.device, upload_values, download_values)
        self._cycle_cost_cache[key] = duration
        return duration

    def slowest_full_cycle_seconds(self) -> float:
        """Duration of a synchronous cycle with every client training fully."""
        return max(self.client_cycle_seconds(index)
                   for index in self.client_indices())

    def fastest_full_cycle_seconds(self) -> float:
        """Cycle duration of the fastest (capable) device."""
        return min(self.client_cycle_seconds(index)
                   for index in self.client_indices())

    # ------------------------------------------------------------------ #
    # numerical services
    # ------------------------------------------------------------------ #
    def run_jobs(self, jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        """Execute a batch of training jobs on the execution backend.

        Updates come back in job order whatever the backend's completion
        order, so strategies see exactly the sequence a serial loop would
        have produced.  A job referencing an unknown client index fails
        fast here rather than inside a worker.
        """
        for job in jobs:
            if not 0 <= job.index < len(self.clients):
                raise IndexError(f"no client with index {job.index} "
                                 f"(fleet size {len(self.clients)})")
        if not jobs:
            return []
        return self.backend.run_jobs(self.clients, jobs)

    def train_clients(self, indices: Sequence[int],
                      weights: Optional[Dict[str, np.ndarray]] = None,
                      masks: Optional[Mapping[int, ModelMask]] = None,
                      local_epochs: Optional[int] = None,
                      base_cycle: int = 0) -> List[ClientUpdate]:
        """Train a batch of clients and return their updates in order.

        This is the strategy-facing batch API: one call per cycle hands
        all selected trainings to the execution backend at once.

        Parameters
        ----------
        indices:
            Client indices to train, in result order.
        weights:
            Shared starting weights (default: one snapshot of the current
            global model, taken once for the whole batch).
        masks:
            Optional per-client neuron masks keyed by client index;
            clients without an entry train the full model.
        local_epochs:
            Optional shared override of the configured local epochs.
        base_cycle:
            Cycle the starting weights belong to (staleness bookkeeping).
        """
        if weights is None:
            weights = self.server.get_global_weights()
        masks = masks or {}
        jobs = [TrainingJob(index=index, weights=weights,
                            mask=masks.get(index),
                            local_epochs=local_epochs,
                            base_cycle=base_cycle)
                for index in indices]
        return self.run_jobs(jobs)

    def train_client(self, index: int,
                     weights: Optional[Dict[str, np.ndarray]] = None,
                     mask: Optional[ModelMask] = None,
                     local_epochs: Optional[int] = None,
                     base_cycle: int = 0) -> ClientUpdate:
        """Train one client and return its update.

        ``weights`` defaults to the current global model.  Single-client
        convenience wrapper over :meth:`run_jobs`, so even one-off
        trainings honor the configured execution backend.
        """
        if weights is None:
            weights = self.server.get_global_weights()
        return self.run_jobs([TrainingJob(
            index=index, weights=weights, mask=mask,
            local_epochs=local_epochs, base_cycle=base_cycle)])[0]

    def train_and_aggregate(self, indices: Sequence[int],
                            masks: Optional[Mapping[int, ModelMask]] = None,
                            local_epochs: Optional[int] = None,
                            base_cycle: int = 0,
                            partial: bool = True) -> List[TrainingSummary]:
        """Train a batch of clients and fold their updates into the server.

        The topology-aware sibling of :meth:`train_clients` +
        :meth:`FLServer.aggregate <repro.fl.server.FLServer.aggregate>`:
        with the backend's ``aggregation`` set to ``"flat"`` (default)
        it is exactly that two-step sequence; with ``"hierarchical"``
        each slot folds its residents' updates locally and ships one
        partial aggregate (upstream bytes O(weights × slots) instead of
        O(weights × clients)), and the parent combines them via
        :meth:`FLServer.install_partials
        <repro.fl.server.FLServer.install_partials>`.  The resulting
        global weights are bit-identical either way: client weights are
        sample-count proportional in both paths, the fold's per-level
        sums are exact (partition-independent), and the masked/unmasked
        decision (``partial and`` any mask present) is made globally
        before dispatch, mirroring ``FLServer.aggregate``.

        Returns one :class:`~repro.fl.client.TrainingSummary` per
        trained client, in ``indices`` order — trained *weights* do not
        come back under hierarchical aggregation (that is the point), so
        strategies consuming this API observe only the weight-free
        residue of each training.  Parent-side client replicas keep
        their RNG streams in sync in both modes; their model weights are
        only mirrored in flat mode (every training starts from the
        dispatched global snapshot, so they are never consulted).
        """
        if not indices:
            raise ValueError("cannot aggregate an empty training batch")
        masks = masks or {}
        if self.backend.aggregation != "hierarchical":
            updates = self.train_clients(indices, masks=masks,
                                         local_epochs=local_epochs,
                                         base_cycle=base_cycle)
            # Graceful degradation (``on_shard_failure="degrade"``)
            # returns ``None`` at a dropped client's position; the
            # aggregation runs over the survivors, whose sample-count
            # weights re-normalize automatically inside the server.
            updates = [update for update in updates if update is not None]
            if updates:
                self.server.aggregate(updates, partial=partial)
            return [TrainingSummary(client_id=update.client_id,
                                    client_name=update.client_name,
                                    num_samples=update.num_samples,
                                    train_loss=update.train_loss)
                    for update in updates]
        for index in indices:
            if not 0 <= index < len(self.clients):
                raise IndexError(f"no client with index {index} "
                                 f"(fleet size {len(self.clients)})")
        weights = self.server.get_global_weights()
        jobs = [TrainingJob(index=index, weights=weights,
                            mask=masks.get(index),
                            local_epochs=local_epochs,
                            base_cycle=base_cycle)
                for index in indices]
        # Same floats as ``sample_count_weights`` over the updates: an
        # update's sample count IS its client's dataset size.
        factors = normalize_weights(
            [float(self.clients[index].num_samples) for index in indices])
        fold_partial = partial and any(
            masks.get(index) is not None for index in indices)
        partials, summaries = self.backend.run_fold(
            self.clients, jobs, factors,
            structure=self.server.structure, partial=fold_partial)
        if partials:
            self.server.install_partials(partials)
        # Dropped clients (degrade mode) have ``None`` summaries — the
        # in-slot folds already re-weighted over the survivors.
        return [TrainingSummary(client_id=self.clients[index].client_id,
                                client_name=self.clients[index].name,
                                num_samples=summary[0],
                                train_loss=summary[1])
                for index, summary in zip(indices, summaries)
                if summary is not None]

    def run_virtual_cycle(self, fleet: VirtualFleet) -> Tuple[float, int]:
        """Train every logical client of ``fleet`` and aggregate uniformly.

        One synchronous FedAvg cycle over a :class:`VirtualFleet`,
        starting from (and installing back into) the server's global
        model.  Under ``"hierarchical"`` aggregation each slot ships one
        partial aggregate for its whole id range; under ``"flat"`` the
        raw per-client updates travel upstream and are folded here with
        the same uniform factor — bit-identical results, radically
        different upstream bytes (the scale benchmark measures exactly
        this gap).

        Returns ``(mean train loss, clients trained)``; the mean is an
        exact pre-rounded sum of ``loss_i / num_clients`` terms, so it
        too is independent of the shard topology.
        """
        weights = self.server.get_global_weights()
        hierarchical = self.backend.aggregation == "hierarchical"
        payloads, loss_levels, count = self.backend.run_virtual_fold(
            fleet, weights, structure=self.server.structure,
            return_updates=not hierarchical)
        if hierarchical:
            self.server.install_partials(payloads)
        else:
            folded = fold_updates(
                payloads, np.full(len(payloads), fleet.uniform_factor),
                partial=False)
            self.server.install_partials([folded])
        return float(collapse_levels(loss_levels)), count

    def evaluate_global(self) -> float:
        """Accuracy of the current global model on the server's test set."""
        return self.server.evaluate()

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, strategy: FederatedStrategy, num_cycles: int,
            eval_every: int = 1,
            target_accuracy: Optional[float] = None,
            verbose: bool = False) -> TrainingHistory:
        """Run ``num_cycles`` aggregation cycles under ``strategy``.

        Parameters
        ----------
        strategy:
            The collaboration strategy to execute.
        num_cycles:
            Number of parameter-aggregation cycles (of the capable devices,
            matching the paper's x-axes).
        eval_every:
            Evaluate the global model every this many cycles (the last
            cycle is always evaluated).
        target_accuracy:
            Stop early once the global accuracy reaches this value.
        verbose:
            Print a one-line summary per evaluated cycle.
        """
        if num_cycles <= 0:
            raise ValueError("num_cycles must be positive")
        if eval_every <= 0:
            raise ValueError("eval_every must be positive")
        history = TrainingHistory(strategy_name=strategy.name)
        strategy.setup(self)
        last_accuracy = 0.0
        for cycle in range(1, num_cycles + 1):
            outcome = strategy.execute_cycle(cycle, self)
            self.clock_s += outcome.duration_s
            should_eval = (cycle % eval_every == 0) or (cycle == num_cycles)
            if should_eval:
                last_accuracy = self.evaluate_global()
            history.append(CycleRecord(
                cycle=cycle,
                sim_time_s=self.clock_s,
                global_accuracy=last_accuracy,
                mean_train_loss=outcome.mean_train_loss,
                participating_clients=outcome.participating_clients,
                straggler_fraction_trained=outcome.straggler_fraction_trained,
                extra=dict(outcome.extra),
                # Degrade-mode audit trail: exactly which clients sat
                # this cycle out because their shard was down.
                dropped_clients=self.backend.consume_dropped_clients(),
            ))
            if verbose:
                print(f"[{strategy.name}] cycle {cycle:3d} "
                      f"t={self.clock_s:9.1f}s acc={last_accuracy:.4f} "
                      f"loss={outcome.mean_train_loss:.4f}")
            if target_accuracy is not None and last_accuracy >= target_accuracy:
                break
        return history


def make_client_specs(model_factory: Callable[[], Sequential],
                      client_datasets: Sequence[Dataset],
                      devices: Sequence,
                      client_config=None,
                      seed: int = 0) -> List[ClientSpec]:
    """One picklable :class:`ClientSpec` per (dataset, device) pair.

    Specs are the unit worker-resident execution backends ship to worker
    processes; building the fleet through them keeps the description and
    the runtime state cleanly separated.
    """
    if len(client_datasets) != len(devices):
        raise ValueError("need exactly one device per client dataset")
    from .client import ClientConfig
    config = client_config or ClientConfig()
    return [
        ClientSpec(client_id=index, dataset=dataset, device=device,
                   model_factory=model_factory, config=config, seed=seed)
        for index, (dataset, device) in enumerate(zip(client_datasets,
                                                      devices))
    ]


def build_simulation(model_factory: Callable[[], Sequential],
                     client_datasets: Optional[Sequence[Dataset]] = None,
                     devices: Optional[Sequence] = None,
                     test_dataset: Optional[Dataset] = None,
                     input_shape: Tuple[int, ...] = (),
                     client_config=None,
                     comm_model: Optional[CommunicationModel] = None,
                     workload_scale: float = 1.0,
                     seed: int = 0,
                     backend: Union[None, str, ExecutionBackend] = None,
                     client_specs: Optional[Sequence[ClientSpec]] = None
                     ) -> FederatedSimulation:
    """Convenience constructor used by experiments and examples.

    Builds one :class:`FLClient` per (dataset, device) pair — or from
    prebuilt ``client_specs`` — an :class:`FLServer` around
    ``model_factory`` and wires them into a :class:`FederatedSimulation`.
    """
    if client_specs is None:
        if client_datasets is None or devices is None:
            raise ValueError("pass either client_specs or both "
                             "client_datasets and devices")
        client_specs = make_client_specs(model_factory, client_datasets,
                                         devices, client_config=client_config,
                                         seed=seed)
    elif client_datasets is not None or devices is not None:
        raise ValueError("client_specs is mutually exclusive with "
                         "client_datasets/devices")
    server = FLServer(model_factory, test_dataset=test_dataset)
    clients = [FLClient.from_spec(spec) for spec in client_specs]
    return FederatedSimulation(clients, server, input_shape,
                               comm_model=comm_model,
                               workload_scale=workload_scale, seed=seed,
                               backend=backend)
