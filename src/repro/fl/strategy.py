"""Strategy interface: how one parameter-aggregation cycle is executed.

The simulation engine (:mod:`repro.fl.simulation`) owns clients, the
server, the hardware cost models and the simulated clock.  A *strategy*
(Synchronous FL, Asynchronous FL, AFO, Random partial training, Helios, …)
decides, for every cycle, which clients train, with which neuron masks, how
the updates are aggregated and how long the cycle takes on the simulated
clock.  Each strategy returns a :class:`CycleOutcome` the engine turns into
a history record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .simulation import FederatedSimulation

__all__ = ["CycleOutcome", "FederatedStrategy"]


@dataclass
class CycleOutcome:
    """What happened during one aggregation cycle."""

    duration_s: float
    participating_clients: int
    mean_train_loss: float = 0.0
    straggler_fraction_trained: float = 1.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.participating_clients < 0:
            raise ValueError("participating_clients must be non-negative")


class FederatedStrategy:
    """Base class for aggregation-cycle strategies."""

    #: Human-readable name used in histories, tables and plots.
    name: str = "strategy"

    def setup(self, sim: "FederatedSimulation") -> None:
        """One-time initialization before the first cycle (optional)."""

    def execute_cycle(self, cycle: int,
                      sim: "FederatedSimulation") -> CycleOutcome:
        """Run one aggregation cycle; must update the server's global model."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"
