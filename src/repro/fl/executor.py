"""Execution backends: how a cycle's client trainings actually run.

The simulation engine hands every aggregation cycle's local trainings to an
:class:`ExecutionBackend` as a batch of :class:`TrainingJob` descriptions.
Four implementations are provided:

* :class:`SerialBackend` — the historical behavior: one client after the
  other in the calling thread.  Zero overhead, always available.
* :class:`ThreadPoolBackend` — clients train concurrently on worker
  threads.  NumPy releases the GIL inside its kernels, so multi-core
  machines overlap the matrix work of independent clients; single-core
  machines still overlap any latency the client hides (I/O, real device
  round-trips once those exist).
* :class:`ProcessPoolBackend` — clients are shipped to worker processes
  (requires every client component — datasets, model factories, loss
  factories — to be picklable).  Full CPU parallelism, but the *whole*
  client (dataset included) is re-pickled every batch, so dispatch cost
  grows with dataset and model size.
* :class:`PersistentProcessBackend` — clients live *resident* in worker
  processes.  Each worker builds its clients once from their picklable
  :class:`~repro.fl.client.ClientSpec` and keeps them across cycles; per
  batch the parent ships only the weights snapshot (once per worker),
  per-job masks and a per-client RNG digest.  Dispatch cost is therefore
  O(weights), independent of dataset size — this is the substrate for
  sharded / multi-host fleets.
* :class:`ShardedSocketBackend` — the persistent protocol lifted onto
  sockets (see :mod:`repro.fl.transport`): the fleet is partitioned
  across N shard servers, each an addressable ``repro shard-worker``
  process hosting resident clients.  Shards may run on other machines
  (``shards=["host:port", ...]``) or be auto-spawned on localhost for
  single-machine use.

The two resident backends share all determinism-critical machinery
(sticky placement, spec-version residency, weight-snapshot dedup,
ordered reply collection) through :class:`_ResidentFleetBackend`; they
differ only in the transport underneath (duplex pipes vs. framed
sockets).

Determinism
-----------
All backends are *bit-identical* to each other under a fixed seed:

* every client owns its RNG and model replica, so trainings of distinct
  clients share no mutable state;
* jobs for the *same* client are chained sequentially in submission order
  (never interleaved), preserving the client's RNG consumption order; the
  persistent backend additionally pins each client to one worker (sticky
  placement) so its resident replica is never duplicated;
* results are re-ordered to match the submitted job order before they are
  returned, regardless of completion order;
* the process-based backends ship the client's post-training RNG state and
  weights back to the parent so the in-process client objects advance
  exactly as if they had trained locally.

A worker that raises propagates its exception to the caller — the batch
fails loudly rather than silently dropping a client's update.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import select
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..nn.masking import ModelMask
from .client import ClientSpec, ClientUpdate, FLClient
from .transport import (DEFAULT_MAX_FRAME_BYTES, ProtocolError,
                        TransportError, _picklable_exception,
                        connect_to_shard, format_address, parse_address)

__all__ = [
    "TrainingJob",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "ShardedSocketBackend",
    "ShardError",
    "available_backends",
    "make_backend",
]

#: Pickle protocol used for worker traffic (payload accounting included).
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Transport failures that mean "the worker/shard is gone", as opposed to
#: an exception the remote training itself raised.
_TRANSPORT_FAILURES = (EOFError, OSError, TransportError)

#: Control messages, pickled once at import time so that closing a
#: backend never needs to pickle anything — ``close()`` stays safe even
#: during interpreter shutdown, when module globals may be torn down.
_CLOSE_BLOB = pickle.dumps(("close", None), _PICKLE_PROTOCOL)
_BYE_BLOB = pickle.dumps(("bye", None), _PICKLE_PROTOCOL)
_SHUTDOWN_BLOB = pickle.dumps(("shutdown", None), _PICKLE_PROTOCOL)


@dataclass
class TrainingJob:
    """One client-local training to execute within a batch.

    Attributes
    ----------
    index:
        Client index within the simulation's fleet.
    weights:
        The starting weights the client trains from (typically a snapshot
        of the global model; asynchronous strategies pass stale snapshots).
    mask:
        Optional neuron mask (soft-training / partial-model baselines).
    local_epochs:
        Optional override of the client's configured local epochs.
    base_cycle:
        Aggregation cycle the ``weights`` snapshot was taken at (staleness
        bookkeeping).
    """

    index: int
    weights: Dict[str, np.ndarray]
    mask: Optional[ModelMask] = None
    local_epochs: Optional[int] = None
    base_cycle: int = 0


def _train_jobs_inplace(client: FLClient,
                        jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
    """Run one client's jobs sequentially, mutating the client in place."""
    return [client.local_train(job.weights, mask=job.mask,
                               local_epochs=job.local_epochs,
                               base_cycle=job.base_cycle)
            for job in jobs]


def _train_jobs_in_subprocess(client: FLClient, jobs: Sequence[TrainingJob]
                              ) -> Tuple[List[ClientUpdate], dict]:
    """Worker entry point of the process backend.

    Returns the updates plus the client's post-training RNG state so the
    parent process can advance its own copy of the client identically.
    """
    updates = _train_jobs_inplace(client, jobs)
    return updates, client.rng.bit_generator.state


def _group_jobs(jobs: Sequence[TrainingJob]
                ) -> List[Tuple[int, List[int], List[TrainingJob]]]:
    """Group jobs by client index, preserving submission order.

    Returns ``(client_index, positions, client_jobs)`` triples where
    ``positions`` are the indices of the jobs in the original batch.  Jobs
    of the same client stay in submission order so its RNG consumption is
    identical to a serial run.
    """
    groups: Dict[int, Tuple[List[int], List[TrainingJob]]] = {}
    for position, job in enumerate(jobs):
        positions, client_jobs = groups.setdefault(job.index, ([], []))
        positions.append(position)
        client_jobs.append(job)
    return [(index, positions, client_jobs)
            for index, (positions, client_jobs) in groups.items()]


class ExecutionBackend:
    """Abstract batch executor for client-local trainings."""

    #: Identifier used by :func:`make_backend` and the CLI.
    name: str = "backend"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        """Execute a batch of jobs and return updates in job order."""
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        Generic escape hatch for parallelizable non-training work (fleet
        profiling, evaluation sweeps).  The default runs serially;
        concurrency-capable backends override it.
        """
        return [fn(item) for item in items]

    def invalidate_client(self, index: Optional[int] = None) -> None:
        """Client lifecycle notification (added / mutated / removed).

        The simulation routes fleet mutations — :meth:`add_client`, device
        swaps, cost-cache invalidations — through this hook so backends
        holding worker-resident replicas re-ship the client's spec before
        its next training.  ``None`` invalidates the whole fleet.  In-
        process backends share the caller's client objects and need no
        action.
        """

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        """Bytes this backend would pickle to dispatch ``jobs`` right now.

        Diagnostic used by the substrate benchmark to compare dispatch
        cost across backends.  In-process backends ship nothing (0); the
        process backend re-pickles whole clients; the persistent backend
        ships weights/masks/RNG digests only (plus specs for clients its
        workers have not built yet).
        """
        return 0

    def close(self) -> None:
        """Release worker resources (no-op for the serial backend).

        Closing is idempotent, and a closed backend may be used again:
        pools are re-created lazily on the next batch.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Train clients one after the other in the calling thread."""

    name = "serial"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return [clients[job.index].local_train(
            job.weights, mask=job.mask, local_epochs=job.local_epochs,
            base_cycle=job.base_cycle) for job in jobs]


class _PoolBackend(ExecutionBackend):
    """Shared machinery of the thread- and process-pool backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    @property
    def pool(self):
        """The lazily created worker pool."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception:
                # close() must stay idempotent and safe during interpreter
                # shutdown; a pool that cannot shut down cleanly anymore
                # has nothing left worth raising about.
                pass

    def _submit_job_groups(self, clients: Sequence[FLClient],
                           jobs: Sequence[TrainingJob],
                           worker: Callable) -> List[ClientUpdate]:
        """Fan the per-client job groups out to the pool, reorder results."""
        groups = _group_jobs(jobs)
        futures: List[Tuple[Future, int, List[int]]] = [
            (self.pool.submit(worker, clients[index], client_jobs),
             index, positions)
            for index, positions, client_jobs in groups
        ]
        results: List[Optional[ClientUpdate]] = [None] * len(jobs)
        try:
            for future, index, positions in futures:
                updates = self._collect(clients[index], future)
                for position, update in zip(positions, updates):
                    results[position] = update
        except BaseException:
            for future, _, _ in futures:
                future.cancel()
            raise
        return results  # type: ignore[return-value]

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        return list(self.pool.map(fn, items))


class ThreadPoolBackend(_PoolBackend):
    """Train distinct clients concurrently on worker threads.

    Clients mutate their own model replica and RNG in place exactly as in
    a serial run, so no state reconciliation is needed; only *distinct*
    clients run concurrently.
    """

    name = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="fl-train")

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs, _train_jobs_inplace)

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        return future.result()


class ProcessPoolBackend(_PoolBackend):
    """Train clients in worker processes.

    The client object is pickled to the worker; the updates and the
    client's post-training RNG state are shipped back, and the parent-side
    client is synchronized (RNG state restored, model weights set to the
    last update's weights) so subsequent cycles are bit-identical to a
    serial run.  Requires picklable clients — in particular the model,
    loss and dataset factories must be module-level callables, not
    closures.

    Dispatch cost is the backend's weakness: every batch re-pickles each
    participating client wholesale, dataset included.  For fleets with
    non-trivial local datasets prefer :class:`PersistentProcessBackend`.
    """

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs,
                                       _train_jobs_in_subprocess)

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        return sum(
            len(pickle.dumps((clients[index], client_jobs),
                             _PICKLE_PROTOCOL))
            for index, _, client_jobs in _group_jobs(jobs))

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        updates, rng_state = future.result()
        # Mirror the in-place mutations a serial run would have performed.
        client.rng.bit_generator.state = rng_state
        if updates:
            client.model.set_weights(updates[-1].weights)
            client.model.clear_neuron_masks()
        return updates


# --------------------------------------------------------------------- #
# persistent worker-resident backend
# --------------------------------------------------------------------- #

@dataclass
class _WireJob:
    """One job as shipped to a persistent worker.

    ``weights_ref`` indexes the worker batch's weights table — a shared
    global snapshot travels once per worker however many clients train
    from it.
    """

    weights_ref: int
    mask: Optional[ModelMask]
    local_epochs: Optional[int]
    base_cycle: int


@dataclass
class _WireGroup:
    """One client's chained jobs within a worker batch.

    ``spec`` is only present the first time the worker sees the client (or
    after an invalidation); afterwards the resident replica is reused and
    only the RNG digest travels.
    """

    index: int
    spec: Optional[ClientSpec]
    rng_state: dict
    jobs: List[_WireJob]


@dataclass
class _WireBatch:
    """Everything one persistent worker needs for one cycle."""

    weights_table: List[Dict[str, np.ndarray]]
    groups: List[_WireGroup]


def _handle_resident_request(kind: str, payload: Any,
                             residents: Dict[int, "FLClient"]
                             ) -> Tuple[str, Any]:
    """Serve one ``run``/``map`` request against a resident fleet.

    This is the protocol core shared by the pipe workers and the socket
    shard servers (their loops differ only in transport and control
    messages).  A request whose handling blows up degrades to an
    ``("error", ...)`` reply instead of killing the worker — only
    ``Exception``, though, so Ctrl-C still stops a foreground shard
    mid-batch.
    """
    if kind == "run":
        try:
            return ("results", _run_wire_batch(residents, payload))
        except Exception as exc:
            return ("error", _picklable_exception(exc))
    if kind == "map":
        try:
            fn, items = payload
            return ("ok", [(position, fn(item))
                           for position, item in items])
        except Exception as exc:
            return ("error", _picklable_exception(exc))
    return ("error", ProtocolError(f"unknown message kind {kind!r}"))


def _pickle_reply(reply: Tuple[str, Any]) -> bytes:
    """Pickle a reply, degrading to an error reply if the result won't.

    The parent is blocked waiting for exactly one reply per request, so
    an unpicklable result must answer *something* rather than kill the
    worker and tear the whole fleet down.
    """
    try:
        return pickle.dumps(reply, _PICKLE_PROTOCOL)
    except Exception as exc:
        return pickle.dumps(
            ("error", RuntimeError(f"worker reply does not pickle: "
                                   f"{exc!r}")), _PICKLE_PROTOCOL)


def _persistent_worker_main(conn) -> None:
    """Loop of one persistent worker: build clients once, train forever.

    Protocol (length-prefixed pickles over a duplex pipe): the parent
    sends ``(kind, payload)`` messages — ``"run"`` with a
    :class:`_WireBatch`, ``"map"`` with ``(fn, [(position, item), …])`` or
    ``"close"`` — and every ``run``/``map`` gets exactly one reply.
    """
    residents: Dict[int, FLClient] = {}
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                break
            kind, payload = pickle.loads(blob)
            if kind == "close":
                break
            reply = _handle_resident_request(kind, payload, residents)
            conn.send_bytes(_pickle_reply(reply))
    finally:
        conn.close()


def _run_wire_batch(residents: Dict[int, FLClient],
                    batch: _WireBatch) -> List[Tuple]:
    """Train every group of a worker batch against the resident fleet."""
    results: List[Tuple] = []
    for group in batch.groups:
        if group.spec is not None:
            # A spec that cannot build on this host (import error, missing
            # file) fails its own group, not the whole worker/shard.
            try:
                residents[group.index] = group.spec.build()
            except Exception as exc:
                residents.pop(group.index, None)
                results.append((group.index, "error",
                                _picklable_exception(exc)))
                continue
        client = residents.get(group.index)
        if client is None:  # pragma: no cover - protocol invariant guard
            results.append((group.index, "error", RuntimeError(
                f"worker has no resident client {group.index} and "
                f"received no spec")))
            continue
        client.rng.bit_generator.state = group.rng_state
        try:
            updates = [client.local_train(
                batch.weights_table[job.weights_ref], mask=job.mask,
                local_epochs=job.local_epochs, base_cycle=job.base_cycle)
                for job in group.jobs]
        except Exception as exc:
            # The replica may be mid-training; drop it so the parent
            # re-ships a clean spec before the client's next batch.
            residents.pop(group.index, None)
            results.append((group.index, "error",
                            _picklable_exception(exc)))
            continue
        results.append((group.index, "ok", updates,
                        client.rng.bit_generator.state))
    return results


class _PersistentWorker:
    """Parent-side handle of one resident worker process."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_persistent_worker_main,
                                   args=(child_conn,),
                                   name="fl-resident-worker", daemon=True)
        self.process.start()
        child_conn.close()

    def send(self, blob: bytes) -> None:
        self.conn.send_bytes(blob)

    def recv(self):
        return pickle.loads(self.conn.recv_bytes())

    def stop(self) -> None:
        # Every step is individually guarded: stop() is called from
        # close(), which must succeed on an already-dead worker and even
        # during interpreter shutdown (hence the pre-pickled blob).
        try:
            self.conn.send_bytes(_CLOSE_BLOB)
        except Exception:
            pass
        try:
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - hang safety net
                self.process.terminate()
                self.process.join(timeout=1.0)
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass


class ShardError(RuntimeError):
    """A shard server failed or disconnected mid-operation.

    Carries the shard identity (``slot`` and ``address``) so a fleet
    operator can tell *which* shard to inspect or restart.
    """

    def __init__(self, message: str, slot: Optional[int] = None,
                 address: Optional[Tuple[str, int]] = None) -> None:
        super().__init__(message)
        self.slot = slot
        self.address = address


class _ResidentFleetBackend(ExecutionBackend):
    """Shared machinery of the worker-resident backends.

    Subclasses own the transport — duplex pipes to local worker
    processes (:class:`PersistentProcessBackend`) or framed sockets to
    shard servers (:class:`ShardedSocketBackend`) — and this base owns
    everything determinism-critical: sticky client→slot placement,
    spec-version residency tracking, per-slot weight-snapshot dedup,
    ordered reply collection and parent-side state mirroring.  A
    transport failure on any slot aborts the whole batch, closes the
    backend (no orphan workers or sockets) and raises the subclass's
    slot-identified error.
    """

    def __init__(self) -> None:
        self._placement: Dict[int, int] = {}
        #: index → spec_version of the replica resident in its slot; a
        #: client whose current spec_version differs (any identity
        #: mutation: dataset, device, config, …) gets its spec re-shipped.
        self._resident: Dict[int, int] = {}
        self._next_slot = 0
        #: Measured pickled bytes of the most recent dispatched batch.
        self.last_dispatch_bytes = 0

    @property
    def num_slots(self) -> int:
        """Number of slots the fleet is partitioned across."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # transport interface implemented by subclasses
    # ------------------------------------------------------------------ #
    def _slot_send(self, slot: int, blob: bytes) -> None:
        """Ship one pre-pickled message to a slot (creating it lazily)."""
        raise NotImplementedError

    def _slot_recv(self, slot: int) -> Tuple[str, Any]:
        """Receive one ``(kind, payload)`` reply from a slot."""
        raise NotImplementedError

    def _slot_error(self, slot: int, context: str) -> RuntimeError:
        """The error to raise when a slot's transport died."""
        raise NotImplementedError

    def _teardown(self) -> None:
        """Release every slot's transport resources."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def _dispatch(self, slot: int, blob: bytes, context: str) -> None:
        try:
            self._slot_send(slot, blob)
        except ShardError:
            # Spawn/announce failures already carry the shard identity;
            # still close: earlier slots may have undrained in-flight
            # batches that would desynchronize the protocol on reuse.
            self.close()
            raise
        except _TRANSPORT_FAILURES as exc:
            # Build the error before close() wipes the slot bookkeeping
            # (it carries the slot identity, e.g. the shard's address).
            error = self._slot_error(slot, context)
            self.close()
            raise error from exc

    def _collect_reply(self, slot: int, context: str) -> Tuple[str, Any]:
        try:
            return self._slot_recv(slot)
        except ShardError:
            self.close()
            raise
        except _TRANSPORT_FAILURES as exc:
            error = self._slot_error(slot, context)
            self.close()
            raise error from exc

    def _build_payloads(self, clients: Sequence[FLClient],
                        jobs: Sequence[TrainingJob], commit: bool
                        ) -> Tuple[Dict[int, _WireBatch],
                                   List[Tuple[int, List[int]]]]:
        """Assemble per-worker wire batches for one cycle.

        Returns ``(batches keyed by slot, ordered (index, positions)
        pairs)``.  With ``commit=False`` the placement bookkeeping is left
        untouched (used by :meth:`dispatch_payload_bytes`).
        """
        placement = self._placement if commit else dict(self._placement)
        next_slot = self._next_slot
        batches: Dict[int, _WireBatch] = {}
        weight_refs: Dict[int, Dict[int, int]] = {}
        order: List[Tuple[int, List[int]]] = []
        for index, positions, client_jobs in _group_jobs(jobs):
            slot = placement.get(index)
            if slot is None:
                slot = next_slot % self.num_slots
                next_slot += 1
                placement[index] = slot
            batch = batches.setdefault(slot, _WireBatch(weights_table=[],
                                                        groups=[]))
            refs = weight_refs.setdefault(slot, {})
            wire_jobs = []
            for job in client_jobs:
                ref = refs.get(id(job.weights))
                if ref is None:
                    ref = len(batch.weights_table)
                    refs[id(job.weights)] = ref
                    batch.weights_table.append(job.weights)
                wire_jobs.append(_WireJob(weights_ref=ref, mask=job.mask,
                                          local_epochs=job.local_epochs,
                                          base_cycle=job.base_cycle))
            client = clients[index]
            stale = self._resident.get(index) != client.spec_version
            batch.groups.append(_WireGroup(
                index=index, spec=client.spec if stale else None,
                rng_state=client.rng.bit_generator.state, jobs=wire_jobs))
            order.append((index, positions))
        if commit:
            self._next_slot = next_slot
        return batches, order

    # ------------------------------------------------------------------ #
    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        batches, order = self._build_payloads(clients, jobs, commit=True)
        blobs = {slot: pickle.dumps(("run", batch), _PICKLE_PROTOCOL)
                 for slot, batch in batches.items()}
        self.last_dispatch_bytes = sum(len(blob) for blob in blobs.values())
        slots = sorted(blobs)
        for slot in slots:
            self._dispatch(slot, blobs[slot], "dispatching a batch")
        outcomes: Dict[int, Tuple] = {}
        for slot in slots:
            kind, results = self._collect_reply(slot, "running a batch")
            if kind != "results":
                self.close()
                if isinstance(results, BaseException):
                    raise results
                raise RuntimeError(f"unexpected batch reply {kind!r}")
            for outcome in results:
                outcomes[outcome[0]] = outcome
        # Residency first, for *every* outcome: workers drop a replica
        # whose training raised, so the parent must forget it even when a
        # different group's error wins the raise below.
        for index, _ in order:
            if outcomes[index][1] == "error":
                self._resident.pop(index, None)
            else:
                self._resident[index] = clients[index].spec_version
        # Consume outcomes in submission order so error precedence and
        # parent-side mirroring match the other backends exactly.
        updates_by_position: List[Optional[ClientUpdate]] = [None] * len(jobs)
        for index, positions in order:
            outcome = outcomes[index]
            if outcome[1] == "error":
                raise outcome[2]
            _, _, updates, rng_state = outcome
            client = clients[index]
            client.rng.bit_generator.state = rng_state
            if updates:
                client.model.set_weights(updates[-1].weights)
                client.model.clear_neuron_masks()
            for position, update in zip(positions, updates):
                updates_by_position[position] = update
        return updates_by_position  # type: ignore[return-value]

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        chunks: Dict[int, List[Tuple[int, Any]]] = {}
        for position, item in enumerate(items):
            chunks.setdefault(position % self.num_slots, []).append(
                (position, item))
        slots = sorted(chunks)
        # Pickle every message before sending any: a pickling failure on
        # a later chunk must not leave earlier workers with undrained
        # replies (that would desynchronize the request/reply protocol).
        blobs = {slot: pickle.dumps(("map", (fn, chunks[slot])),
                                    _PICKLE_PROTOCOL)
                 for slot in slots}
        for slot in slots:
            self._dispatch(slot, blobs[slot], "dispatching map_ordered")
        results: List[Any] = [None] * len(items)
        error: Optional[BaseException] = None
        for slot in slots:
            kind, payload = self._collect_reply(slot, "running map_ordered")
            if kind == "error":
                error = error or payload
                continue
            for position, result in payload:
                results[position] = result
        if error is not None:
            raise error
        return results

    def invalidate_client(self, index: Optional[int] = None) -> None:
        """Force a spec re-ship before the client's next training.

        Identity mutations that replace a client's spec (dataset, device,
        config, …) are detected automatically via the spec version; this
        hook covers everything the version cannot see — in-place mutation
        of a dataset's arrays, whole-fleet swaps, backend adoption.
        """
        if index is None:
            self._resident.clear()
        else:
            self._resident.pop(index, None)

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        batches, _ = self._build_payloads(clients, jobs, commit=False)
        return sum(len(pickle.dumps(("run", batch), _PICKLE_PROTOCOL))
                   for batch in batches.values())

    def close(self) -> None:
        """Stop every slot; the backend re-creates them lazily if reused.

        Idempotent, safe after a worker/shard death and safe during
        interpreter shutdown: teardown failures are swallowed, the
        placement/residency bookkeeping is always reset.
        """
        try:
            self._teardown()
        except Exception:
            pass
        self._placement.clear()
        self._resident.clear()
        self._next_slot = 0


class PersistentProcessBackend(_ResidentFleetBackend):
    """Stateful worker pool: clients are built once and stay resident.

    Every client index is pinned to one worker (sticky placement, round-
    robin on first appearance).  The first batch that touches a client
    ships its :class:`ClientSpec`; afterwards the worker reuses its
    resident replica and the parent sends only

    * the starting-weights snapshot, **once per worker per batch**
      (jobs reference it by table index, so a shared global snapshot is
      never duplicated),
    * per-job masks and epoch overrides,
    * a per-client RNG digest (a few hundred bytes).

    Per-cycle dispatch is therefore O(weights + masks), independent of
    dataset size.  The reply path matches the process backend: updates
    plus the post-training RNG digest, which the parent mirrors into its
    own client objects — so the fleet in the parent process is always
    current and migrating to another backend via
    :meth:`FederatedSimulation.set_backend` is lossless.
    """

    name = "persistent"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._ctx = multiprocessing.get_context()
        self._workers: Dict[int, _PersistentWorker] = {}

    @property
    def num_slots(self) -> int:
        """Number of worker slots (workers spawn lazily per slot)."""
        return self.max_workers or os.cpu_count() or 1

    def _worker(self, slot: int) -> _PersistentWorker:
        worker = self._workers.get(slot)
        if worker is None:
            worker = _PersistentWorker(self._ctx)
            self._workers[slot] = worker
        return worker

    def _slot_send(self, slot: int, blob: bytes) -> None:
        self._worker(slot).send(blob)

    def _slot_recv(self, slot: int) -> Tuple[str, Any]:
        return self._workers[slot].recv()

    def _slot_error(self, slot: int, context: str) -> RuntimeError:
        return RuntimeError(
            f"persistent worker {slot} died while {context} "
            f"(pool has been shut down)")

    def _teardown(self) -> None:
        workers = list(self._workers.values())
        self._workers.clear()
        for worker in workers:
            worker.stop()


# --------------------------------------------------------------------- #
# socket-sharded backend
# --------------------------------------------------------------------- #

#: Auto-spawned localhost shard processes still alive; an atexit hook
#: kills leftovers so an unclosed backend cannot orphan interpreters.
_SPAWNED_SHARD_PROCS: set = set()


def _kill_spawned_shards() -> None:  # pragma: no cover - interpreter exit
    for proc in list(_SPAWNED_SHARD_PROCS):
        try:
            if proc.poll() is None:
                proc.kill()
        except Exception:
            pass


atexit.register(_kill_spawned_shards)


def _reap_shard_process(proc, timeout: float = 5.0) -> None:
    """Wait for an auto-spawned shard to exit, killing it if it must."""
    try:
        proc.wait(timeout=timeout)
    except Exception:
        try:
            proc.kill()
            proc.wait(timeout=1.0)
        except Exception:
            pass
    _SPAWNED_SHARD_PROCS.discard(proc)
    try:
        if proc.stdout is not None:
            proc.stdout.close()
    except Exception:
        pass


#: Announce line a shard worker prints once it is listening.
SHARD_ANNOUNCE_PREFIX = "SHARD_LISTENING"


def _read_shard_announce(proc, timeout: float) -> Tuple[str, int]:
    """Read ``SHARD_LISTENING host port`` from a spawned shard's stdout.

    Reads the raw fd directly (``os.read`` after ``select``) instead of
    the buffered stream: mixing ``select`` with ``readline`` would lose
    the announce whenever it arrives in the same pipe chunk as earlier
    output (an import-time warning, a sitecustomize print) — the chunk
    lands in the stream's buffer, the fd never polls readable again, and
    the spawn would time out despite a live shard.
    """
    deadline = time.monotonic() + timeout
    fd = proc.stdout.fileno()
    pending = ""
    while True:
        while "\n" in pending:
            line, _, pending = pending.partition("\n")
            if line.startswith(SHARD_ANNOUNCE_PREFIX):
                _, host, port = line.split()
                # Keep draining the pipe in the background: a shard that
                # prints during training (verbose factories, warnings)
                # must not fill the 64 KiB pipe buffer and deadlock
                # mid-batch.
                threading.Thread(target=_drain_stream,
                                 args=(proc.stdout,),
                                 daemon=True).start()
                return host, int(port)
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ShardError(
                f"timed out after {timeout:.0f}s waiting for a local shard "
                f"worker to announce its address")
        readable, _, _ = select.select([fd], [], [], remaining)
        if not readable:
            continue
        chunk = os.read(fd, 65536)
        if not chunk:
            raise ShardError(
                f"local shard worker exited before announcing its address "
                f"(exit code {proc.poll()})")
        pending += chunk.decode("utf-8", errors="replace")


def _drain_stream(stream) -> None:
    try:
        for _ in stream:
            pass
    except Exception:
        pass


class ShardedSocketBackend(_ResidentFleetBackend):
    """Partition the fleet across N addressable shard servers.

    The persistent pipe protocol lifted onto sockets: each shard is a
    ``repro shard-worker`` process hosting resident clients behind the
    framed transport of :mod:`repro.fl.transport`.  Placement, residency
    and dispatch semantics are identical to
    :class:`PersistentProcessBackend` — histories stay bit-identical to
    a serial run — but shards are *addressable*, so the fleet can span
    machines.

    Two topologies:

    * ``shards=["host:port", ...]`` (or a single comma-separated string)
      connects to externally started shard servers.  ``close()`` sends a
      polite ``bye`` and disconnects; the servers keep running and a
      reused backend reconnects (re-shipping specs — a fresh connection
      never trusts leftover residents).
    * ``shards=None`` auto-spawns ``max_workers`` (default 2) localhost
      shard workers via the CLI entrypoint.  The children inherit the
      parent's ``sys.path`` so specs unpickle identically; ``close()``
      shuts them down and reaps the processes, and an ``atexit`` hook
      kills any leftovers.

    A shard dying mid-cycle aborts the whole batch with a
    :class:`ShardError` naming the shard (slot and address) and closes
    the backend, leaving no orphan processes or half-open sockets.
    """

    name = "sharded"

    #: Localhost shards spawned when neither addresses nor a worker
    #: count are given (interpreter spawns are not free; stay modest).
    DEFAULT_LOCAL_SHARDS = 2

    def __init__(self, shards: Union[None, int, str,
                                     Sequence[Any]] = None,
                 max_workers: Optional[int] = None,
                 connect_timeout: float = 30.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        super().__init__()
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if isinstance(shards, str):
            shards = [part.strip() for part in shards.split(",")
                      if part.strip()]
        self._addresses: Optional[List[Tuple[str, int]]]
        if shards is None:
            self._addresses = None
            self._num_shards = max_workers or self.DEFAULT_LOCAL_SHARDS
        elif isinstance(shards, int):
            if shards <= 0:
                raise ValueError("shard count must be positive")
            if max_workers is not None:
                raise ValueError("pass either shards or max_workers, "
                                 "not both")
            self._addresses = None
            self._num_shards = shards
        else:
            addresses = [parse_address(shard) for shard in shards]
            if not addresses:
                raise ValueError("need at least one shard address")
            if max_workers is not None:
                raise ValueError(
                    f"max_workers={max_workers!r} cannot be combined with "
                    f"explicit shard addresses (one shard per address)")
            self._addresses = addresses
            self._num_shards = len(addresses)
        if not 0 < max_frame_bytes <= 0xFFFFFFFF:
            raise ValueError("max_frame_bytes must be positive and within "
                             "the 4-byte frame header's 4 GiB limit")
        self.connect_timeout = connect_timeout
        self.max_frame_bytes = max_frame_bytes
        self._channels: Dict[int, Any] = {}
        self._procs: Dict[int, Any] = {}
        self._live_addresses: Dict[int, Tuple[str, int]] = {}

    @property
    def num_slots(self) -> int:
        return self._num_shards

    @property
    def autospawn(self) -> bool:
        """Whether this backend spawns its own localhost shard workers."""
        return self._addresses is None

    def shard_address(self, slot: int) -> Optional[Tuple[str, int]]:
        """The ``(host, port)`` a slot is (or would be) served from."""
        address = self._live_addresses.get(slot)
        if address is None and self._addresses is not None:
            address = self._addresses[slot]
        return address

    # ------------------------------------------------------------------ #
    def _spawn_local_shard(self, slot: int) -> Tuple[str, int]:
        env = dict(os.environ)
        # The child must unpickle whatever the parent can import (specs,
        # model factories, map functions): hand it the parent's sys.path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "shard-worker",
             "--host", "127.0.0.1", "--port", "0",
             "--max-frame-bytes", str(self.max_frame_bytes)],
            stdout=subprocess.PIPE, env=env, text=True)
        self._procs[slot] = proc
        _SPAWNED_SHARD_PROCS.add(proc)
        try:
            return _read_shard_announce(proc, self.connect_timeout)
        except Exception:
            self._procs.pop(slot, None)
            _reap_shard_process(proc, timeout=0.0)
            raise

    def _channel(self, slot: int):
        channel = self._channels.get(slot)
        if channel is None:
            if self._addresses is not None:
                address = self._addresses[slot]
            else:
                address = self._spawn_local_shard(slot)
            channel = connect_to_shard(
                address, timeout=self.connect_timeout,
                max_frame_bytes=self.max_frame_bytes)
            self._channels[slot] = channel
            self._live_addresses[slot] = parse_address(address)
            # Invariant guard: a fresh connection must never trust
            # residency (shard servers clear residents per connection).
            # Today this purge finds nothing — channels are only created
            # after __init__ or close(), both of which reset residency —
            # but it keeps the invariant local if per-slot reconnects
            # are ever added.
            for index, placed in self._placement.items():
                if placed == slot:
                    self._resident.pop(index, None)
        return channel

    def _slot_send(self, slot: int, blob: bytes) -> None:
        self._channel(slot).send_bytes(blob)

    def _slot_recv(self, slot: int) -> Tuple[str, Any]:
        return self._channels[slot].recv()

    def _slot_error(self, slot: int, context: str) -> ShardError:
        address = self.shard_address(slot)
        where = (format_address(address) if address is not None
                 else "unknown address")
        return ShardError(
            f"shard {slot} ({where}) failed while {context}; the batch "
            f"was aborted and the backend has been shut down",
            slot=slot, address=address)

    def _teardown(self) -> None:
        channels = dict(self._channels)
        self._channels.clear()
        procs = dict(self._procs)
        self._procs.clear()
        self._live_addresses.clear()
        for slot, channel in channels.items():
            # Auto-spawned shards are told to exit; external shards only
            # to hang up (they keep serving other runs / reconnects).
            blob = _SHUTDOWN_BLOB if slot in procs else _BYE_BLOB
            try:
                channel.send_bytes(blob)
            except Exception:
                pass
            channel.close()
        for slot, proc in procs.items():
            if slot not in channels:
                # Spawned but never connected: nobody sent it a
                # shutdown, so don't wait politely.
                _reap_shard_process(proc, timeout=0.0)
            else:
                _reap_shard_process(proc)


#: Registry of backend constructors keyed by CLI/config name.
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    PersistentProcessBackend.name: PersistentProcessBackend,
    ShardedSocketBackend.name: ShardedSocketBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`make_backend` (and the CLI ``--backend``)."""
    return tuple(sorted(_BACKENDS))


def make_backend(spec: Union[None, str, ExecutionBackend] = None,
                 max_workers: Optional[int] = None,
                 shards: Union[None, int, str, Sequence[Any]] = None
                 ) -> ExecutionBackend:
    """Resolve a backend specification into an :class:`ExecutionBackend`.

    Parameters
    ----------
    spec:
        ``None`` (serial), a backend name (``"serial"``, ``"thread"``,
        ``"process"``, ``"persistent"``, ``"sharded"``) or an already-
        constructed backend instance (passed through unchanged).
    max_workers:
        Worker count for the pooled backends (``None`` = library default);
        for ``"sharded"`` without addresses it is the number of auto-
        spawned localhost shards.  Must be ``None`` when ``spec`` is an
        already-constructed instance: an instance's pool size cannot be
        changed, and silently ignoring the argument would hide a
        configuration error.
    shards:
        Shard topology, only meaningful with ``spec="sharded"``: a list
        of ``"host:port"`` addresses (or one comma-separated string) of
        externally started ``repro shard-worker`` servers, or an integer
        count of localhost shards to auto-spawn.
    """
    if isinstance(spec, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                f"max_workers={max_workers!r} cannot be applied to an "
                f"already-constructed backend instance {spec!r}; construct "
                f"the backend with the desired worker count instead")
        if shards is not None:
            raise ValueError(
                f"shards={shards!r} cannot be applied to an already-"
                f"constructed backend instance {spec!r}")
        return spec
    if shards is not None and spec != ShardedSocketBackend.name:
        raise ValueError(
            f"shards only applies to the 'sharded' backend, not {spec!r}")
    if spec is None:
        return SerialBackend()
    if isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {spec!r}; "
                f"available: {available_backends()}") from None
        if factory is SerialBackend:
            return SerialBackend()
        if factory is ShardedSocketBackend:
            return ShardedSocketBackend(shards=shards,
                                        max_workers=max_workers)
        return factory(max_workers=max_workers)
    raise TypeError(f"cannot build an execution backend from {spec!r}")
