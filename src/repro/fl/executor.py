"""Execution backends: how a cycle's client trainings actually run.

The simulation engine hands every aggregation cycle's local trainings to an
:class:`ExecutionBackend` as a batch of :class:`TrainingJob` descriptions.
Four implementations are provided:

* :class:`SerialBackend` — the historical behavior: one client after the
  other in the calling thread.  Zero overhead, always available.
* :class:`ThreadPoolBackend` — clients train concurrently on worker
  threads.  NumPy releases the GIL inside its kernels, so multi-core
  machines overlap the matrix work of independent clients; single-core
  machines still overlap any latency the client hides (I/O, real device
  round-trips once those exist).
* :class:`ProcessPoolBackend` — clients are shipped to worker processes
  (requires every client component — datasets, model factories, loss
  factories — to be picklable).  Full CPU parallelism, but the *whole*
  client (dataset included) is re-pickled every batch, so dispatch cost
  grows with dataset and model size.
* :class:`PersistentProcessBackend` — clients live *resident* in worker
  processes.  Each worker builds its clients once from their picklable
  :class:`~repro.fl.client.ClientSpec` and keeps them across cycles; per
  batch the parent ships only the weights snapshot (once per worker),
  per-job masks and a per-client RNG digest.  Dispatch cost is therefore
  O(weights), independent of dataset size — this is the substrate for
  sharded / multi-host fleets.

Determinism
-----------
All backends are *bit-identical* to each other under a fixed seed:

* every client owns its RNG and model replica, so trainings of distinct
  clients share no mutable state;
* jobs for the *same* client are chained sequentially in submission order
  (never interleaved), preserving the client's RNG consumption order; the
  persistent backend additionally pins each client to one worker (sticky
  placement) so its resident replica is never duplicated;
* results are re-ordered to match the submitted job order before they are
  returned, regardless of completion order;
* the process-based backends ship the client's post-training RNG state and
  weights back to the parent so the in-process client objects advance
  exactly as if they had trained locally.

A worker that raises propagates its exception to the caller — the batch
fails loudly rather than silently dropping a client's update.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..nn.masking import ModelMask
from .client import ClientSpec, ClientUpdate, FLClient

__all__ = [
    "TrainingJob",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "available_backends",
    "make_backend",
]

#: Pickle protocol used for worker traffic (payload accounting included).
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclass
class TrainingJob:
    """One client-local training to execute within a batch.

    Attributes
    ----------
    index:
        Client index within the simulation's fleet.
    weights:
        The starting weights the client trains from (typically a snapshot
        of the global model; asynchronous strategies pass stale snapshots).
    mask:
        Optional neuron mask (soft-training / partial-model baselines).
    local_epochs:
        Optional override of the client's configured local epochs.
    base_cycle:
        Aggregation cycle the ``weights`` snapshot was taken at (staleness
        bookkeeping).
    """

    index: int
    weights: Dict[str, np.ndarray]
    mask: Optional[ModelMask] = None
    local_epochs: Optional[int] = None
    base_cycle: int = 0


def _train_jobs_inplace(client: FLClient,
                        jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
    """Run one client's jobs sequentially, mutating the client in place."""
    return [client.local_train(job.weights, mask=job.mask,
                               local_epochs=job.local_epochs,
                               base_cycle=job.base_cycle)
            for job in jobs]


def _train_jobs_in_subprocess(client: FLClient, jobs: Sequence[TrainingJob]
                              ) -> Tuple[List[ClientUpdate], dict]:
    """Worker entry point of the process backend.

    Returns the updates plus the client's post-training RNG state so the
    parent process can advance its own copy of the client identically.
    """
    updates = _train_jobs_inplace(client, jobs)
    return updates, client.rng.bit_generator.state


def _group_jobs(jobs: Sequence[TrainingJob]
                ) -> List[Tuple[int, List[int], List[TrainingJob]]]:
    """Group jobs by client index, preserving submission order.

    Returns ``(client_index, positions, client_jobs)`` triples where
    ``positions`` are the indices of the jobs in the original batch.  Jobs
    of the same client stay in submission order so its RNG consumption is
    identical to a serial run.
    """
    groups: Dict[int, Tuple[List[int], List[TrainingJob]]] = {}
    for position, job in enumerate(jobs):
        positions, client_jobs = groups.setdefault(job.index, ([], []))
        positions.append(position)
        client_jobs.append(job)
    return [(index, positions, client_jobs)
            for index, (positions, client_jobs) in groups.items()]


class ExecutionBackend:
    """Abstract batch executor for client-local trainings."""

    #: Identifier used by :func:`make_backend` and the CLI.
    name: str = "backend"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        """Execute a batch of jobs and return updates in job order."""
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        Generic escape hatch for parallelizable non-training work (fleet
        profiling, evaluation sweeps).  The default runs serially;
        concurrency-capable backends override it.
        """
        return [fn(item) for item in items]

    def invalidate_client(self, index: Optional[int] = None) -> None:
        """Client lifecycle notification (added / mutated / removed).

        The simulation routes fleet mutations — :meth:`add_client`, device
        swaps, cost-cache invalidations — through this hook so backends
        holding worker-resident replicas re-ship the client's spec before
        its next training.  ``None`` invalidates the whole fleet.  In-
        process backends share the caller's client objects and need no
        action.
        """

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        """Bytes this backend would pickle to dispatch ``jobs`` right now.

        Diagnostic used by the substrate benchmark to compare dispatch
        cost across backends.  In-process backends ship nothing (0); the
        process backend re-pickles whole clients; the persistent backend
        ships weights/masks/RNG digests only (plus specs for clients its
        workers have not built yet).
        """
        return 0

    def close(self) -> None:
        """Release worker resources (no-op for the serial backend).

        Closing is idempotent, and a closed backend may be used again:
        pools are re-created lazily on the next batch.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Train clients one after the other in the calling thread."""

    name = "serial"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return [clients[job.index].local_train(
            job.weights, mask=job.mask, local_epochs=job.local_epochs,
            base_cycle=job.base_cycle) for job in jobs]


class _PoolBackend(ExecutionBackend):
    """Shared machinery of the thread- and process-pool backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    @property
    def pool(self):
        """The lazily created worker pool."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _submit_job_groups(self, clients: Sequence[FLClient],
                           jobs: Sequence[TrainingJob],
                           worker: Callable) -> List[ClientUpdate]:
        """Fan the per-client job groups out to the pool, reorder results."""
        groups = _group_jobs(jobs)
        futures: List[Tuple[Future, int, List[int]]] = [
            (self.pool.submit(worker, clients[index], client_jobs),
             index, positions)
            for index, positions, client_jobs in groups
        ]
        results: List[Optional[ClientUpdate]] = [None] * len(jobs)
        try:
            for future, index, positions in futures:
                updates = self._collect(clients[index], future)
                for position, update in zip(positions, updates):
                    results[position] = update
        except BaseException:
            for future, _, _ in futures:
                future.cancel()
            raise
        return results  # type: ignore[return-value]

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        return list(self.pool.map(fn, items))


class ThreadPoolBackend(_PoolBackend):
    """Train distinct clients concurrently on worker threads.

    Clients mutate their own model replica and RNG in place exactly as in
    a serial run, so no state reconciliation is needed; only *distinct*
    clients run concurrently.
    """

    name = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="fl-train")

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs, _train_jobs_inplace)

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        return future.result()


class ProcessPoolBackend(_PoolBackend):
    """Train clients in worker processes.

    The client object is pickled to the worker; the updates and the
    client's post-training RNG state are shipped back, and the parent-side
    client is synchronized (RNG state restored, model weights set to the
    last update's weights) so subsequent cycles are bit-identical to a
    serial run.  Requires picklable clients — in particular the model,
    loss and dataset factories must be module-level callables, not
    closures.

    Dispatch cost is the backend's weakness: every batch re-pickles each
    participating client wholesale, dataset included.  For fleets with
    non-trivial local datasets prefer :class:`PersistentProcessBackend`.
    """

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs,
                                       _train_jobs_in_subprocess)

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        return sum(
            len(pickle.dumps((clients[index], client_jobs),
                             _PICKLE_PROTOCOL))
            for index, _, client_jobs in _group_jobs(jobs))

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        updates, rng_state = future.result()
        # Mirror the in-place mutations a serial run would have performed.
        client.rng.bit_generator.state = rng_state
        if updates:
            client.model.set_weights(updates[-1].weights)
            client.model.clear_neuron_masks()
        return updates


# --------------------------------------------------------------------- #
# persistent worker-resident backend
# --------------------------------------------------------------------- #

@dataclass
class _WireJob:
    """One job as shipped to a persistent worker.

    ``weights_ref`` indexes the worker batch's weights table — a shared
    global snapshot travels once per worker however many clients train
    from it.
    """

    weights_ref: int
    mask: Optional[ModelMask]
    local_epochs: Optional[int]
    base_cycle: int


@dataclass
class _WireGroup:
    """One client's chained jobs within a worker batch.

    ``spec`` is only present the first time the worker sees the client (or
    after an invalidation); afterwards the resident replica is reused and
    only the RNG digest travels.
    """

    index: int
    spec: Optional[ClientSpec]
    rng_state: dict
    jobs: List[_WireJob]


@dataclass
class _WireBatch:
    """Everything one persistent worker needs for one cycle."""

    weights_table: List[Dict[str, np.ndarray]]
    groups: List[_WireGroup]


def _picklable_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.dumps(exc, _PICKLE_PROTOCOL)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _persistent_worker_main(conn) -> None:
    """Loop of one persistent worker: build clients once, train forever.

    Protocol (length-prefixed pickles over a duplex pipe): the parent
    sends ``(kind, payload)`` messages — ``"run"`` with a
    :class:`_WireBatch`, ``"map"`` with ``(fn, [(position, item), …])`` or
    ``"close"`` — and every ``run``/``map`` gets exactly one reply.
    """
    residents: Dict[int, FLClient] = {}
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                break
            kind, payload = pickle.loads(blob)
            if kind == "close":
                break
            if kind == "run":
                reply = ("results", _run_wire_batch(residents, payload))
            elif kind == "map":
                fn, items = payload
                try:
                    reply = ("ok", [(position, fn(item))
                                    for position, item in items])
                except BaseException as exc:
                    reply = ("error", _picklable_exception(exc))
            else:  # pragma: no cover - protocol misuse guard
                reply = ("error",
                         RuntimeError(f"unknown message kind {kind!r}"))
            conn.send_bytes(pickle.dumps(reply, _PICKLE_PROTOCOL))
    finally:
        conn.close()


def _run_wire_batch(residents: Dict[int, FLClient],
                    batch: _WireBatch) -> List[Tuple]:
    """Train every group of a worker batch against the resident fleet."""
    results: List[Tuple] = []
    for group in batch.groups:
        if group.spec is not None:
            residents[group.index] = group.spec.build()
        client = residents.get(group.index)
        if client is None:  # pragma: no cover - protocol invariant guard
            results.append((group.index, "error", RuntimeError(
                f"worker has no resident client {group.index} and "
                f"received no spec")))
            continue
        client.rng.bit_generator.state = group.rng_state
        try:
            updates = [client.local_train(
                batch.weights_table[job.weights_ref], mask=job.mask,
                local_epochs=job.local_epochs, base_cycle=job.base_cycle)
                for job in group.jobs]
        except BaseException as exc:
            # The replica may be mid-training; drop it so the parent
            # re-ships a clean spec before the client's next batch.
            residents.pop(group.index, None)
            results.append((group.index, "error",
                            _picklable_exception(exc)))
            continue
        results.append((group.index, "ok", updates,
                        client.rng.bit_generator.state))
    return results


class _PersistentWorker:
    """Parent-side handle of one resident worker process."""

    def __init__(self, ctx) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_persistent_worker_main,
                                   args=(child_conn,),
                                   name="fl-resident-worker", daemon=True)
        self.process.start()
        child_conn.close()

    def send(self, blob: bytes) -> None:
        self.conn.send_bytes(blob)

    def recv(self):
        return pickle.loads(self.conn.recv_bytes())

    def stop(self) -> None:
        try:
            self.conn.send_bytes(pickle.dumps(("close", None),
                                              _PICKLE_PROTOCOL))
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - hang safety net
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.conn.close()


class PersistentProcessBackend(ExecutionBackend):
    """Stateful worker pool: clients are built once and stay resident.

    Every client index is pinned to one worker (sticky placement, round-
    robin on first appearance).  The first batch that touches a client
    ships its :class:`ClientSpec`; afterwards the worker reuses its
    resident replica and the parent sends only

    * the starting-weights snapshot, **once per worker per batch**
      (jobs reference it by table index, so a shared global snapshot is
      never duplicated),
    * per-job masks and epoch overrides,
    * a per-client RNG digest (a few hundred bytes).

    Per-cycle dispatch is therefore O(weights + masks), independent of
    dataset size.  The reply path matches the process backend: updates
    plus the post-training RNG digest, which the parent mirrors into its
    own client objects — so the fleet in the parent process is always
    current and migrating to another backend via
    :meth:`FederatedSimulation.set_backend` is lossless.
    """

    name = "persistent"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._ctx = multiprocessing.get_context()
        self._workers: Dict[int, _PersistentWorker] = {}
        self._placement: Dict[int, int] = {}
        #: index → spec_version of the replica resident in its worker; a
        #: client whose current spec_version differs (any identity
        #: mutation: dataset, device, config, …) gets its spec re-shipped.
        self._resident: Dict[int, int] = {}
        self._next_slot = 0
        #: Measured pickled bytes of the most recent dispatched batch.
        self.last_dispatch_bytes = 0

    @property
    def num_slots(self) -> int:
        """Number of worker slots (workers spawn lazily per slot)."""
        return self.max_workers or os.cpu_count() or 1

    # ------------------------------------------------------------------ #
    def _worker(self, slot: int) -> _PersistentWorker:
        worker = self._workers.get(slot)
        if worker is None:
            worker = _PersistentWorker(self._ctx)
            self._workers[slot] = worker
        return worker

    def _build_payloads(self, clients: Sequence[FLClient],
                        jobs: Sequence[TrainingJob], commit: bool
                        ) -> Tuple[Dict[int, _WireBatch],
                                   List[Tuple[int, List[int]]]]:
        """Assemble per-worker wire batches for one cycle.

        Returns ``(batches keyed by slot, ordered (index, positions)
        pairs)``.  With ``commit=False`` the placement bookkeeping is left
        untouched (used by :meth:`dispatch_payload_bytes`).
        """
        placement = self._placement if commit else dict(self._placement)
        next_slot = self._next_slot
        batches: Dict[int, _WireBatch] = {}
        weight_refs: Dict[int, Dict[int, int]] = {}
        order: List[Tuple[int, List[int]]] = []
        for index, positions, client_jobs in _group_jobs(jobs):
            slot = placement.get(index)
            if slot is None:
                slot = next_slot % self.num_slots
                next_slot += 1
                placement[index] = slot
            batch = batches.setdefault(slot, _WireBatch(weights_table=[],
                                                        groups=[]))
            refs = weight_refs.setdefault(slot, {})
            wire_jobs = []
            for job in client_jobs:
                ref = refs.get(id(job.weights))
                if ref is None:
                    ref = len(batch.weights_table)
                    refs[id(job.weights)] = ref
                    batch.weights_table.append(job.weights)
                wire_jobs.append(_WireJob(weights_ref=ref, mask=job.mask,
                                          local_epochs=job.local_epochs,
                                          base_cycle=job.base_cycle))
            client = clients[index]
            stale = self._resident.get(index) != client.spec_version
            batch.groups.append(_WireGroup(
                index=index, spec=client.spec if stale else None,
                rng_state=client.rng.bit_generator.state, jobs=wire_jobs))
            order.append((index, positions))
        if commit:
            self._next_slot = next_slot
        return batches, order

    # ------------------------------------------------------------------ #
    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        batches, order = self._build_payloads(clients, jobs, commit=True)
        blobs = {slot: pickle.dumps(("run", batch), _PICKLE_PROTOCOL)
                 for slot, batch in batches.items()}
        self.last_dispatch_bytes = sum(len(blob) for blob in blobs.values())
        slots = sorted(blobs)
        for slot in slots:
            self._worker(slot).send(blobs[slot])
        outcomes: Dict[int, Tuple] = {}
        for slot in slots:
            try:
                kind, results = self._workers[slot].recv()
            except (EOFError, OSError):
                self.close()
                raise RuntimeError(
                    "persistent worker died while running a batch "
                    "(pool has been shut down)") from None
            for outcome in results:
                outcomes[outcome[0]] = outcome
        # Residency first, for *every* outcome: workers drop a replica
        # whose training raised, so the parent must forget it even when a
        # different group's error wins the raise below.
        for index, _ in order:
            if outcomes[index][1] == "error":
                self._resident.pop(index, None)
            else:
                self._resident[index] = clients[index].spec_version
        # Consume outcomes in submission order so error precedence and
        # parent-side mirroring match the other backends exactly.
        updates_by_position: List[Optional[ClientUpdate]] = [None] * len(jobs)
        for index, positions in order:
            outcome = outcomes[index]
            if outcome[1] == "error":
                raise outcome[2]
            _, _, updates, rng_state = outcome
            client = clients[index]
            client.rng.bit_generator.state = rng_state
            if updates:
                client.model.set_weights(updates[-1].weights)
                client.model.clear_neuron_masks()
            for position, update in zip(positions, updates):
                updates_by_position[position] = update
        return updates_by_position  # type: ignore[return-value]

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        chunks: Dict[int, List[Tuple[int, Any]]] = {}
        for position, item in enumerate(items):
            chunks.setdefault(position % self.num_slots, []).append(
                (position, item))
        slots = sorted(chunks)
        # Pickle every message before sending any: a pickling failure on
        # a later chunk must not leave earlier workers with undrained
        # replies (that would desynchronize the request/reply protocol).
        blobs = {slot: pickle.dumps(("map", (fn, chunks[slot])),
                                    _PICKLE_PROTOCOL)
                 for slot in slots}
        for slot in slots:
            self._worker(slot).send(blobs[slot])
        results: List[Any] = [None] * len(items)
        error: Optional[BaseException] = None
        for slot in slots:
            try:
                kind, payload = self._workers[slot].recv()
            except (EOFError, OSError):
                self.close()
                raise RuntimeError(
                    "persistent worker died during map_ordered "
                    "(pool has been shut down)") from None
            if kind == "error":
                error = error or payload
                continue
            for position, result in payload:
                results[position] = result
        if error is not None:
            raise error
        return results

    def invalidate_client(self, index: Optional[int] = None) -> None:
        """Force a spec re-ship before the client's next training.

        Identity mutations that replace a client's spec (dataset, device,
        config, …) are detected automatically via the spec version; this
        hook covers everything the version cannot see — in-place mutation
        of a dataset's arrays, whole-fleet swaps, backend adoption.
        """
        if index is None:
            self._resident.clear()
        else:
            self._resident.pop(index, None)

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        batches, _ = self._build_payloads(clients, jobs, commit=False)
        return sum(len(pickle.dumps(("run", batch), _PICKLE_PROTOCOL))
                   for batch in batches.values())

    def close(self) -> None:
        """Stop every worker; the pool respawns lazily if used again."""
        for worker in self._workers.values():
            worker.stop()
        self._workers.clear()
        self._placement.clear()
        self._resident.clear()
        self._next_slot = 0


#: Registry of backend constructors keyed by CLI/config name.
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    PersistentProcessBackend.name: PersistentProcessBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`make_backend` (and the CLI ``--backend``)."""
    return tuple(sorted(_BACKENDS))


def make_backend(spec: Union[None, str, ExecutionBackend] = None,
                 max_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend specification into an :class:`ExecutionBackend`.

    Parameters
    ----------
    spec:
        ``None`` (serial), a backend name (``"serial"``, ``"thread"``,
        ``"process"``, ``"persistent"``) or an already-constructed backend
        instance (passed through unchanged).
    max_workers:
        Worker count for the pooled backends (``None`` = library default).
        Must be ``None`` when ``spec`` is an already-constructed instance:
        an instance's pool size cannot be changed, and silently ignoring
        the argument would hide a configuration error.
    """
    if isinstance(spec, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                f"max_workers={max_workers!r} cannot be applied to an "
                f"already-constructed backend instance {spec!r}; construct "
                f"the backend with the desired worker count instead")
        return spec
    if spec is None:
        return SerialBackend()
    if isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {spec!r}; "
                f"available: {available_backends()}") from None
        if factory is SerialBackend:
            return SerialBackend()
        return factory(max_workers=max_workers)
    raise TypeError(f"cannot build an execution backend from {spec!r}")
