"""Execution backends: how a cycle's client trainings actually run.

The simulation engine hands every aggregation cycle's local trainings to an
:class:`ExecutionBackend` as a batch of :class:`TrainingJob` descriptions.
Four implementations are provided:

* :class:`SerialBackend` — the historical behavior: one client after the
  other in the calling thread.  Zero overhead, always available.
* :class:`ThreadPoolBackend` — clients train concurrently on worker
  threads.  NumPy releases the GIL inside its kernels, so multi-core
  machines overlap the matrix work of independent clients; single-core
  machines still overlap any latency the client hides (I/O, real device
  round-trips once those exist).
* :class:`ProcessPoolBackend` — clients are shipped to worker processes
  (requires every client component — datasets, model factories, loss
  factories — to be picklable).  Full CPU parallelism, but the *whole*
  client (dataset included) is re-pickled every batch, so dispatch cost
  grows with dataset and model size.
* :class:`PersistentProcessBackend` — clients live *resident* in worker
  processes.  Each worker builds its clients once from their picklable
  :class:`~repro.fl.client.ClientSpec` and keeps them across cycles; per
  batch the parent ships only the weights snapshot (once per worker),
  per-job masks and a per-client RNG digest.  Dispatch cost is therefore
  O(weights), independent of dataset size — this is the substrate for
  sharded / multi-host fleets.
* :class:`ShardedSocketBackend` — the persistent protocol lifted onto
  sockets (see :mod:`repro.fl.transport`): the fleet is partitioned
  across N shard servers, each an addressable ``repro shard-worker``
  process hosting resident clients.  Shards may run on other machines
  (``shards=["host:port", ...]``) or be auto-spawned on localhost for
  single-machine use.

The two resident backends share all determinism-critical machinery
(sticky placement, spec-version residency, weight-snapshot dedup,
ordered reply collection) through :class:`_ResidentFleetBackend`; they
differ only in the transport underneath (duplex pipes vs. framed
sockets).  Both ship their per-cycle payloads through the wire codec of
:mod:`repro.fl.codec`: zero-copy out-of-band ndarray framing, optional
per-segment compression (``wire_compression="zlib"``), and delta
shipping of weight tables against each slot's acknowledged base
(``delta_shipping``, on by default) — all bit-exact, so none of it can
perturb the determinism guarantees below.

Determinism
-----------
All backends are *bit-identical* to each other under a fixed seed:

* every client owns its RNG and model replica, so trainings of distinct
  clients share no mutable state;
* jobs for the *same* client are chained sequentially in submission order
  (never interleaved), preserving the client's RNG consumption order; the
  persistent backend additionally pins each client to one worker (sticky
  placement) so its resident replica is never duplicated;
* results are re-ordered to match the submitted job order before they are
  returned, regardless of completion order;
* the process-based backends ship the client's post-training RNG state and
  weights back to the parent so the in-process client objects advance
  exactly as if they had trained locally.

A worker that raises propagates its exception to the caller — the batch
fails loudly rather than silently dropping a client's update.

Fault tolerance
---------------
A worker/shard *dying* (as opposed to a training raising) is a transport
failure, and the worker-resident backends expose a policy for it:
``on_failure="abort"`` (default) fails the batch with a slot-identified
error and closes the backend; ``on_failure="rebalance"`` repairs the
topology and retries the batch.  Because every wire batch carries the
clients' starting weights and pre-batch RNG digests, and parent-side
state is only mirrored after a batch fully succeeds, the retry is
bit-identical to an undisturbed run — a killed shard costs wall-clock
time, never reproducibility.  The sharded backend can additionally probe
shard liveness between batches (``heartbeat_interval``).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import select
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..nn.masking import ModelMask
from . import codec as wire_codec
from .aggregation import (NUM_LEVELS, ModelStructure, PartialAggregate,
                          fold_updates, level_sums, merge_partials)
from .arena import WEIGHT_ARENA_MODES, ArenaReader, WeightArenaWriter
from .chaos import seeded_jitter
from .client import ClientSpec, ClientUpdate, FLClient
from .codec import (DeltaDecoderState, DeltaEncoderState, KIND_BYE,
                    KIND_CLOSE, KIND_ERROR, KIND_FOLD, KIND_MAP, KIND_OK,
                    KIND_PING, KIND_PONG, KIND_RESULTS, KIND_RUN,
                    KIND_SHUTDOWN, KIND_VFOLD)
from .fusion import FUSION_MODES, cluster_signature, train_cluster
from .transport import (DEFAULT_MAX_FRAME_BYTES, ProtocolError,
                        TransportError, _picklable_exception,
                        connect_to_shard, format_address, parse_address)

__all__ = [
    "TrainingJob",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "PersistentProcessBackend",
    "ShardedSocketBackend",
    "ShardError",
    "RetryPolicy",
    "AGGREGATION_MODES",
    "FAILURE_POLICIES",
    "FUSION_MODES",
    "WEIGHT_ARENA_MODES",
    "available_backends",
    "make_backend",
]

#: Pickle protocol used for worker traffic (payload accounting included).
_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Transport failures that mean "the worker/shard is gone" (or its reply
#: stream is unusable), as opposed to an exception the remote training
#: itself raised.  Codec decode failures count: a garbled reply leaves
#: the request/reply stream in an unknowable state, exactly like a
#: truncated frame.  (The recoverable ``DeltaBaseMismatchError`` never
#: surfaces as a decode failure — it arrives as an explicit ``error``
#: reply and is retried with a full snapshot.)
_TRANSPORT_FAILURES = (EOFError, OSError, TransportError,
                       wire_codec.CodecError)

#: Control messages, pickled once at import time so that closing a
#: backend never needs to pickle anything — ``close()`` stays safe even
#: during interpreter shutdown, when module globals may be torn down.
_CLOSE_BLOB = pickle.dumps((KIND_CLOSE, None), _PICKLE_PROTOCOL)
_BYE_BLOB = pickle.dumps((KIND_BYE, None), _PICKLE_PROTOCOL)
_SHUTDOWN_BLOB = pickle.dumps((KIND_SHUTDOWN, None), _PICKLE_PROTOCOL)
_PING_BLOB = pickle.dumps((KIND_PING, None), _PICKLE_PROTOCOL)


def _note_swallowed(context: str, exc: BaseException) -> None:
    """One-line stderr note for an error a teardown path survives.

    Teardown must stay idempotent and safe during interpreter shutdown,
    so these paths never re-raise — but silently eating the error makes
    dead-worker bugs undiagnosable.  stderr itself may already be torn
    down when this runs, so the write is best-effort.
    """
    try:
        print(f"repro: swallowed while {context}: {exc!r}",
              file=sys.stderr)
    except Exception:  # lint: allow[swallow]
        pass

#: Policies of the worker-resident backends when a slot's transport dies
#: mid-operation: ``abort`` (historical behavior — fail the batch, close
#: the backend, raise the slot-identified error), ``rebalance`` (repair
#: the topology and retry the batch bit-identically) or ``degrade``
#: (finish the cycle without the dead slot: its clients are dropped,
#: aggregation re-weights over the survivors, and the dropped-client
#: set is recorded in the run history — see
#: :class:`_ResidentFleetBackend`).
FAILURE_POLICIES = ("abort", "rebalance", "degrade")


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs of the worker-resident backends, in one place.

    Replaces the hardcoded ``DRAIN_TIMEOUT_S`` / attempt-limit /
    single-reconnect constants.  The defaults reproduce the historical
    behavior exactly (no backoff, legacy attempt cap, one reconnect for
    external shards, 600 s drain), so a backend constructed without a
    policy is indistinguishable from earlier releases.

    Attributes
    ----------
    max_attempts:
        Per-batch recovery-attempt budget.  ``None`` keeps the legacy
        cap ``max(2 * num_slots, 4)``.
    backoff_base_s:
        First retry's backoff delay; ``0`` (default) disables backoff
        sleeping entirely.  Attempt *n* waits
        ``min(backoff_base_s * backoff_multiplier**(n-1), backoff_max_s)``
        scaled by the jitter term below.
    backoff_multiplier:
        Exponential growth factor between consecutive backoff delays.
    backoff_max_s:
        Ceiling on a single backoff delay.
    jitter:
        Jitter fraction in ``[0, 1]``: the delay is scaled by
        ``1 + jitter * (u - 0.5)`` where ``u`` is the *seed-derived*
        uniform draw of :func:`repro.fl.chaos.seeded_jitter` — two
        replays of one run back off identically, so retry timing never
        leaks wall-clock entropy into anything observable.
    seed:
        Seed of the jitter stream.
    budget_s:
        Cap on the *cumulative* backoff sleep per batch (``None`` =
        uncapped).  Once exhausted, retries continue without delay
        until ``max_attempts`` runs out — the budget bounds added
        latency, never correctness.
    drain_timeout_s:
        Upper bound on waiting for one surviving slot's owed reply
        while failing over (the former ``DRAIN_TIMEOUT_S``).
    reconnect_attempts:
        Reconnects an externally addressed shard is granted before its
        slot is declared dead and its clients rebalance (the former
        single hardcoded attempt).
    breaker_threshold:
        Circuit breaker: total transport failures a slot may accumulate
        across the backend's lifetime (*not* reset by successful
        batches) before it is declared dead outright — a flapping shard
        stops being retried instead of failing every other cycle.
        ``None`` disables the breaker.
    """

    max_attempts: Optional[int] = None
    backoff_base_s: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0
    budget_s: Optional[float] = None
    drain_timeout_s: float = 600.0
    reconnect_attempts: int = 1
    breaker_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if self.backoff_max_s <= 0:
            raise ValueError("backoff_max_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.budget_s is not None and self.budget_s <= 0:
            raise ValueError("budget_s must be positive")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.reconnect_attempts <= 0:
            raise ValueError("reconnect_attempts must be positive")
        if self.breaker_threshold is not None and self.breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive")

    @classmethod
    def from_spec(cls, spec: Optional[Dict[str, Any]]) -> "RetryPolicy":
        """Build a policy from a JSON-style dict (scenario specs, CLI).

        Unknown keys are rejected with a one-line error naming the key.
        """
        spec = dict(spec or {})
        fields = ("max_attempts", "backoff_base_s", "backoff_multiplier",
                  "backoff_max_s", "jitter", "seed", "budget_s",
                  "drain_timeout_s", "reconnect_attempts",
                  "breaker_threshold")
        kwargs = {name: spec.pop(name) for name in fields if name in spec}
        if spec:
            raise ValueError(f"unknown retry policy key {sorted(spec)[0]!r}; "
                             f"available: {', '.join(fields)}")
        return cls(**kwargs)

    def attempt_limit(self, num_slots: int) -> int:
        """Recovery attempts allowed per batch on an N-slot backend."""
        if self.max_attempts is not None:
            return self.max_attempts
        return max(2 * num_slots, 4)

    def backoff_delay(self, attempt: int, slot: int = 0) -> float:
        """Backoff seconds before retry ``attempt`` (1-based), jittered."""
        if self.backoff_base_s <= 0:
            return 0.0
        delay = min(self.backoff_base_s
                    * self.backoff_multiplier ** (attempt - 1),
                    self.backoff_max_s)
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (seeded_jitter(self.seed, attempt,
                                                        slot) - 0.5)
        return delay

#: Aggregation topologies of :func:`make_backend`: ``flat`` ships every
#: trained update back to the parent (historical behavior);
#: ``hierarchical`` folds each slot's updates into one partial aggregate
#: inside the worker/shard, so upstream bytes are O(weights x slots),
#: independent of how many clients a slot hosts.  Both topologies
#: produce bit-identical global models (see :mod:`repro.fl.aggregation`).
AGGREGATION_MODES = ("flat", "hierarchical")


class _SlotFailed(Exception):
    """Internal: a slot's transport died during ``context``.

    Raised by :meth:`_ResidentFleetBackend._dispatch` /
    :meth:`_collect_reply` *instead of* closing the backend, so the
    retry loop in :meth:`run_jobs` can decide between aborting (close +
    raise the slot-identified error) and failing over.  ``pending``
    names the surviving slots that still owe a reply for the aborted
    batch — the failover drains them so their request/reply streams
    return to idle.  Never escapes the backend.
    """

    def __init__(self, slot: int, context: str,
                 cause: Optional[BaseException] = None,
                 pending: Sequence[int] = ()) -> None:
        super().__init__(f"slot {slot} failed while {context}")
        self.slot = slot
        self.context = context
        self.cause = cause
        self.pending = tuple(pending)


@dataclass
class TrainingJob:
    """One client-local training to execute within a batch.

    Attributes
    ----------
    index:
        Client index within the simulation's fleet.
    weights:
        The starting weights the client trains from (typically a snapshot
        of the global model; asynchronous strategies pass stale snapshots).
    mask:
        Optional neuron mask (soft-training / partial-model baselines).
    local_epochs:
        Optional override of the client's configured local epochs.
    base_cycle:
        Aggregation cycle the ``weights`` snapshot was taken at (staleness
        bookkeeping).
    """

    index: int
    weights: Dict[str, np.ndarray]
    mask: Optional[ModelMask] = None
    local_epochs: Optional[int] = None
    base_cycle: int = 0


def _train_jobs_inplace(client: FLClient,
                        jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
    """Run one client's jobs sequentially, mutating the client in place."""
    return [client.local_train(job.weights, mask=job.mask,
                               local_epochs=job.local_epochs,
                               base_cycle=job.base_cycle)
            for job in jobs]


def _train_jobs_in_subprocess(client: FLClient, jobs: Sequence[TrainingJob]
                              ) -> Tuple[List[ClientUpdate], dict]:
    """Worker entry point of the process backend.

    Returns the updates plus the client's post-training RNG state so the
    parent process can advance its own copy of the client identically.
    """
    updates = _train_jobs_inplace(client, jobs)
    return updates, client.rng.bit_generator.state


def _group_jobs(jobs: Sequence[TrainingJob]
                ) -> List[Tuple[int, List[int], List[TrainingJob]]]:
    """Group jobs by client index, preserving submission order.

    Returns ``(client_index, positions, client_jobs)`` triples where
    ``positions`` are the indices of the jobs in the original batch.  Jobs
    of the same client stay in submission order so its RNG consumption is
    identical to a serial run.
    """
    groups: Dict[int, Tuple[List[int], List[TrainingJob]]] = {}
    for position, job in enumerate(jobs):
        positions, client_jobs = groups.setdefault(job.index, ([], []))
        positions.append(position)
        client_jobs.append(job)
    return [(index, positions, client_jobs)
            for index, (positions, client_jobs) in groups.items()]


class ExecutionBackend:
    """Abstract batch executor for client-local trainings."""

    #: Identifier used by :func:`make_backend` and the CLI.
    name: str = "backend"

    #: Aggregation topology this backend was configured with (see
    #: :data:`AGGREGATION_MODES` and ``make_backend(aggregation=...)``).
    #: Consumed by :meth:`FederatedSimulation.train_and_aggregate`, which
    #: routes cycles through :meth:`run_fold` when it is
    #: ``"hierarchical"``.
    aggregation: str = "flat"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        """Execute a batch of jobs and return updates in job order."""
        raise NotImplementedError

    def run_fold(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob],
                 weight_factors: Sequence[float],
                 structure: Optional[ModelStructure] = None,
                 partial: bool = True
                 ) -> Tuple[List[PartialAggregate],
                            List[Tuple[int, float]]]:
        """Train a batch and reduce it into partial aggregates.

        The hierarchical-aggregation entry point: instead of returning
        every update, the batch is folded into one or more
        :class:`~repro.fl.aggregation.PartialAggregate` objects that the
        caller combines via
        :meth:`~repro.fl.server.FLServer.install_partials`.

        ``weight_factors`` are the **globally normalized** per-job
        aggregation weights (they must sum to 1 over the whole batch);
        ``partial`` selects neuron-granular folding (pass the flat
        path's ``partial and any masks`` predicate so both topologies
        take the same numerical route).  Because the fold is
        partition-independent, every backend and slot topology
        finalizes to the bit-identical global model.

        Returns ``(partials, summaries)`` where ``summaries`` holds one
        ``(num_samples, train_loss)`` pair per job, in job order.

        The default implementation trains locally via :meth:`run_jobs`
        and folds in the calling process — the reference the wire
        backends' in-slot folds are checked against.  Note that the
        worker-resident overrides mirror only each client's RNG state
        back into the parent-side replicas (never the trained weights —
        those stay slot-side by design); trainings always start from
        the shipped snapshot, so run histories are unaffected.
        """
        updates = self.run_jobs(clients, jobs)
        if not updates:
            return [], []
        factors = np.asarray(weight_factors, dtype=np.float64)
        partials = [fold_updates(updates, factors, structure=structure,
                                 partial=partial)]
        summaries = [(update.num_samples, update.train_loss)
                     for update in updates]
        return partials, summaries

    def run_virtual_fold(self, template: Any,
                         weights: Dict[str, np.ndarray],
                         structure: Optional[ModelStructure] = None,
                         return_updates: bool = False
                         ) -> Tuple[List[Any], np.ndarray, int]:
        """Train one cycle of a virtualized fleet and fold it in-slot.

        ``template`` describes the logical fleet by recipe (see
        :class:`~repro.fl.simulation.VirtualFleet`): clients are built
        on demand from ``template.spec_for(client_id)``, trained once on
        ``weights`` and folded immediately — nothing per-client is ever
        shipped or kept, which is how two shards can host 10^6 logical
        clients.  Virtual clients are *stateless*: each cycle rebuilds
        them from their spec (fresh per-cycle RNG), and every client
        carries the same uniform aggregation weight
        ``template.uniform_factor``.

        Returns ``(payload, loss_levels, count)``: with
        ``return_updates=False`` the payload is a list of
        :class:`~repro.fl.aggregation.PartialAggregate`; with ``True``
        (the flat measurement baseline) it is the raw updates in
        client-id order.  ``loss_levels`` are the exact per-level sums
        of ``train_loss x uniform_factor`` — collapse them for the
        cycle's mean loss.
        """
        batch = _WireVirtualBatch(
            weights_table=[weights], template=template, lo=0,
            hi=template.num_clients, factor=template.uniform_factor,
            loss_scale=template.uniform_factor,
            return_updates=return_updates)
        tag, payload, loss_levels, count = _run_virtual_batch(batch)
        if tag == "updates":
            return payload, loss_levels, count
        return (([payload] if payload is not None else []),
                loss_levels, count)

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        Generic escape hatch for parallelizable non-training work (fleet
        profiling, evaluation sweeps).  The default runs serially;
        concurrency-capable backends override it.
        """
        return [fn(item) for item in items]

    def invalidate_client(self, index: Optional[int] = None) -> None:
        """Client lifecycle notification (added / mutated / removed).

        The simulation routes fleet mutations — :meth:`add_client`, device
        swaps, cost-cache invalidations — through this hook so backends
        holding worker-resident replicas re-ship the client's spec before
        its next training.  ``None`` invalidates the whole fleet.  In-
        process backends share the caller's client objects and need no
        action.
        """

    def attach_chaos(self, controller: Any) -> None:
        """Adopt a :class:`~repro.fl.chaos.ChaosController`.

        Only the worker-resident backends have a substrate to injure
        (worker processes to kill, sockets to sever, wire frames to
        corrupt); everything else rejects the attachment loudly so a
        scenario never *silently* runs without its faults.
        """
        raise RuntimeError(
            f"backend {self.name!r} does not support fault injection; "
            f"use a worker-resident backend ('persistent', 'sharded')")

    def consume_dropped_clients(self) -> Tuple[int, ...]:
        """Clients dropped by ``degrade`` failovers since the last call.

        Drained by :meth:`FederatedSimulation.run` after every cycle and
        recorded in the cycle's :class:`~repro.fl.history.CycleRecord`,
        which is what keeps degraded runs auditable.  Backends without a
        degrade mode never drop anyone.
        """
        return ()

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        """Bytes this backend would pickle to dispatch ``jobs`` right now.

        Diagnostic used by the substrate benchmark to compare dispatch
        cost across backends.  In-process backends ship nothing (0); the
        process backend re-pickles whole clients; the persistent backend
        ships weights/masks/RNG digests only (plus specs for clients its
        workers have not built yet).
        """
        return 0

    def close(self) -> None:
        """Release worker resources (no-op for the serial backend).

        Closing is idempotent, and a closed backend may be used again:
        pools are re-created lazily on the next batch.
        """

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Train clients one after the other in the calling thread."""

    name = "serial"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return [clients[job.index].local_train(
            job.weights, mask=job.mask, local_epochs=job.local_epochs,
            base_cycle=job.base_cycle) for job in jobs]


class _PoolBackend(ExecutionBackend):
    """Shared machinery of the thread- and process-pool backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    @property
    def pool(self):
        """The lazily created worker pool."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            except Exception as exc:
                # close() must stay idempotent and safe during interpreter
                # shutdown; a pool that cannot shut down cleanly anymore
                # has nothing left worth raising about.
                _note_swallowed("shutting down the worker pool", exc)

    def _submit_job_groups(self, clients: Sequence[FLClient],
                           jobs: Sequence[TrainingJob],
                           worker: Callable) -> List[ClientUpdate]:
        """Fan the per-client job groups out to the pool, reorder results."""
        groups = _group_jobs(jobs)
        futures: List[Tuple[Future, int, List[int]]] = [
            (self.pool.submit(worker, clients[index], client_jobs),
             index, positions)
            for index, positions, client_jobs in groups
        ]
        results: List[Optional[ClientUpdate]] = [None] * len(jobs)
        try:
            for future, index, positions in futures:
                updates = self._collect(clients[index], future)
                for position, update in zip(positions, updates):
                    results[position] = update
        except BaseException:
            for future, _, _ in futures:
                future.cancel()
            raise
        return results  # type: ignore[return-value]

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        return list(self.pool.map(fn, items))


class ThreadPoolBackend(_PoolBackend):
    """Train distinct clients concurrently on worker threads.

    Clients mutate their own model replica and RNG in place exactly as in
    a serial run, so no state reconciliation is needed; only *distinct*
    clients run concurrently.
    """

    name = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="fl-train")

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs, _train_jobs_inplace)

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        return future.result()


class ProcessPoolBackend(_PoolBackend):
    """Train clients in worker processes.

    The client object is pickled to the worker; the updates and the
    client's post-training RNG state are shipped back, and the parent-side
    client is synchronized (RNG state restored, model weights set to the
    last update's weights) so subsequent cycles are bit-identical to a
    serial run.  Requires picklable clients — in particular the model,
    loss and dataset factories must be module-level callables, not
    closures.

    Dispatch cost is the backend's weakness: every batch re-pickles each
    participating client wholesale, dataset included.  For fleets with
    non-trivial local datasets prefer :class:`PersistentProcessBackend`.
    """

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs,
                                       _train_jobs_in_subprocess)

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        return sum(
            len(pickle.dumps((clients[index], client_jobs),
                             _PICKLE_PROTOCOL))
            for index, _, client_jobs in _group_jobs(jobs))

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        updates, rng_state = future.result()
        # Mirror the in-place mutations a serial run would have performed.
        client.rng.bit_generator.state = rng_state
        if updates:
            client.model.set_weights(updates[-1].weights)
            client.model.clear_neuron_masks()
        return updates


# --------------------------------------------------------------------- #
# persistent worker-resident backend
# --------------------------------------------------------------------- #

@dataclass
class _WireJob:
    """One job as shipped to a persistent worker.

    ``weights_ref`` indexes the worker batch's weights table — a shared
    global snapshot travels once per worker however many clients train
    from it.
    """

    weights_ref: int
    mask: Optional[ModelMask]
    local_epochs: Optional[int]
    base_cycle: int


@dataclass
class _WireGroup:
    """One client's chained jobs within a worker batch.

    ``spec`` is only present the first time the worker sees the client (or
    after an invalidation); afterwards the resident replica is reused and
    only the RNG digest travels.
    """

    index: int
    spec: Optional[ClientSpec]
    rng_state: dict
    jobs: List[_WireJob]


@dataclass
class _WireBatch:
    """Everything one persistent worker needs for one cycle.

    ``fusion`` selects the in-worker training engine: ``"off"`` runs the
    classic per-client loop, ``"stacked"`` fuses topology-homogeneous
    clients into batched multi-client GEMMs (see :mod:`repro.fl.fusion`)
    — bit-identical either way.  ``straggle_s`` is an injected
    slowdown slept inside the worker before training (chaos scenarios'
    straggler waves; 0 in production).
    """

    weights_table: List[Dict[str, np.ndarray]]
    groups: List[_WireGroup]
    fusion: str = "off"
    straggle_s: float = 0.0


@dataclass
class _WireFoldBatch:
    """One slot's chunk of a hierarchically aggregated cycle.

    Identical to :class:`_WireBatch` plus what the in-slot fold needs:
    ``factors`` carries, parallel to ``groups``, each group's jobs'
    globally normalized aggregation weights; ``partial``/``structure``
    pin the fold mode so every slot takes the same numerical route the
    flat reduction would.  The reply ships one partial aggregate plus
    per-job ``(num_samples, train_loss)`` summaries instead of full
    updates — O(weights) upstream however many clients trained.
    """

    weights_table: List[Dict[str, np.ndarray]]
    groups: List[_WireGroup]
    factors: List[List[float]]
    partial: bool
    structure: Optional[ModelStructure]
    fusion: str = "off"
    straggle_s: float = 0.0


@dataclass
class _WireVirtualBatch:
    """One slot's contiguous id-range of a virtualized fleet cycle.

    Virtual clients are never resident: the slot builds each client from
    ``template.spec_for(client_id)`` for ``client_id`` in ``[lo, hi)``,
    trains it on the (single-entry) weights table and folds the update
    immediately.  ``factor`` is the uniform per-client aggregation
    weight; ``loss_scale`` (``1/num_clients``) keeps the loss-mean
    reduction inside the reproducible-summation domain at fleet sizes
    where a plain loss sum would not be.  ``return_updates`` is the
    flat measurement baseline: ship every update back instead of the
    fold (upstream bytes O(clients), for byte-complexity comparisons).
    """

    weights_table: List[Dict[str, np.ndarray]]
    template: Any
    lo: int
    hi: int
    factor: float
    loss_scale: float
    return_updates: bool


def _handle_resident_request(kind: str, payload: Any,
                             residents: Dict[int, "FLClient"]
                             ) -> Tuple[str, Any]:
    """Serve one ``run``/``fold``/``vfold``/``map`` request.

    This is the protocol core shared by the pipe workers and the socket
    shard servers (their loops differ only in transport and control
    messages).  ``residents`` is the caller's routing decision: a pipe
    worker has exactly one fleet, while the multi-session shard server
    passes the *session-private* fleet of whichever parent sent the
    request (see :class:`~repro.fl.transport.ShardServer`), so this
    function never sees — and can never leak — another session's
    residents.  A request whose handling blows up degrades to an
    ``("error", ...)`` reply instead of killing the worker — only
    ``Exception``, though, so Ctrl-C still stops a foreground shard
    mid-batch.
    """
    if kind == KIND_RUN:
        try:
            return (KIND_RESULTS, _run_wire_batch(residents, payload))
        except Exception as exc:
            return (KIND_ERROR, _picklable_exception(exc))
    if kind == KIND_FOLD:
        try:
            return (KIND_RESULTS, _run_fold_batch(residents, payload))
        except Exception as exc:
            return (KIND_ERROR, _picklable_exception(exc))
    if kind == KIND_VFOLD:
        try:
            return (KIND_RESULTS, _run_virtual_batch(payload))
        except Exception as exc:
            return (KIND_ERROR, _picklable_exception(exc))
    if kind == KIND_MAP:
        try:
            fn, items = payload
            return (KIND_OK, [(position, fn(item))
                              for position, item in items])
        except Exception as exc:
            return (KIND_ERROR, _picklable_exception(exc))
    return (KIND_ERROR, ProtocolError(f"unknown message kind {kind!r}"))


def _encode_reply(reply: Tuple[str, Any], compression: str) -> bytes:
    """Codec-encode a reply, degrading to an error reply if it won't.

    The parent is blocked waiting for exactly one reply per request, so
    an unencodable result must answer *something* rather than kill the
    worker and tear the whole fleet down.
    """
    try:
        return wire_codec.encode_message(reply,
                                         compression=compression).tobytes()
    except Exception as exc:
        return wire_codec.encode_message(
            (KIND_ERROR, RuntimeError(f"worker reply does not encode: "
                                      f"{exc!r}"))).tobytes()


def _persistent_worker_main(conn, wire_compression: str = "none") -> None:
    """Loop of one persistent worker: build clients once, train forever.

    Protocol (length-prefixed codec frames or plain pickles over a
    duplex pipe — see :mod:`repro.fl.codec`): the parent sends ``(kind,
    payload)`` messages — ``"run"`` with a :class:`_WireBatch` (its
    weights table usually delta-encoded against this worker's decoder
    state), ``"map"`` with ``(fn, [(position, item), …])`` or ``"close"``
    — and every ``run``/``map`` gets exactly one reply, encoded with the
    ``wire_compression`` the parent configured.
    """
    residents: Dict[int, FLClient] = {}
    codec_state = DeltaDecoderState()
    arena_reader = ArenaReader()
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                # Writable copy for the same reason as in
                # _PersistentWorker.recv: resident datasets and weights
                # decoded as views must be writable like the socket
                # shards' (and the old in-band pickles').
                kind, payload = wire_codec.decode_message(
                    memoryview(bytearray(blob)), delta_state=codec_state,
                    arena=arena_reader)
            except wire_codec.DeltaBaseMismatchError as exc:
                # The parent's delta assumed a base this worker does not
                # hold; report it so the parent re-sends a full snapshot.
                conn.send_bytes(_encode_reply((KIND_ERROR, exc),
                                              wire_compression))
                continue
            except wire_codec.CodecError as exc:
                # Framing intact but the payload was garbage: degrade to
                # an error reply like the socket shard server does.
                conn.send_bytes(_encode_reply((KIND_ERROR, exc),
                                              wire_compression))
                continue
            if kind == KIND_CLOSE:
                break
            reply = _handle_resident_request(kind, payload, residents)
            conn.send_bytes(_encode_reply(reply, wire_compression))
    finally:
        arena_reader.close()
        conn.close()


def _ensure_resident(residents: Dict[int, FLClient],
                     group: _WireGroup) -> Tuple:
    """Build or fetch a group's resident client.

    Returns ``("ok", client)`` or ``("error", exc)``; build failures
    drop any stale replica so the parent re-ships a clean spec.
    """
    if group.spec is not None:
        # A spec that cannot build on this host (import error, missing
        # file) fails its own group, not the whole worker/shard.
        try:
            residents[group.index] = group.spec.build()
        except Exception as exc:
            residents.pop(group.index, None)
            return ("error", _picklable_exception(exc))
    client = residents.get(group.index)
    if client is None:  # pragma: no cover - protocol invariant guard
        return ("error", RuntimeError(
            f"worker has no resident client {group.index} and "
            f"received no spec"))
    return ("ok", client)


def _train_resident_group(residents: Dict[int, FLClient],
                          client: FLClient,
                          weights_table: List[Dict[str, np.ndarray]],
                          group: _WireGroup) -> Tuple:
    """Train one ensured client's chained jobs through the classic loop.

    Returns ``("ok", updates, rng_state)`` or ``("error", exc)``; the
    error case drops the resident replica so the parent re-ships a clean
    spec before the client's next batch.
    """
    client.rng.bit_generator.state = group.rng_state
    try:
        updates = [client.local_train(
            weights_table[job.weights_ref], mask=job.mask,
            local_epochs=job.local_epochs, base_cycle=job.base_cycle)
            for job in group.jobs]
    except Exception as exc:
        # The replica may be mid-training; drop it so the parent
        # re-ships a clean spec before the client's next batch.
        residents.pop(group.index, None)
        return ("error", _picklable_exception(exc))
    return ("ok", updates, client.rng.bit_generator.state)


def _train_wire_group(residents: Dict[int, FLClient],
                      weights_table: List[Dict[str, np.ndarray]],
                      group: _WireGroup) -> Tuple:
    """Train one group's chained jobs against the resident fleet."""
    ensured = _ensure_resident(residents, group)
    if ensured[0] == "error":
        return ensured
    return _train_resident_group(residents, ensured[1], weights_table,
                                 group)


def _train_groups_stacked(residents: Dict[int, FLClient],
                          weights_table: List[Dict[str, np.ndarray]],
                          groups: List[_WireGroup]) -> List[Tuple]:
    """Train a batch's groups with fusion-eligible clients clustered.

    Groups sharing a :func:`~repro.fl.fusion.cluster_signature` train as
    one stacked multi-client pass; singletons and ineligible groups run
    the classic per-client loop.  Outcomes come back in group order and
    are bit-identical to the classic path — clients share no state and
    every group's RNG is restored from its shipped digest, so the
    cluster-first execution order is invisible in the results.
    """
    outcomes: List[Optional[Tuple]] = [None] * len(groups)
    clusters: Dict[Tuple, List[Tuple[int, FLClient, _WireGroup]]] = {}
    for position, group in enumerate(groups):
        ensured = _ensure_resident(residents, group)
        if ensured[0] == "error":
            outcomes[position] = ensured
            continue
        client = ensured[1]
        signature = cluster_signature(client, group, weights_table)
        if signature is None:
            outcomes[position] = _train_resident_group(
                residents, client, weights_table, group)
        else:
            clusters.setdefault(signature, []).append(
                (position, client, group))
    for members in clusters.values():
        if len(members) < 2:
            # A cluster of one gains nothing from stacking; keep the
            # classic loop as the single source of singleton numerics.
            for position, client, group in members:
                outcomes[position] = _train_resident_group(
                    residents, client, weights_table, group)
            continue
        for _, client, group in members:
            client.rng.bit_generator.state = group.rng_state
        try:
            updates = train_cluster(
                [(client, group.jobs[0]) for _, client, group in members],
                weights_table)
        except Exception as exc:
            # The stacked pass has no per-client failure boundary: fail
            # every member and drop their replicas for a clean re-ship.
            wrapped = _picklable_exception(exc)
            for position, _, group in members:
                residents.pop(group.index, None)
                outcomes[position] = ("error", wrapped)
            continue
        for (position, client, _), update in zip(members, updates):
            outcomes[position] = ("ok", [update],
                                  client.rng.bit_generator.state)
    return outcomes


def _straggle(batch: Any) -> None:
    """Sleep out a batch's injected straggler delay (worker side).

    Chaos scenarios' straggler waves ride inside the wire batch, so the
    parent genuinely blocks on a slow slot — the same shape an
    overloaded shard produces.  Pure wall-clock: nothing numerical ever
    depends on it.  ``getattr`` keeps old peers compatible with batches
    that predate the field.
    """
    seconds = getattr(batch, "straggle_s", 0.0)
    if seconds > 0:
        time.sleep(seconds)


def _train_batch_groups(residents: Dict[int, FLClient],
                        weights_table: List[Dict[str, np.ndarray]],
                        groups: List[_WireGroup],
                        fusion: str) -> List[Tuple]:
    """Per-group training outcomes, via the configured engine."""
    if fusion == "stacked":
        return _train_groups_stacked(residents, weights_table, groups)
    return [_train_wire_group(residents, weights_table, group)
            for group in groups]


def _run_wire_batch(residents: Dict[int, FLClient],
                    batch: _WireBatch) -> List[Tuple]:
    """Train every group of a worker batch against the resident fleet."""
    _straggle(batch)
    results: List[Tuple] = []
    outcomes = _train_batch_groups(residents, batch.weights_table,
                                   batch.groups,
                                   getattr(batch, "fusion", "off"))
    for group, outcome in zip(batch.groups, outcomes):
        if outcome[0] == "error":
            results.append((group.index, "error", outcome[1]))
        else:
            results.append((group.index, "ok", outcome[1], outcome[2]))
    return results


def _run_fold_batch(residents: Dict[int, FLClient],
                    batch: _WireFoldBatch
                    ) -> Tuple[List[Tuple], Optional[PartialAggregate]]:
    """Train a fold batch and reduce it into one partial aggregate.

    Per-group outcomes degrade exactly like the ``run`` path
    (``(index, "error", exc)`` entries); success entries carry only the
    post-training RNG digest and per-job ``(num_samples, train_loss)``
    summaries.  The fold is skipped (``None``) when any group failed —
    the parent raises the group error anyway, and a partial aggregate
    over a *subset* of the batch must never look like a finished one.
    """
    _straggle(batch)
    results: List[Tuple] = []
    folded_updates: List[ClientUpdate] = []
    folded_factors: List[float] = []
    failed = False
    outcomes = _train_batch_groups(residents, batch.weights_table,
                                   batch.groups,
                                   getattr(batch, "fusion", "off"))
    for group, group_factors, outcome in zip(batch.groups, batch.factors,
                                             outcomes):
        if outcome[0] == "error":
            results.append((group.index, "error", outcome[1]))
            failed = True
            continue
        _, updates, rng_state = outcome
        results.append((group.index, "ok", rng_state,
                        [(update.num_samples, update.train_loss)
                         for update in updates]))
        folded_updates.extend(updates)
        folded_factors.extend(group_factors)
    aggregate: Optional[PartialAggregate] = None
    if not failed and folded_updates:
        aggregate = fold_updates(
            folded_updates,
            np.asarray(folded_factors, dtype=np.float64),
            structure=batch.structure, partial=batch.partial)
    return results, aggregate


#: Virtual-client updates folded per chunk — bounds slot-side memory at
#: chunk x model size however many logical clients the range spans.
_VIRTUAL_FOLD_CHUNK = 64


def _run_virtual_batch(batch: _WireVirtualBatch) -> Tuple:
    """Train one id-range of a virtual fleet, folding incrementally.

    Clients are ephemeral: built from the template, trained once on the
    shared snapshot, folded (or shipped raw under ``return_updates``)
    and discarded.  Chunked folds merge exactly, so the chunk size is
    invisible in the result.  Returns ``(kind, payload, loss_levels,
    count)`` with ``kind`` in ``("partial", "updates")``.
    """
    weights = batch.weights_table[0]
    loss_levels = np.zeros(NUM_LEVELS, dtype=np.float64)
    raw_updates: List[ClientUpdate] = []
    chunk: List[ClientUpdate] = []
    partials: List[PartialAggregate] = []

    def fold_chunk() -> None:
        partials.append(fold_updates(
            chunk, np.full(len(chunk), batch.factor), structure=None,
            partial=False))
        chunk.clear()

    for client_id in range(batch.lo, batch.hi):
        client = batch.template.spec_for(client_id).build()
        update = client.local_train(weights)
        loss_levels += level_sums(
            np.asarray([update.train_loss]) * batch.loss_scale)
        if batch.return_updates:
            raw_updates.append(update)
            continue
        chunk.append(update)
        if len(chunk) >= _VIRTUAL_FOLD_CHUNK:
            fold_chunk()
    count = batch.hi - batch.lo
    if batch.return_updates:
        return ("updates", raw_updates, loss_levels, count)
    if chunk:
        fold_chunk()
    merged = merge_partials(partials) if partials else None
    return ("partial", merged, loss_levels, count)


class _PersistentWorker:
    """Parent-side handle of one resident worker process."""

    def __init__(self, ctx, wire_compression: str = "none") -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_persistent_worker_main,
                                   args=(child_conn, wire_compression),
                                   name="fl-resident-worker", daemon=True)
        self.process.start()
        child_conn.close()

    def send_frame(self, frame: "wire_codec.EncodedFrame") -> None:
        # A pipe message is one buffer, so the frame is assembled here —
        # the price of the pipe transport; the socket transport writes
        # the segments vectored instead (MessageChannel.send_frame).
        self.conn.send_bytes(frame.tobytes())

    def recv(self):
        # The pipe hands back immutable ``bytes``; decode from a
        # writable copy so the zero-copy array views in the reply are
        # writable, matching the socket transport (which receives into
        # a bytearray) and what plain pickling used to produce.
        return wire_codec.decode_message(
            memoryview(bytearray(self.conn.recv_bytes())))

    def stop(self) -> None:
        # Every step is individually guarded: stop() is called from
        # close(), which must succeed on an already-dead worker and even
        # during interpreter shutdown (hence the pre-pickled blob).
        try:
            self.conn.send_bytes(_CLOSE_BLOB)
        except Exception as exc:
            _note_swallowed("asking a worker to close", exc)
        try:
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - hang safety net
                self.process.terminate()
                self.process.join(timeout=1.0)
        except Exception as exc:
            _note_swallowed("joining a worker process", exc)
        try:
            self.conn.close()
        except Exception as exc:
            _note_swallowed("closing a worker pipe", exc)


class ShardError(RuntimeError):
    """A shard server failed or disconnected mid-operation.

    Carries the shard identity (``slot`` and ``address``) so a fleet
    operator can tell *which* shard to inspect or restart.
    """

    def __init__(self, message: str, slot: Optional[int] = None,
                 address: Optional[Tuple[str, int]] = None) -> None:
        super().__init__(message)
        self.slot = slot
        self.address = address


class _ResidentFleetBackend(ExecutionBackend):
    """Shared machinery of the worker-resident backends.

    Subclasses own the transport — duplex pipes to local worker
    processes (:class:`PersistentProcessBackend`) or framed sockets to
    shard servers (:class:`ShardedSocketBackend`) — and this base owns
    everything determinism-critical: sticky client→slot placement,
    spec-version residency tracking, per-slot weight-snapshot dedup,
    ordered reply collection and parent-side state mirroring.  A
    transport failure on any slot either aborts the whole batch —
    closing the backend (no orphan workers or sockets) and raising the
    subclass's slot-identified error — or, under
    ``on_failure="rebalance"``, repairs the topology and retries it,
    or, under ``on_failure="degrade"``, finishes the cycle without the
    dead slot: its clients are dropped (their result positions come
    back ``None``, aggregation re-weighted over the survivors) and
    recorded for :meth:`consume_dropped_clients`.  Recovery pacing —
    attempt caps, exponential backoff with seeded jitter, drain
    timeouts, the circuit breaker — is owned by :class:`RetryPolicy`.

    Failure recovery
    ----------------
    Retrying an aborted batch is *bit-identical* by construction: every
    wire group ships the client's starting weights (by table reference)
    and its pre-batch RNG digest, and the parent mirrors post-training
    state into its own clients only after **all** replies arrived.  The
    parent-side clients therefore always hold the last *committed*
    state — together with each client's immutable spec they are the
    recovery snapshot from which a replacement slot rebuilds its
    residents (see :class:`~repro.fl.client.ClientSpec` /
    :meth:`~repro.fl.client.FLClient.get_state`).  What ``rebalance``
    does on a dead slot:

    1. drain the surviving slots' replies to the aborted batch and
       discard them (their undrained in-flight replies would otherwise
       desynchronize the request/reply protocol — and resetting the
       connections instead could cascade the failure onto healthy
       slots that are merely still busy);
    2. discard the dead slot's transport (and, where the subclass can,
       arrange a replacement — a respawned localhost shard, a fresh
       pipe worker — or mark the slot dead and move its clients onto
       surviving slots);
    3. re-dispatch the whole batch — same weights, same RNG digests,
       hence the same history as an undisturbed run.
    """

    #: What to do when a slot's transport dies (see
    #: :data:`FAILURE_POLICIES`).
    on_failure = "abort"

    def __init__(self, on_failure: str = "abort",
                 wire_compression: str = "none",
                 delta_shipping: bool = True,
                 fusion: str = "off",
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if on_failure not in FAILURE_POLICIES:
            raise ValueError(
                f"unknown failure policy {on_failure!r}; "
                f"available: {FAILURE_POLICIES}")
        if wire_compression not in wire_codec.COMPRESSIONS:
            raise ValueError(
                f"unknown wire compression {wire_compression!r}; "
                f"available: {wire_codec.COMPRESSIONS}")
        if fusion not in FUSION_MODES:
            raise ValueError(f"unknown fusion mode {fusion!r}; "
                             f"available: {FUSION_MODES}")
        if retry_policy is not None and not isinstance(retry_policy,
                                                       RetryPolicy):
            raise ValueError(f"retry_policy must be a RetryPolicy, "
                             f"not {retry_policy!r}")
        self.on_failure = on_failure
        #: Recovery knobs (attempt cap, backoff, drain timeout, breaker)
        #: — defaults reproduce the historical constants exactly.
        self.retry_policy = retry_policy or RetryPolicy()
        #: In-worker training engine (``"off"``/``"stacked"``) shipped
        #: with every wire batch — see :mod:`repro.fl.fusion`.
        self.fusion = fusion
        #: Shared-memory arena writer (persistent backend only; ``None``
        #: keeps every segment on the wire).
        self._arena: Optional[WeightArenaWriter] = None
        #: Per-segment compression of the wire codec (``"none"``/
        #: ``"zlib"``) — applied to dispatches and, via negotiation or
        #: worker configuration, to the slots' replies.
        self.wire_compression = wire_compression
        #: Whether weight tables are delta-encoded against each slot's
        #: acknowledged base (bit-exact; off ships full snapshots).
        self.delta_shipping = delta_shipping
        #: Per-slot delta encoder states (lazily created; reset to
        #: full-snapshot mode on any transport failure or close).
        self._tx_states: Dict[int, DeltaEncoderState] = {}
        self._placement: Dict[int, int] = {}
        #: index → spec_version of the replica resident in its slot; a
        #: client whose current spec_version differs (any identity
        #: mutation: dataset, device, config, …) gets its spec re-shipped.
        self._resident: Dict[int, int] = {}
        self._next_slot = 0
        #: Slots declared permanently lost (externally addressed shards
        #: that failed repeatedly); their clients rebalance onto the
        #: surviving slots.  Reset by :meth:`close`.
        self._dead_slots: set = set()
        #: Consecutive transport failures per slot since the last
        #: successful batch (the sharded backend's give-up threshold
        #: for externally addressed shards reads it).
        self._slot_failures: Dict[int, int] = {}
        #: Slots excluded from the *current* batch under
        #: ``on_failure="degrade"`` — their clients are dropped for the
        #: cycle instead of migrating.  Cleared at the start of every
        #: batch, so the next cycle probes the slot again.
        self._degraded_slots: set = set()
        #: Client indices dropped by the current batch attempt (filled
        #: while payloads are built under ``degrade``).
        self._attempt_dropped: List[int] = []
        #: Client indices dropped by *committed* batches since the last
        #: :meth:`consume_dropped_clients` — the audit trail
        #: :meth:`FederatedSimulation.run` mirrors into the history.
        self._dropped_log: List[int] = []
        #: Lifetime transport failures per slot (never reset by a
        #: successful batch — only by :meth:`close`); the circuit
        #: breaker's evidence that a slot is flapping.
        self._slot_strikes: Dict[int, int] = {}
        #: Attached :class:`~repro.fl.chaos.ChaosController` (fault
        #: injection; ``None`` in production).
        self._chaos: Optional[Any] = None
        self._close_lock = threading.Lock()
        #: Bumped by every :meth:`close`; an in-flight batch that sees
        #: the epoch move refuses to fail over (it would resurrect a
        #: backend its owner just shut down) and aborts instead.
        self._close_epoch = 0
        #: Measured pickled bytes of the most recent dispatched batch.
        self.last_dispatch_bytes = 0
        #: Measured wire bytes of the most recent batch's replies (all
        #: slots) — the shard→parent direction the hierarchical fold
        #: shrinks from O(clients x weights) to O(slots x weights).
        self.last_reply_bytes = 0

    @property
    def num_slots(self) -> int:
        """Number of slots the fleet is partitioned across."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # transport interface implemented by subclasses
    # ------------------------------------------------------------------ #
    def _slot_send(self, slot: int, frame: "wire_codec.EncodedFrame"
                   ) -> None:
        """Ship one encoded frame to a slot (creating it lazily)."""
        raise NotImplementedError

    def _slot_recv(self, slot: int) -> Tuple[str, Any]:
        """Receive one ``(kind, payload)`` reply from a slot."""
        raise NotImplementedError

    def _slot_error(self, slot: int, context: str) -> RuntimeError:
        """The error to raise when a slot's transport died."""
        raise NotImplementedError

    def _teardown(self) -> None:
        """Release every slot's transport resources."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # failure policy
    # ------------------------------------------------------------------ #
    def _active_slots(self) -> List[int]:
        """Slots still eligible to host clients."""
        return [slot for slot in range(self.num_slots)
                if slot not in self._dead_slots]

    def _eligible_slots(self) -> List[int]:
        """Active slots minus the ones degraded out of this batch."""
        return [slot for slot in self._active_slots()
                if slot not in self._degraded_slots]

    def attach_chaos(self, controller: Any) -> None:
        self._chaos = controller
        controller.bind(self)

    def consume_dropped_clients(self) -> Tuple[int, ...]:
        dropped = tuple(sorted(set(self._dropped_log)))
        self._dropped_log.clear()
        return dropped

    def _failover(self, failure: _SlotFailed) -> bool:
        """Repair the topology after a slot's transport died.

        ``True`` means the aborted batch may be retried; ``False`` means
        the failure is unrecoverable (no surviving capacity) and the
        caller must abort.  The base class cannot recover anything.
        """
        return False

    def _degrade(self, failure: _SlotFailed) -> bool:
        """Exclude the dead slot from this batch instead of repairing it.

        The survivors' owed replies are drained exactly like a
        rebalance; the dead slot keeps its placements (that is what
        makes its clients identifiable as *dropped* rather than
        migrated) but is barred from the batch, so the retry re-trains
        only the survivors — bit-identical to a run that never
        scheduled the dropped clients, since parent-side state is only
        mirrored after full success.  ``False`` means no capacity
        survives and the caller must abort.
        """
        self._drain_pending(failure.pending)
        self._discard_slot_transport(failure.slot)
        self._degraded_slots.add(failure.slot)
        return bool(self._eligible_slots())

    @property
    def DRAIN_TIMEOUT_S(self) -> float:
        """Bound on waiting for a survivor's owed reply while failing
        over (see :attr:`RetryPolicy.drain_timeout_s`, which now owns
        the knob; this alias keeps the historical spelling readable)."""
        return self.retry_policy.drain_timeout_s

    def _discard_slot_transport(self, slot: int) -> None:
        """Drop one slot's transport so it is rebuilt on next use."""
        raise NotImplementedError

    def _drain_slot(self, slot: int) -> None:
        """Consume and discard one slot's owed reply, bounded in time."""
        raise NotImplementedError

    def _drain_pending(self, pending: Sequence[int]) -> None:
        """Consume and discard the aborted batch's undrained replies.

        Surviving slots are *not* reset on failover: they may still be
        crunching their chunk of the aborted batch, and reconnecting to
        a busy shard can time out at the handshake and cascade the
        failure onto healthy hosts.  Instead their owed replies are
        collected like a normal batch (bounded by
        :data:`DRAIN_TIMEOUT_S`) and thrown away, which returns every
        surviving request/reply stream to idle with resident state
        intact.  A slot that fails or times out *while draining* loses
        its transport too; the retry rebuilds it and the normal failure
        path judges it.
        """
        for slot in pending:
            self._drain_slot(slot)

    def _failover_attempt_limit(self) -> int:
        """Cap on recovery attempts per batch (runaway-loop backstop)."""
        return self.retry_policy.attempt_limit(self.num_slots)

    def _maybe_check_health(self) -> None:
        """Pre-batch health hook (heartbeat probing, where supported).

        Raises :class:`_SlotFailed` for a probed-dead slot so the
        detection funnels through the same abort/rebalance recovery
        path (and attempt cap) as every other transport failure.
        """

    def _prepare_slot(self, slot: int) -> bool:
        """Ensure a slot's transport is ready before payloads are built.

        ``True`` means the slot came up without its previous resident
        state (fresh worker, non-resumed connection) and the caller must
        rebuild payloads so specs are re-shipped.
        """
        return False

    # ------------------------------------------------------------------ #
    # wire codec
    # ------------------------------------------------------------------ #
    def _slot_compression(self, slot: int) -> str:
        """Compression used for one slot's frames (negotiable per slot)."""
        return self.wire_compression

    def _encode_run(self, slot: int, batch: Any,
                    force_full: bool = False,
                    delta_cache: Optional[Dict] = None,
                    kind: str = KIND_RUN) -> "wire_codec.EncodedFrame":
        """Encode one slot's batch: delta weights table + zero-copy frame.

        ``kind`` selects the wire message (``"run"``, ``"fold"`` or
        ``"vfold"``); all three carry a ``weights_table`` and share the
        slot's delta state.  Pure with respect to that state — the new
        base is only adopted by :meth:`_commit_tx` once the slot's reply
        proves the frame was decoded.  ``force_full`` bypasses the base
        (the recovery resend after a ``DeltaBaseMismatchError`` reply);
        ``delta_cache`` (one dict per batch) dedups the per-array delta
        work when several slots encode the same shared snapshot.
        """
        state = None
        if self.delta_shipping:
            state = self._tx_states.setdefault(slot, DeltaEncoderState())
        return wire_codec.encode_message(
            (kind, batch), compression=self._slot_compression(slot),
            delta_state=state, force_full=force_full,
            delta_cache=delta_cache, arena=self._arena)

    def _commit_tx(self, slot: int, frame: "wire_codec.EncodedFrame",
                   array_cache: Optional[Dict] = None) -> None:
        """Adopt a frame's delta base after the slot answered it.

        ``array_cache`` (one dict per batch) lets the slots committing
        the same shared snapshot share one frozen copy per array.
        """
        state = self._tx_states.get(slot)
        if state is not None:
            state.commit(frame.pending_base, frame.pending_seq,
                         array_cache=array_cache)

    def _reset_tx_states(self) -> None:
        """Force every slot's next weights table back to a full snapshot.

        Called on any batch failure and on close: a slot whose reply was
        lost (or drained and discarded) may or may not have advanced its
        decoder base, so the only safe delta base is none at all.  The
        sequence counters survive the reset — they stay monotonic for
        the mismatch check.
        """
        for state in self._tx_states.values():
            state.reset()

    def _note_strike(self, slot: int) -> None:
        """Count a lifetime failure; trip the circuit breaker if due.

        A tripped slot is declared dead outright: under ``rebalance``
        its clients migrate to survivors on the next payload build
        (placement purged, like a struck-out external shard); under
        ``degrade`` the placements stay so its clients keep showing up
        in the dropped-client audit trail.
        """
        self._slot_strikes[slot] = self._slot_strikes.get(slot, 0) + 1
        threshold = self.retry_policy.breaker_threshold
        if (threshold is None or slot in self._dead_slots
                or self._slot_strikes[slot] < threshold):
            return
        self._dead_slots.add(slot)
        if self.on_failure != "degrade":
            for index, placed in list(self._placement.items()):
                if placed == slot:
                    self._placement.pop(index)
                    self._resident.pop(index, None)

    def _recover_or_raise(self, failure: _SlotFailed,
                          attempts: int) -> None:
        """Fail over after a slot death, or abort the batch loudly."""
        # Build the error before any teardown wipes the slot bookkeeping
        # (it carries the slot identity, e.g. the shard's address).
        error = self._slot_error(failure.slot, failure.context)
        if self.on_failure == "degrade":
            recoverable = (attempts <= self._failover_attempt_limit()
                           and self._degrade(failure))
        else:
            recoverable = (self.on_failure == "rebalance"
                           and attempts <= self._failover_attempt_limit()
                           and self._failover(failure))
        if recoverable:
            self._note_strike(failure.slot)
            recoverable = bool(self._eligible_slots())
        if not recoverable:
            self.close()
            raise error from failure.cause

    def _with_failover(self, attempt: Callable[[], Any]) -> Any:
        """Run one batch attempt under the configured failure policy."""
        attempts = 0
        backoff_spent = 0.0
        self._degraded_slots.clear()
        self._attempt_dropped = []
        while True:
            epoch = self._close_epoch
            try:
                self._maybe_check_health()
                result = attempt()
            except _SlotFailed as failure:
                if self._close_epoch != epoch:
                    # close() raced this batch: the transports died
                    # because the owner shut the backend down, and
                    # failing over would resurrect it behind their
                    # back.  Abort loudly instead (and close again so
                    # anything the attempt spawned meanwhile is
                    # reaped).
                    error = self._slot_error(failure.slot,
                                             failure.context)
                    self.close()
                    raise error from failure.cause
                # Any slot's delta base may now be out of step with its
                # peer (a decoded-but-unanswered batch advances only one
                # side), so the retry ships full snapshots everywhere.
                self._reset_tx_states()
                attempts += 1
                self._recover_or_raise(failure, attempts)
                delay = self.retry_policy.backoff_delay(attempts,
                                                        failure.slot)
                budget = self.retry_policy.budget_s
                if budget is not None:
                    delay = min(delay, budget - backoff_spent)
                if delay > 0:
                    backoff_spent += delay
                    time.sleep(delay)
                continue
            self._slot_failures.clear()
            if self._attempt_dropped:
                self._dropped_log.extend(self._attempt_dropped)
                self._attempt_dropped = []
            return result

    # ------------------------------------------------------------------ #
    def _dispatch(self, slot: int, frame: "wire_codec.EncodedFrame",
                  context: str, pending: Sequence[int] = ()) -> None:
        try:
            self._slot_send(slot, frame)
        except ShardError:
            # Spawn/announce failures already carry the shard identity
            # and mean the host cannot even start a worker — that is not
            # a failure another slot can absorb.  Close: earlier slots
            # may have undrained in-flight batches that would
            # desynchronize the protocol on reuse.
            self.close()
            raise
        except _TRANSPORT_FAILURES as exc:
            raise _SlotFailed(slot, context, exc, pending) from exc

    def _collect_reply(self, slot: int, context: str,
                       pending: Sequence[int] = ()) -> Tuple[str, Any]:
        try:
            return self._slot_recv(slot)
        except ShardError:
            self.close()
            raise
        except _TRANSPORT_FAILURES as exc:
            raise _SlotFailed(slot, context, exc, pending) from exc

    def _build_payloads(self, clients: Sequence[FLClient],
                        jobs: Sequence[TrainingJob], commit: bool
                        ) -> Tuple[Dict[int, _WireBatch],
                                   List[Tuple[int, List[int]]]]:
        """Assemble per-worker wire batches for one cycle.

        Returns ``(batches keyed by slot, ordered (index, positions)
        pairs)``.  With ``commit=False`` the placement bookkeeping is left
        untouched (used by :meth:`dispatch_payload_bytes`).
        """
        placement = self._placement if commit else dict(self._placement)
        next_slot = self._next_slot
        degrading = self.on_failure == "degrade"
        active = self._eligible_slots() if degrading else self._active_slots()
        if not active:
            raise self._slot_error(
                next(iter(sorted(self._dead_slots
                                 | self._degraded_slots)), 0),
                "partitioning the fleet (every slot is dead)")
        if commit:
            self._attempt_dropped = []
        dropped: List[int] = []
        batches: Dict[int, _WireBatch] = {}
        weight_refs: Dict[int, Dict[int, int]] = {}
        order: List[Tuple[int, List[int]]] = []
        for index, positions, client_jobs in _group_jobs(jobs):
            slot = placement.get(index)
            if degrading and slot is not None and (
                    slot in self._dead_slots
                    or slot in self._degraded_slots):
                # Graceful degradation: the client's slot is down, so it
                # sits this cycle out instead of migrating — the
                # retained placement is exactly what identifies it as
                # *dropped* in the cycle's audit record, and the
                # aggregation re-weights over the survivors.
                dropped.append(index)
                continue
            if slot is None or slot in self._dead_slots:
                # First appearance — or the placed slot was declared
                # dead, in which case the client moves to a survivor
                # (its spec travels again; the failover purged its
                # residency entry).
                slot = active[next_slot % len(active)]
                next_slot += 1
                placement[index] = slot
            batch = batches.setdefault(
                slot, _WireBatch(weights_table=[], groups=[],
                                 fusion=self.fusion,
                                 straggle_s=(
                                     self._chaos.straggle_seconds(slot)
                                     if self._chaos is not None else 0.0)))
            refs = weight_refs.setdefault(slot, {})
            wire_jobs = []
            for job in client_jobs:
                ref = refs.get(id(job.weights))
                if ref is None:
                    ref = len(batch.weights_table)
                    refs[id(job.weights)] = ref
                    batch.weights_table.append(job.weights)
                wire_jobs.append(_WireJob(weights_ref=ref, mask=job.mask,
                                          local_epochs=job.local_epochs,
                                          base_cycle=job.base_cycle))
            client = clients[index]
            stale = self._resident.get(index) != client.spec_version
            batch.groups.append(_WireGroup(
                index=index, spec=client.spec if stale else None,
                rng_state=client.rng.bit_generator.state, jobs=wire_jobs))
            order.append((index, positions))
        if commit:
            self._next_slot = next_slot
            self._attempt_dropped = dropped
        return batches, order

    # ------------------------------------------------------------------ #
    def _exchange(self, batches: Dict[int, Any], wire_kind: str,
                  context: str) -> Dict[int, Any]:
        """Run one request/reply round trip with every slot in ``batches``.

        Encodes every frame before sending any (sharing one delta cache
        across slots carrying the same snapshot), dispatches in sorted
        slot order, then collects each slot's reply — transparently
        re-sending a full snapshot on a ``DeltaBaseMismatchError`` reply
        and committing the slot's delta base once its reply proves the
        frame was decoded.  Returns the ``"results"`` payloads keyed by
        slot.  Also refreshes :attr:`last_dispatch_bytes` and
        :attr:`last_reply_bytes` for this round trip.
        """
        if self._arena is not None:
            # The previous exchange is fully answered, so every arena
            # generation but the most recent can be retired (and any
            # staging a crashed attempt left behind is discarded).
            self._arena.collect()
        # Both caches live for exactly one batch: they share the
        # O(weights) delta/copy work across slots encoding (and later
        # committing) the same global snapshot.
        delta_cache: Dict = {}
        commit_cache: Dict = {}
        frames = {slot: self._encode_run(slot, batch,
                                         delta_cache=delta_cache,
                                         kind=wire_kind)
                  for slot, batch in batches.items()}
        if self._arena is not None:
            # Materialize the staged segments before any frame that
            # references them can reach a worker.
            self._arena.publish()
        self.last_dispatch_bytes = sum(frame.total_bytes
                                       for frame in frames.values())
        self.last_reply_bytes = 0
        slots = sorted(frames)
        dispatched: List[int] = []
        for slot in slots:
            self._dispatch(slot, frames[slot], "dispatching a batch",
                           pending=dispatched)
            dispatched.append(slot)
        replies: Dict[int, Any] = {}
        for position, slot in enumerate(slots):
            kind, results = self._collect_reply(slot, context,
                                                pending=slots[position + 1:])
            mismatch_state = (
                self._tx_states.get(slot)
                if (kind == KIND_ERROR
                    and isinstance(results,
                                   wire_codec.DeltaBaseMismatchError))
                else None)
            if mismatch_state is not None:
                # The slot does not hold the delta base this batch was
                # encoded against (it restarted, or a reply of its was
                # lost after it advanced) — the codec's designed-for
                # fallback: re-send this slot's batch as a full
                # snapshot.  The slot already answered, so its
                # request/reply stream is idle and a fresh dispatch is
                # safe.  (A mismatch reply without any delta state —
                # delta shipping off, or a confused peer — falls
                # through to the generic bad-reply abort below.)
                mismatch_state.reset()
                full = self._encode_run(slot, batches[slot],
                                        force_full=True, kind=wire_kind)
                if self._arena is not None:
                    # The resend staged its segments into a successor
                    # generation; the earlier one stays live until the
                    # next exchange's collect() in case later slots'
                    # replies force more resends against it.
                    self._arena.publish()
                self.last_dispatch_bytes += full.total_bytes
                frames[slot] = full
                self._dispatch(slot, full, "re-sending a full snapshot",
                               pending=slots[position + 1:])
                kind, results = self._collect_reply(
                    slot, context, pending=slots[position + 1:])
            if kind != KIND_RESULTS:
                self.close()
                if isinstance(results, BaseException):
                    raise results
                raise RuntimeError(f"unexpected batch reply {kind!r}")
            # The reply proves the slot decoded this frame's weights
            # table: its base is now ours to delta against.
            self._commit_tx(slot, frames[slot], commit_cache)
            replies[slot] = results
        return replies

    def _prepare_batches(self, clients: Sequence[FLClient],
                         jobs: Sequence[TrainingJob]
                         ) -> Tuple[Dict[int, _WireBatch],
                                    List[Tuple[int, List[int]]]]:
        """Build the cycle's wire batches with every slot's transport up.

        Bringing every participating slot's transport up *before* the
        payloads are trusted matters: a slot that comes back without its
        resident state (fresh worker, non-resumed reconnect) purges its
        residency entries, and the payloads must be rebuilt so those
        clients' specs travel again.
        """
        batches, order = self._build_payloads(clients, jobs, commit=True)
        stale = False
        for slot in sorted(batches):
            stale = self._prepare_slot(slot) or stale
        if stale:
            batches, order = self._build_payloads(clients, jobs,
                                                  commit=True)
        return batches, order

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        if not jobs:
            # Short-circuit before any wire activity: an empty cycle must
            # not open a batch or commit delta bases on any backend.
            return []
        return self._with_failover(
            lambda: self._run_jobs_attempt(clients, jobs))

    def _run_jobs_attempt(self, clients: Sequence[FLClient],
                          jobs: Sequence[TrainingJob]
                          ) -> List[ClientUpdate]:
        batches, order = self._prepare_batches(clients, jobs)
        replies = self._exchange(batches, KIND_RUN, "running a batch")
        outcomes: Dict[int, Tuple] = {}
        for slot in sorted(replies):
            for outcome in replies[slot]:
                outcomes[outcome[0]] = outcome
        # Residency first, for *every* outcome: workers drop a replica
        # whose training raised, so the parent must forget it even when a
        # different group's error wins the raise below.
        for index, _ in order:
            if outcomes[index][1] == "error":
                self._resident.pop(index, None)
            else:
                self._resident[index] = clients[index].spec_version
        # Consume outcomes in submission order so error precedence and
        # parent-side mirroring match the other backends exactly.
        updates_by_position: List[Optional[ClientUpdate]] = [None] * len(jobs)
        for index, positions in order:
            outcome = outcomes[index]
            if outcome[1] == "error":
                raise outcome[2]
            _, _, updates, rng_state = outcome
            client = clients[index]
            client.rng.bit_generator.state = rng_state
            if updates:
                client.model.set_weights(updates[-1].weights)
                client.model.clear_neuron_masks()
            for position, update in zip(positions, updates):
                updates_by_position[position] = update
        return updates_by_position  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # hierarchical aggregation
    # ------------------------------------------------------------------ #
    def run_fold(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob],
                 weight_factors: Sequence[float],
                 structure: Optional[ModelStructure] = None,
                 partial: bool = True
                 ) -> Tuple[List[PartialAggregate],
                            List[Tuple[int, float]]]:
        if not jobs:
            return [], []
        return self._with_failover(
            lambda: self._run_fold_attempt(clients, jobs, weight_factors,
                                           structure, partial))

    def _run_fold_attempt(self, clients: Sequence[FLClient],
                          jobs: Sequence[TrainingJob],
                          weight_factors: Sequence[float],
                          structure: Optional[ModelStructure],
                          partial: bool
                          ) -> Tuple[List[PartialAggregate],
                                     List[Tuple[int, float]]]:
        batches, order = self._prepare_batches(clients, jobs)
        fold_batches = {
            slot: _WireFoldBatch(weights_table=batch.weights_table,
                                 groups=batch.groups, factors=[],
                                 partial=partial, structure=structure,
                                 fusion=batch.fusion,
                                 straggle_s=batch.straggle_s)
            for slot, batch in batches.items()}
        # Per-slot factor rows line up with the slot's groups because
        # both follow the submission order of ``order``.
        for index, positions in order:
            fold_batches[self._placement[index]].factors.append(
                [float(weight_factors[position]) for position in positions])
        if self._attempt_dropped:
            # Graceful degradation re-weights over the survivors: the
            # dropped jobs' factors are gone, so the remaining ones are
            # re-normalized to sum to 1 before the in-slot folds run.
            included = sum(factor for batch in fold_batches.values()
                           for row in batch.factors for factor in row)
            if included > 0:
                for batch in fold_batches.values():
                    batch.factors = [[factor / included for factor in row]
                                     for row in batch.factors]
        replies = self._exchange(fold_batches, KIND_FOLD,
                                 "running a fold batch")
        partials: List[PartialAggregate] = []
        outcomes: Dict[int, Tuple] = {}
        for slot in sorted(replies):
            results, aggregate = replies[slot]
            if aggregate is not None:
                partials.append(aggregate)
            for outcome in results:
                outcomes[outcome[0]] = outcome
        # Residency first, for *every* outcome (see _run_jobs_attempt).
        for index, _ in order:
            if outcomes[index][1] == "error":
                self._resident.pop(index, None)
            else:
                self._resident[index] = clients[index].spec_version
        summaries: List[Optional[Tuple[int, float]]] = [None] * len(jobs)
        for index, positions in order:
            outcome = outcomes[index]
            if outcome[1] == "error":
                raise outcome[2]
            _, _, rng_state, group_summaries = outcome
            # Only the RNG state is mirrored back: the trained weights
            # stay shard-side (shipping them home would defeat the
            # upstream-byte win) and every training starts from the
            # dispatched snapshot anyway, so the parent-side replica's
            # weights are never consulted.
            clients[index].rng.bit_generator.state = rng_state
            for position, summary in zip(positions, group_summaries):
                summaries[position] = summary
        return partials, summaries  # type: ignore[return-value]

    def run_virtual_fold(self, template: Any,
                         weights: Dict[str, np.ndarray],
                         structure: Optional[ModelStructure] = None,
                         return_updates: bool = False
                         ) -> Tuple[List[Any], np.ndarray, int]:
        if template.num_clients <= 0:
            return [], np.zeros(NUM_LEVELS), 0
        return self._with_failover(
            lambda: self._run_virtual_attempt(template, weights, structure,
                                              return_updates))

    def _run_virtual_attempt(self, template: Any,
                             weights: Dict[str, np.ndarray],
                             structure: Optional[ModelStructure],
                             return_updates: bool
                             ) -> Tuple[List[Any], np.ndarray, int]:
        # Degrade never drops virtual clients: the fold is partition-
        # independent, so the fleet simply re-partitions over whatever
        # slots survive — bit-identical either way.
        active = self._eligible_slots()
        if not active:
            raise self._slot_error(
                next(iter(sorted(self._dead_slots
                                 | self._degraded_slots)), 0),
                "partitioning a virtual fleet (every slot is dead)")
        # Contiguous id ranges keep the dispatch O(shards): each slot
        # receives a (lo, hi) recipe, never a client list.
        base, extra = divmod(template.num_clients, len(active))
        batches: Dict[int, _WireVirtualBatch] = {}
        lo = 0
        for position, slot in enumerate(active):
            span = base + (1 if position < extra else 0)
            if span == 0:
                continue
            self._prepare_slot(slot)
            batches[slot] = _WireVirtualBatch(
                weights_table=[weights], template=template,
                lo=lo, hi=lo + span, factor=template.uniform_factor,
                loss_scale=template.uniform_factor,
                return_updates=return_updates)
            lo += span
        replies = self._exchange(batches, KIND_VFOLD,
                                 "running a virtual fold")
        payloads: List[Any] = []
        loss_levels = np.zeros(NUM_LEVELS)
        count = 0
        for slot in sorted(replies):
            tag, payload, slot_levels, slot_count = replies[slot]
            loss_levels = loss_levels + slot_levels
            count += slot_count
            if tag == "updates":
                payloads.extend(payload)
            elif payload is not None:
                payloads.append(payload)
        return payloads, loss_levels, count

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        # Under ``rebalance`` a dead slot retries the whole map on the
        # repaired topology, so ``fn`` should be idempotent (the
        # training path always is — see :meth:`run_jobs`).
        return self._with_failover(
            lambda: self._map_ordered_attempt(fn, items))

    def _map_ordered_attempt(self, fn: Callable[[Any], Any],
                             items: List[Any]) -> List[Any]:
        active = self._eligible_slots()
        if not active:
            raise self._slot_error(
                next(iter(sorted(self._dead_slots
                                 | self._degraded_slots)), 0),
                "partitioning map_ordered (every slot is dead)")
        chunks: Dict[int, List[Tuple[int, Any]]] = {}
        for position, item in enumerate(items):
            chunks.setdefault(active[position % len(active)], []).append(
                (position, item))
        slots = sorted(chunks)
        for slot in slots:
            self._prepare_slot(slot)
        # Encode every message before sending any: an encoding failure
        # on a later chunk must not leave earlier workers with undrained
        # replies (that would desynchronize the request/reply protocol).
        frames = {slot: wire_codec.encode_message(
                      (KIND_MAP, (fn, chunks[slot])),
                      compression=self._slot_compression(slot))
                  for slot in slots}
        dispatched: List[int] = []
        for slot in slots:
            self._dispatch(slot, frames[slot], "dispatching map_ordered",
                           pending=dispatched)
            dispatched.append(slot)
        results: List[Any] = [None] * len(items)
        error: Optional[BaseException] = None
        for slot_position, slot in enumerate(slots):
            kind, payload = self._collect_reply(
                slot, "running map_ordered",
                pending=slots[slot_position + 1:])
            if kind == KIND_ERROR:
                error = error or payload
                continue
            for position, result in payload:
                results[position] = result
        if error is not None:
            raise error
        return results

    def invalidate_client(self, index: Optional[int] = None) -> None:
        """Force a spec re-ship before the client's next training.

        Identity mutations that replace a client's spec (dataset, device,
        config, …) are detected automatically via the spec version; this
        hook covers everything the version cannot see — in-place mutation
        of a dataset's arrays, whole-fleet swaps, backend adoption.
        """
        if index is None:
            self._resident.clear()
        else:
            self._resident.pop(index, None)

    def dispatch_payload_bytes(self, clients: Sequence[FLClient],
                               jobs: Sequence[TrainingJob]) -> int:
        """Wire bytes :meth:`run_jobs` would dispatch for ``jobs`` now.

        Encodes through the real codec path (delta states included, but
        never committed), so the number matches what the next batch
        actually puts on the wire.  Under a shared-memory arena the
        frames carry descriptors instead of array bytes, and those
        descriptor bytes are what is reported — the staged (never
        published) segments are abandoned before returning.
        """
        batches, _ = self._build_payloads(clients, jobs, commit=False)
        delta_cache: Dict = {}
        try:
            return sum(self._encode_run(slot, batch,
                                        delta_cache=delta_cache).total_bytes
                       for slot, batch in batches.items())
        finally:
            if self._arena is not None:
                self._arena.abandon()

    def close(self) -> None:
        """Stop every slot; the backend re-creates them lazily if reused.

        Idempotent, safe after a worker/shard death, safe when invoked
        concurrently from several threads (serialized by a lock) and
        safe during interpreter shutdown: teardown failures are
        swallowed, the placement/residency/failure bookkeeping is
        always reset — a reused backend starts from the full topology,
        dead external shards included (they may have been restarted).
        """
        with self._close_lock:
            self._close_epoch += 1
            try:
                self._teardown()
            except Exception as exc:
                _note_swallowed("tearing down the fleet", exc)
            self._placement.clear()
            self._resident.clear()
            self._dead_slots.clear()
            self._slot_failures.clear()
            self._degraded_slots.clear()
            self._attempt_dropped = []
            self._slot_strikes.clear()
            self._reset_tx_states()
            self._next_slot = 0


class PersistentProcessBackend(_ResidentFleetBackend):
    """Stateful worker pool: clients are built once and stay resident.

    Every client index is pinned to one worker (sticky placement, round-
    robin on first appearance).  The first batch that touches a client
    ships its :class:`ClientSpec`; afterwards the worker reuses its
    resident replica and the parent sends only

    * the starting-weights snapshot, **once per worker per batch**
      (jobs reference it by table index, so a shared global snapshot is
      never duplicated),
    * per-job masks and epoch overrides,
    * a per-client RNG digest (a few hundred bytes).

    Per-cycle dispatch is therefore O(weights + masks), independent of
    dataset size.  The reply path matches the process backend: updates
    plus the post-training RNG digest, which the parent mirrors into its
    own client objects — so the fleet in the parent process is always
    current and migrating to another backend via
    :meth:`FederatedSimulation.set_backend` is lossless.
    """

    name = "persistent"

    def __init__(self, max_workers: Optional[int] = None,
                 on_failure: str = "abort",
                 wire_compression: str = "none",
                 delta_shipping: bool = True,
                 weight_arena: str = "off",
                 fusion: str = "off",
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        super().__init__(on_failure=on_failure,
                         wire_compression=wire_compression,
                         delta_shipping=delta_shipping,
                         fusion=fusion,
                         retry_policy=retry_policy)
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if weight_arena not in WEIGHT_ARENA_MODES:
            raise ValueError(
                f"unknown weight arena mode {weight_arena!r}; "
                f"available: {WEIGHT_ARENA_MODES}")
        self.max_workers = max_workers
        self.weight_arena = weight_arena
        if weight_arena == "shm":
            self._arena = WeightArenaWriter()
        self._ctx = multiprocessing.get_context()
        self._workers: Dict[int, _PersistentWorker] = {}

    @property
    def num_slots(self) -> int:
        """Number of worker slots (workers spawn lazily per slot)."""
        return self.max_workers or os.cpu_count() or 1

    def _worker(self, slot: int) -> _PersistentWorker:
        worker = self._workers.get(slot)
        if worker is None:
            worker = _PersistentWorker(self._ctx, self.wire_compression)
            self._workers[slot] = worker
        return worker

    def _slot_send(self, slot: int, frame: "wire_codec.EncodedFrame"
                   ) -> None:
        self._worker(slot).send_frame(frame)

    def _slot_recv(self, slot: int) -> Tuple[str, Any]:
        # The pipe hands back immutable ``bytes``; decode from a
        # writable copy so the zero-copy array views in the reply are
        # writable, matching the socket transport (which receives into
        # a bytearray).  The raw blob length feeds the upstream-byte
        # accounting before decoding discards it.
        blob = self._workers[slot].conn.recv_bytes()
        self.last_reply_bytes += len(blob)
        return wire_codec.decode_message(memoryview(bytearray(blob)))

    def _slot_error(self, slot: int, context: str) -> RuntimeError:
        return RuntimeError(
            f"persistent worker {slot} died while {context} "
            f"(pool has been shut down)")

    def _discard_slot_transport(self, slot: int) -> None:
        worker = self._workers.pop(slot, None)
        if worker is not None:
            worker.stop()
        # A fresh pipe worker starts with no residents and no delta
        # base, so every client placed on this slot must ship its spec
        # again and the next weights table must be a full snapshot.
        state = self._tx_states.get(slot)
        if state is not None:
            state.reset()
        for index, placed in self._placement.items():
            if placed == slot:
                self._resident.pop(index, None)

    def _drain_slot(self, slot: int) -> None:
        worker = self._workers.get(slot)
        if worker is None:
            return
        try:
            if worker.conn.poll(self.DRAIN_TIMEOUT_S):
                # Consumed and discarded — no need to decode a reply
                # nobody will look at.
                worker.conn.recv_bytes()
            else:
                self._discard_slot_transport(slot)
        except Exception:
            self._discard_slot_transport(slot)

    def _failover(self, failure: _SlotFailed) -> bool:
        """Drain the survivors, replace the dead worker, retry.

        The surviving workers keep their pipes and residents — only
        their owed replies for the aborted batch are consumed and
        discarded.  A fresh worker respawns lazily at the dead slot and
        rebuilds its residents from the parent-side recovery snapshots
        (spec + RNG digest) on the retry.  Pipe workers are always
        respawnable, so a slot is never declared dead — the attempt cap
        in :meth:`_with_failover` stops a crash loop.
        """
        self._drain_pending(failure.pending)
        self._discard_slot_transport(failure.slot)
        return True

    def _teardown(self) -> None:
        workers = list(self._workers.values())
        self._workers.clear()
        for worker in workers:
            worker.stop()
        if self._arena is not None:
            # After the workers are gone nothing can still reference a
            # generation — unlink them all.  The writer stays reusable,
            # so a re-opened backend keeps its arena.
            self._arena.close()


# --------------------------------------------------------------------- #
# socket-sharded backend
# --------------------------------------------------------------------- #

#: Auto-spawned localhost shard processes still alive; an atexit hook
#: kills leftovers so an unclosed backend cannot orphan interpreters.
_SPAWNED_SHARD_PROCS: set = set()


def _kill_spawned_shards() -> None:  # pragma: no cover - interpreter exit
    for proc in list(_SPAWNED_SHARD_PROCS):
        try:
            if proc.poll() is None:
                proc.kill()
        except Exception:  # lint: allow[swallow] - atexit, stderr gone
            pass


atexit.register(_kill_spawned_shards)


def _reap_shard_process(proc, timeout: float = 5.0) -> None:
    """Wait for an auto-spawned shard to exit, killing it if it must."""
    try:
        proc.wait(timeout=timeout)
    except Exception:
        try:
            proc.kill()
            proc.wait(timeout=1.0)
        except Exception:  # lint: allow[swallow] - best-effort reap
            pass
    _SPAWNED_SHARD_PROCS.discard(proc)
    try:
        if proc.stdout is not None:
            proc.stdout.close()
    except Exception:  # lint: allow[swallow] - best-effort reap
        pass


#: Announce line a shard worker prints once it is listening.
SHARD_ANNOUNCE_PREFIX = "SHARD_LISTENING"


def _read_shard_announce(proc, timeout: float) -> Tuple[str, int]:
    """Read ``SHARD_LISTENING host port`` from a spawned shard's stdout.

    Reads the raw fd directly (``os.read`` after ``select``) instead of
    the buffered stream: mixing ``select`` with ``readline`` would lose
    the announce whenever it arrives in the same pipe chunk as earlier
    output (an import-time warning, a sitecustomize print) — the chunk
    lands in the stream's buffer, the fd never polls readable again, and
    the spawn would time out despite a live shard.
    """
    deadline = time.monotonic() + timeout  # lint: allow[determinism] - spawn timeout, not math
    fd = proc.stdout.fileno()
    pending = ""
    while True:
        while "\n" in pending:
            line, _, pending = pending.partition("\n")
            if line.startswith(SHARD_ANNOUNCE_PREFIX):
                _, host, port = line.split()
                # Keep draining the pipe in the background: a shard that
                # prints during training (verbose factories, warnings)
                # must not fill the 64 KiB pipe buffer and deadlock
                # mid-batch.
                threading.Thread(target=_drain_stream,
                                 args=(proc.stdout,),
                                 daemon=True).start()
                return host, int(port)
        remaining = deadline - time.monotonic()  # lint: allow[determinism] - spawn timeout, not math
        if remaining <= 0:
            raise ShardError(
                f"timed out after {timeout:.0f}s waiting for a local shard "
                f"worker to announce its address")
        readable, _, _ = select.select([fd], [], [], remaining)
        if not readable:
            continue
        chunk = os.read(fd, 65536)
        if not chunk:
            raise ShardError(
                f"local shard worker exited before announcing its address "
                f"(exit code {proc.poll()})")
        pending += chunk.decode("utf-8", errors="replace")


def _drain_stream(stream) -> None:
    try:
        for _ in stream:
            pass
    except Exception:  # lint: allow[swallow] - dead shard's stdout
        pass


class ShardedSocketBackend(_ResidentFleetBackend):
    """Partition the fleet across N addressable shard servers.

    The persistent pipe protocol lifted onto sockets: each shard is a
    ``repro shard-worker`` process hosting resident clients behind the
    framed transport of :mod:`repro.fl.transport`.  Placement, residency
    and dispatch semantics are identical to
    :class:`PersistentProcessBackend` — histories stay bit-identical to
    a serial run — but shards are *addressable*, so the fleet can span
    machines.

    Two topologies:

    * ``shards=["host:port", ...]`` (or a single comma-separated string)
      connects to externally started shard servers.  ``close()`` sends a
      polite ``bye`` and disconnects; the servers keep running and a
      reused backend reconnects (re-shipping specs — a fresh connection
      never trusts leftover residents).  External shards are
      *multi-tenant*: several backends (even in different processes)
      may share one fleet concurrently, each isolated behind its own
      session token with a private resident fleet and delta-decoder
      state on every shard — histories stay bit-identical to running
      alone (see :class:`~repro.fl.transport.ShardServer`).
    * ``shards=None`` auto-spawns ``max_workers`` (default 2) localhost
      shard workers via the CLI entrypoint.  The children inherit the
      parent's ``sys.path`` so specs unpickle identically; ``close()``
      shuts them down and reaps the processes, and an ``atexit`` hook
      kills any leftovers.

    Failure semantics (see also README § Failure semantics):

    * ``on_failure="abort"`` (default) — a shard dying mid-cycle aborts
      the whole batch with a :class:`ShardError` naming the shard (slot
      and address) and closes the backend, leaving no orphan processes
      or half-open sockets.
    * ``on_failure="rebalance"`` — the dead slot is repaired (auto-spawn
      topologies respawn a localhost shard in place; an external shard
      is given one reconnect attempt and then declared dead, its
      clients rebalancing onto the survivors) and the aborted batch is
      retried bit-identically.  Surviving shards keep their connections
      and resident fleets (their owed replies are drained, not reset);
      the session handshake lets even an abruptly dropped connection
      resume its residents on reconnect.
    * ``on_failure="degrade"`` — the cycle finishes without the dead
      shard: its clients are dropped (recorded in the run history via
      :meth:`consume_dropped_clients`), aggregation re-weights over
      the survivors, and the next cycle probes the shard again.

    ``heartbeat_interval`` (seconds, ``None`` = off) additionally probes
    every connected shard with a ``ping`` between batches, so a silently
    dead shard is caught at a cycle boundary instead of mid-dispatch.
    """

    name = "sharded"

    #: Localhost shards spawned when neither addresses nor a worker
    #: count are given (interpreter spawns are not free; stay modest).
    DEFAULT_LOCAL_SHARDS = 2

    def __init__(self, shards: Union[None, int, str,
                                     Sequence[Any]] = None,
                 max_workers: Optional[int] = None,
                 connect_timeout: float = 30.0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
                 on_failure: str = "abort",
                 heartbeat_interval: Optional[float] = None,
                 heartbeat_timeout: float = 5.0,
                 wire_compression: str = "none",
                 delta_shipping: bool = True,
                 fusion: str = "off",
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        super().__init__(on_failure=on_failure,
                         wire_compression=wire_compression,
                         delta_shipping=delta_shipping,
                         fusion=fusion,
                         retry_policy=retry_policy)
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if heartbeat_interval is not None and heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be non-negative")
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if isinstance(shards, str):
            shards = [part.strip() for part in shards.split(",")
                      if part.strip()]
        self._addresses: Optional[List[Tuple[str, int]]]
        if shards is None:
            self._addresses = None
            self._num_shards = max_workers or self.DEFAULT_LOCAL_SHARDS
        elif isinstance(shards, int):
            if shards <= 0:
                raise ValueError("shard count must be positive")
            if max_workers is not None:
                raise ValueError("pass either shards or max_workers, "
                                 "not both")
            self._addresses = None
            self._num_shards = shards
        else:
            addresses = [parse_address(shard) for shard in shards]
            if not addresses:
                raise ValueError("need at least one shard address")
            if max_workers is not None:
                raise ValueError(
                    f"max_workers={max_workers!r} cannot be combined with "
                    f"explicit shard addresses (one shard per address)")
            self._addresses = addresses
            self._num_shards = len(addresses)
        if not 0 < max_frame_bytes <= 0xFFFFFFFF:
            raise ValueError("max_frame_bytes must be positive and within "
                             "the 4-byte frame header's 4 GiB limit")
        self.connect_timeout = connect_timeout
        self.max_frame_bytes = max_frame_bytes
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        #: Session token of the hello handshake: shards keep their
        #: resident fleet for a reconnecting parent presenting the same
        #: token, which is what makes failover resets cheap for the
        #: surviving shards.  Unique per backend instance, so two fleets
        #: can never resume each other's residents.
        self._session = (
            f"{os.getpid():x}-"
            f"{os.urandom(12).hex()}")  # lint: allow[determinism] - identity token, not math
        self._last_probe: Optional[float] = None
        self._channels: Dict[int, Any] = {}
        self._procs: Dict[int, Any] = {}
        self._live_addresses: Dict[int, Tuple[str, int]] = {}

    @property
    def num_slots(self) -> int:
        return self._num_shards

    @property
    def autospawn(self) -> bool:
        """Whether this backend spawns its own localhost shard workers."""
        return self._addresses is None

    @property
    def EXTERNAL_SHARD_STRIKES(self) -> int:
        """Transport failures an externally addressed shard is allowed
        before its slot is declared dead: the failure that kills the
        live connection plus the policy's reconnect attempts (the
        historical constant 2 = one reconnect)."""
        return self.retry_policy.reconnect_attempts + 1

    def shard_address(self, slot: int) -> Optional[Tuple[str, int]]:
        """The ``(host, port)`` a slot is (or would be) served from."""
        address = self._live_addresses.get(slot)
        if address is None and self._addresses is not None:
            address = self._addresses[slot]
        return address

    # ------------------------------------------------------------------ #
    def _spawn_local_shard(self, slot: int) -> Tuple[str, int]:
        env = dict(os.environ)
        # The child must unpickle whatever the parent can import (specs,
        # model factories, map functions): hand it the parent's sys.path.
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "shard-worker",
             "--host", "127.0.0.1", "--port", "0",
             "--max-frame-bytes", str(self.max_frame_bytes)],
            stdout=subprocess.PIPE, env=env, text=True)
        self._procs[slot] = proc
        _SPAWNED_SHARD_PROCS.add(proc)
        try:
            return _read_shard_announce(proc, self.connect_timeout)
        except Exception:
            self._procs.pop(slot, None)
            _reap_shard_process(proc, timeout=0.0)
            raise

    def _channel(self, slot: int):
        channel = self._channels.get(slot)
        if channel is None:
            if self._addresses is not None:
                address = self._addresses[slot]
            else:
                # Reconnect to the slot's live auto-spawned shard if one
                # survived a transport reset (failover closes every
                # channel); only spawn a fresh interpreter when the
                # process itself is gone.
                proc = self._procs.get(slot)
                address = self._live_addresses.get(slot)
                if proc is None or proc.poll() is not None or address is None:
                    if proc is not None:
                        self._procs.pop(slot, None)
                        _reap_shard_process(proc, timeout=0.0)
                    address = self._spawn_local_shard(slot)
            channel = connect_to_shard(
                address, timeout=self.connect_timeout,
                max_frame_bytes=self.max_frame_bytes,
                session=self._session,
                codec={"version": wire_codec.CODEC_VERSION,
                       "compression": self.wire_compression})
            if channel.codec_compression is None:
                # This backend only speaks codec frames; a peer that
                # passed the protocol-version check but did not
                # acknowledge the codec would misparse every batch —
                # fail the handshake loudly instead.
                channel.close()
                raise ProtocolError(
                    f"shard {format_address(parse_address(address))} "
                    f"did not acknowledge the wire codec in its "
                    f"hello-ack")
            if self._chaos is not None:
                # Chaos scenarios corrupt this slot's outgoing codec
                # frames; installing per connection means a failover's
                # fresh channel is automatically re-armed.
                channel.fault_injector = self._chaos.frame_injector(slot)
            self._channels[slot] = channel
            self._live_addresses[slot] = parse_address(address)
            # A connection that did not resume our session must never
            # trust residency: the shard serves a clean fleet, so every
            # client placed there gets its spec re-shipped and the next
            # weights table must be a full snapshot (the shard's delta
            # decoder started clean too).  (A resumed connection keeps
            # the shard-side residents *and* delta base — that is the
            # point of the session handshake.)
            if not channel.resumed:
                state = self._tx_states.get(slot)
                if state is not None:
                    state.reset()
                for index, placed in self._placement.items():
                    if placed == slot:
                        self._resident.pop(index, None)
        return channel

    def _prepare_slot(self, slot: int) -> bool:
        if slot in self._channels:
            return False
        try:
            channel = self._channel(slot)
        except ShardError:
            # Spawn/announce failures mean this host cannot start a
            # worker at all — not recoverable by rebalancing.
            self.close()
            raise
        except _TRANSPORT_FAILURES as exc:
            raise _SlotFailed(slot, "connecting to the shard", exc) from exc
        return not channel.resumed

    def _discard_slot_transport(self, slot: int) -> None:
        channel = self._channels.pop(slot, None)
        if channel is not None:
            channel.close()
        # The next connection starts from a full weights snapshot: even
        # a resumed session may have advanced its delta base past what
        # we committed (a decoded batch whose reply we never saw).
        state = self._tx_states.get(slot)
        if state is not None:
            state.reset()
        # Residency is purged when the slot reconnects without resuming
        # our session (see _channel); a resumed reconnect keeps it.

    def _drain_slot(self, slot: int) -> None:
        channel = self._channels.get(slot)
        if channel is None:
            return
        try:
            channel.settimeout(self.DRAIN_TIMEOUT_S)
            # Consumed and discarded without decoding (the reply may be
            # a codec frame; nobody will look at it either way).
            channel.recv_bytes()
            channel.settimeout(None)
        except Exception:
            self._discard_slot_transport(slot)

    def _failover(self, failure: _SlotFailed) -> bool:
        """Drain the survivors, discard the dead slot, retry.

        Surviving shards keep their connections and resident fleets —
        only their owed replies for the aborted batch are consumed and
        discarded (reconnecting instead could time out against a shard
        that is merely still training and cascade the failure onto
        healthy hosts).  The dead slot's channel and process go away:
        auto-spawned slots respawn in place on the next batch, while an
        externally addressed shard gets :data:`EXTERNAL_SHARD_STRIKES`
        chances (the failure itself, then one reconnect attempt) before
        its slot is declared dead and its clients rebalance onto the
        survivors.  ``False`` means no capacity survives and the caller
        must abort.
        """
        slot = failure.slot
        self._drain_pending(failure.pending)
        self._discard_slot_transport(slot)
        self._live_addresses.pop(slot, None)
        proc = self._procs.pop(slot, None)
        if proc is not None:
            _reap_shard_process(proc, timeout=0.0)
        self._slot_failures[slot] = self._slot_failures.get(slot, 0) + 1
        if (not self.autospawn
                and self._slot_failures[slot] >= self.EXTERNAL_SHARD_STRIKES):
            self._dead_slots.add(slot)
            for index, placed in list(self._placement.items()):
                if placed == slot:
                    self._placement.pop(index)
                    self._resident.pop(index, None)
        return bool(self._active_slots())

    def _degrade(self, failure: _SlotFailed) -> bool:
        # The slot sits this cycle out (base class bookkeeping); its
        # process and address handle are released so the next cycle's
        # probe respawns/reconnects instead of talking to a corpse.
        self._live_addresses.pop(failure.slot, None)
        proc = self._procs.pop(failure.slot, None)
        if proc is not None:
            _reap_shard_process(proc, timeout=0.0)
        return super()._degrade(failure)

    # ------------------------------------------------------------------ #
    # health checking
    # ------------------------------------------------------------------ #
    def check_health(self, timeout: Optional[float] = None) -> List[int]:
        """Probe every connected shard with a ping; return dead slots.

        Each probe is bounded by ``timeout`` (default: the backend's
        ``heartbeat_timeout``), so a hung shard cannot block the fleet.
        The shard's event loop answers pings inline — never from the
        thread executing batches — so a probe stays meaningful (and
        fast) even while *another* parent's session is mid-batch on a
        shared shard; a timeout here really means the shard process is
        gone, not merely busy.  A slot that fails its probe has its
        channel closed (a timed-out pong would desynchronize the
        stream) and is reported; what to *do* about it is the caller's
        policy — the pre-batch heartbeat applies ``on_failure``, a
        monitoring caller may just observe.  Only call between batches:
        probing a slot with an in-flight request of *this* session
        would interleave replies.
        """
        probe_timeout = self.heartbeat_timeout if timeout is None else timeout
        dead: List[int] = []
        for slot in sorted(self._channels):
            channel = self._channels[slot]
            try:
                channel.settimeout(probe_timeout)
                channel.send_bytes(_PING_BLOB)
                kind, _ = wire_codec.decode_message(channel.recv_bytes())
                if kind != KIND_PONG:
                    raise ProtocolError(
                        f"shard answered a ping with {kind!r}")
                channel.settimeout(None)
            except _TRANSPORT_FAILURES:
                self._channels.pop(slot, None)
                channel.close()
                state = self._tx_states.get(slot)
                if state is not None:
                    state.reset()
                dead.append(slot)
        return dead

    def _maybe_check_health(self) -> None:
        if self.heartbeat_interval is None or not self._channels:
            return
        now = time.monotonic()  # lint: allow[determinism] - heartbeat pacing, not math
        if (self._last_probe is not None
                and now - self._last_probe < self.heartbeat_interval):
            return
        self._last_probe = now
        dead = self.check_health()
        if dead:
            # Surface one failure; the shared recovery path (abort or
            # rebalance, attempt cap included) judges it.  Any further
            # dead shard is caught when its closed channel reconnects
            # on the next attempt, or by the next probe.
            raise _SlotFailed(dead[0], "answering a health probe")

    def _slot_compression(self, slot: int) -> str:
        channel = self._channels.get(slot)
        if channel is not None and channel.codec_compression is not None:
            return channel.codec_compression
        return self.wire_compression

    def _slot_send(self, slot: int, frame: "wire_codec.EncodedFrame"
                   ) -> None:
        self._channel(slot).send_frame(frame)

    def _slot_recv(self, slot: int) -> Tuple[str, Any]:
        blob = self._channels[slot].recv_bytes()
        self.last_reply_bytes += len(blob)
        return wire_codec.decode_message(blob)

    def _slot_error(self, slot: int, context: str) -> ShardError:
        address = self.shard_address(slot)
        where = (format_address(address) if address is not None
                 else "unknown address")
        return ShardError(
            f"shard {slot} ({where}) failed while {context}; the batch "
            f"was aborted and the backend has been shut down",
            slot=slot, address=address)

    def _teardown(self) -> None:
        channels = dict(self._channels)
        self._channels.clear()
        procs = dict(self._procs)
        self._procs.clear()
        self._live_addresses.clear()
        self._last_probe = None
        for slot, channel in channels.items():
            # Auto-spawned shards are told to exit; external shards only
            # to hang up (they keep serving other runs / reconnects).
            blob = _SHUTDOWN_BLOB if slot in procs else _BYE_BLOB
            try:
                channel.send_bytes(blob)
            except Exception as exc:
                _note_swallowed("hanging up on a shard", exc)
            channel.close()
        for slot, proc in procs.items():
            if slot not in channels:
                # Spawned but never connected: nobody sent it a
                # shutdown, so don't wait politely.
                _reap_shard_process(proc, timeout=0.0)
            else:
                _reap_shard_process(proc)


#: Registry of backend constructors keyed by CLI/config name.
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    PersistentProcessBackend.name: PersistentProcessBackend,
    ShardedSocketBackend.name: ShardedSocketBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`make_backend` (and the CLI ``--backend``)."""
    return tuple(sorted(_BACKENDS))


def make_backend(spec: Union[None, str, ExecutionBackend] = None,
                 max_workers: Optional[int] = None,
                 shards: Union[None, int, str, Sequence[Any]] = None,
                 on_shard_failure: Optional[str] = None,
                 heartbeat_interval: Optional[float] = None,
                 wire_compression: Optional[str] = None,
                 delta_shipping: Optional[bool] = None,
                 aggregation: Optional[str] = None,
                 weight_arena: Optional[str] = None,
                 fusion: Optional[str] = None,
                 retry_policy: Union[None, RetryPolicy,
                                     Dict[str, Any]] = None,
                 connect_timeout: Optional[float] = None
                 ) -> ExecutionBackend:
    """Resolve a backend specification into an :class:`ExecutionBackend`.

    Parameters
    ----------
    spec:
        ``None`` (serial), a backend name (``"serial"``, ``"thread"``,
        ``"process"``, ``"persistent"``, ``"sharded"``) or an already-
        constructed backend instance (passed through unchanged).
    max_workers:
        Worker count for the pooled backends (``None`` = library default);
        for ``"sharded"`` without addresses it is the number of auto-
        spawned localhost shards.  Must be ``None`` when ``spec`` is an
        already-constructed instance (an instance's pool size cannot be
        changed) *and* when ``spec`` names the serial backend (which has
        no workers) — silently ignoring the argument would hide a
        configuration error either way.
    shards:
        Shard topology, only meaningful with ``spec="sharded"``: a list
        of ``"host:port"`` addresses (or one comma-separated string) of
        externally started ``repro shard-worker`` servers, or an integer
        count of localhost shards to auto-spawn.
    on_shard_failure:
        Failure policy of the worker-resident backends
        (``"sharded"``/``"persistent"``): ``"abort"`` (default) fails
        the batch with a slot-identified error and closes the backend;
        ``"rebalance"`` repairs the topology — respawning a localhost
        slot or moving a dead external shard's clients onto survivors —
        and retries the batch bit-identically; ``"degrade"`` finishes
        the cycle without the dead slot, dropping its clients (recorded
        in the run history) and re-weighting aggregation over the
        survivors.
    heartbeat_interval:
        Seconds between pre-batch ``ping`` probes of every connected
        shard (``"sharded"`` only; ``None`` = no probing).  A probe
        failure is handled under ``on_shard_failure``.
    wire_compression:
        Per-segment compression of the worker-resident backends' wire
        codec (``"none"``, default, or ``"zlib"``) — see
        :mod:`repro.fl.codec`.
    delta_shipping:
        Whether the worker-resident backends delta-encode weight tables
        against each slot's acknowledged base (default on; bit-exact
        either way).
    aggregation:
        Aggregation topology advertised to strategies (``"flat"``,
        default, or ``"hierarchical"``).  With ``"hierarchical"`` each
        slot folds its residents' updates locally and ships one partial
        aggregate per batch, making upstream bytes O(weights × slots)
        instead of O(weights × clients); histories are bit-identical
        either way.  Valid for every backend name (the serial fold is
        the reference implementation); must be ``None`` when ``spec``
        is an already-constructed instance.
    weight_arena:
        Weight dispatch plane of the persistent backend (``"off"``,
        default, or ``"shm"``).  With ``"shm"`` the parent publishes
        each cycle's weight tables into a shared-memory arena and the
        pipes carry only descriptors — see :mod:`repro.fl.arena`.
        Single-host by construction, so only ``spec="persistent"``
        accepts it.
    fusion:
        In-worker training engine of the worker-resident backends
        (``"off"``, default, or ``"stacked"``).  With ``"stacked"``
        clients sharing a model topology and batch schedule train as
        one batched-GEMM pass — bit-identical to serial; see
        :mod:`repro.fl.fusion`.
    retry_policy:
        Recovery knobs of the worker-resident backends — a
        :class:`RetryPolicy` or a plain dict for
        :meth:`RetryPolicy.from_spec` (attempt cap, exponential backoff
        with seeded jitter, drain timeout, reconnect attempts, circuit
        breaker).  ``None`` keeps the historical constants.
    connect_timeout:
        Seconds to wait for a shard connection/spawn (``"sharded"``
        only; default 30).  Must be positive.
    """
    if isinstance(spec, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                f"max_workers={max_workers!r} cannot be applied to an "
                f"already-constructed backend instance {spec!r}; construct "
                f"the backend with the desired worker count instead")
        if shards is not None:
            raise ValueError(
                f"shards={shards!r} cannot be applied to an already-"
                f"constructed backend instance {spec!r}")
        if on_shard_failure is not None or heartbeat_interval is not None:
            raise ValueError(
                f"on_shard_failure/heartbeat_interval cannot be applied "
                f"to an already-constructed backend instance {spec!r}; "
                f"construct the backend with the desired failure policy "
                f"instead")
        if wire_compression is not None or delta_shipping is not None:
            raise ValueError(
                f"wire_compression/delta_shipping cannot be applied to "
                f"an already-constructed backend instance {spec!r}; "
                f"construct the backend with the desired wire codec "
                f"instead")
        if aggregation is not None:
            raise ValueError(
                f"aggregation={aggregation!r} cannot be applied to an "
                f"already-constructed backend instance {spec!r}; set the "
                f"instance's aggregation attribute instead")
        if weight_arena is not None or fusion is not None:
            raise ValueError(
                f"weight_arena/fusion cannot be applied to an already-"
                f"constructed backend instance {spec!r}; construct the "
                f"backend with the desired execution plane instead")
        if retry_policy is not None or connect_timeout is not None:
            raise ValueError(
                f"retry_policy/connect_timeout cannot be applied to an "
                f"already-constructed backend instance {spec!r}; "
                f"construct the backend with the desired recovery knobs "
                f"instead")
        return spec
    if isinstance(retry_policy, dict):
        retry_policy = RetryPolicy.from_spec(retry_policy)
    if aggregation is not None and aggregation not in AGGREGATION_MODES:
        raise ValueError(
            f"unknown aggregation mode {aggregation!r}; "
            f"available: {AGGREGATION_MODES}")
    if shards is not None and spec != ShardedSocketBackend.name:
        raise ValueError(
            f"shards only applies to the 'sharded' backend, not {spec!r}")
    if on_shard_failure is not None and spec not in (
            ShardedSocketBackend.name, PersistentProcessBackend.name):
        raise ValueError(
            f"on_shard_failure only applies to the worker-resident "
            f"backends ('sharded', 'persistent'), not {spec!r}")
    if heartbeat_interval is not None and spec != ShardedSocketBackend.name:
        raise ValueError(
            f"heartbeat_interval only applies to the 'sharded' backend, "
            f"not {spec!r}")
    if (wire_compression is not None or delta_shipping is not None) and \
            spec not in (ShardedSocketBackend.name,
                         PersistentProcessBackend.name):
        raise ValueError(
            f"wire_compression/delta_shipping only apply to the worker-"
            f"resident backends ('sharded', 'persistent'), not {spec!r}")
    if weight_arena is not None and spec != PersistentProcessBackend.name:
        raise ValueError(
            f"weight_arena only applies to the 'persistent' backend "
            f"(shared-memory arenas are single-host), not {spec!r}")
    if fusion is not None and spec not in (ShardedSocketBackend.name,
                                           PersistentProcessBackend.name):
        raise ValueError(
            f"fusion only applies to the worker-resident backends "
            f"('sharded', 'persistent'), not {spec!r}")
    if retry_policy is not None and spec not in (
            ShardedSocketBackend.name, PersistentProcessBackend.name):
        raise ValueError(
            f"retry_policy only applies to the worker-resident backends "
            f"('sharded', 'persistent'), not {spec!r}")
    if connect_timeout is not None and spec != ShardedSocketBackend.name:
        raise ValueError(
            f"connect_timeout only applies to the 'sharded' backend, "
            f"not {spec!r}")
    if spec is None:
        if max_workers is not None:
            # Mirrors the instance rejection above: a defaulted (serial)
            # backend has no workers, and silently dropping the argument
            # used to hide e.g. a forgotten backend name.  An *explicit*
            # "serial" still tolerates max_workers so callers can sweep
            # one worker count across backend names.
            raise ValueError(
                f"max_workers={max_workers!r} has no effect on the "
                f"default serial backend; pass a pooled backend name "
                f"('thread', 'process', 'persistent', 'sharded') or drop "
                f"the argument")
        backend: ExecutionBackend = SerialBackend()
    elif isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {spec!r}; "
                f"available: {available_backends()}") from None
        if factory is SerialBackend:
            backend = SerialBackend()
        elif factory is ShardedSocketBackend:
            backend = ShardedSocketBackend(
                shards=shards, max_workers=max_workers,
                connect_timeout=(connect_timeout
                                 if connect_timeout is not None else 30.0),
                on_failure=on_shard_failure or "abort",
                heartbeat_interval=heartbeat_interval,
                wire_compression=wire_compression or "none",
                delta_shipping=(delta_shipping
                                if delta_shipping is not None else True),
                fusion=fusion or "off",
                retry_policy=retry_policy)
        elif factory is PersistentProcessBackend:
            backend = PersistentProcessBackend(
                max_workers=max_workers,
                on_failure=on_shard_failure or "abort",
                wire_compression=wire_compression or "none",
                delta_shipping=(delta_shipping
                                if delta_shipping is not None else True),
                weight_arena=weight_arena or "off",
                fusion=fusion or "off",
                retry_policy=retry_policy)
        else:
            backend = factory(max_workers=max_workers)
    else:
        raise TypeError(f"cannot build an execution backend from {spec!r}")
    if aggregation is not None:
        backend.aggregation = aggregation
    return backend
