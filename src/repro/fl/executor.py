"""Execution backends: how a cycle's client trainings actually run.

The simulation engine hands every aggregation cycle's local trainings to an
:class:`ExecutionBackend` as a batch of :class:`TrainingJob` descriptions.
Three implementations are provided:

* :class:`SerialBackend` — the historical behavior: one client after the
  other in the calling thread.  Zero overhead, always available.
* :class:`ThreadPoolBackend` — clients train concurrently on worker
  threads.  NumPy releases the GIL inside its kernels, so multi-core
  machines overlap the matrix work of independent clients; single-core
  machines still overlap any latency the client hides (I/O, real device
  round-trips once those exist).
* :class:`ProcessPoolBackend` — clients are shipped to worker processes
  (requires every client component — datasets, model factories, loss
  factories — to be picklable).  Full CPU parallelism, highest dispatch
  cost.

Determinism
-----------
All three backends are *bit-identical* to each other under a fixed seed:

* every client owns its RNG and model replica, so trainings of distinct
  clients share no mutable state;
* jobs for the *same* client are chained sequentially in submission order
  (never interleaved), preserving the client's RNG consumption order;
* results are re-ordered to match the submitted job order before they are
  returned, regardless of completion order;
* the process backend ships the client's post-training RNG state and
  weights back to the parent so the in-process client objects advance
  exactly as if they had trained locally.

A worker that raises propagates its exception to the caller — the batch
fails loudly rather than silently dropping a client's update.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

import numpy as np

from ..nn.masking import ModelMask
from .client import ClientUpdate, FLClient

__all__ = [
    "TrainingJob",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "available_backends",
    "make_backend",
]


@dataclass
class TrainingJob:
    """One client-local training to execute within a batch.

    Attributes
    ----------
    index:
        Client index within the simulation's fleet.
    weights:
        The starting weights the client trains from (typically a snapshot
        of the global model; asynchronous strategies pass stale snapshots).
    mask:
        Optional neuron mask (soft-training / partial-model baselines).
    local_epochs:
        Optional override of the client's configured local epochs.
    base_cycle:
        Aggregation cycle the ``weights`` snapshot was taken at (staleness
        bookkeeping).
    """

    index: int
    weights: Dict[str, np.ndarray]
    mask: Optional[ModelMask] = None
    local_epochs: Optional[int] = None
    base_cycle: int = 0


def _train_jobs_inplace(client: FLClient,
                        jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
    """Run one client's jobs sequentially, mutating the client in place."""
    return [client.local_train(job.weights, mask=job.mask,
                               local_epochs=job.local_epochs,
                               base_cycle=job.base_cycle)
            for job in jobs]


def _train_jobs_in_subprocess(client: FLClient, jobs: Sequence[TrainingJob]
                              ) -> Tuple[List[ClientUpdate], dict]:
    """Worker entry point of the process backend.

    Returns the updates plus the client's post-training RNG state so the
    parent process can advance its own copy of the client identically.
    """
    updates = _train_jobs_inplace(client, jobs)
    return updates, client.rng.bit_generator.state


def _group_jobs(jobs: Sequence[TrainingJob]
                ) -> List[Tuple[int, List[int], List[TrainingJob]]]:
    """Group jobs by client index, preserving submission order.

    Returns ``(client_index, positions, client_jobs)`` triples where
    ``positions`` are the indices of the jobs in the original batch.  Jobs
    of the same client stay in submission order so its RNG consumption is
    identical to a serial run.
    """
    groups: Dict[int, Tuple[List[int], List[TrainingJob]]] = {}
    for position, job in enumerate(jobs):
        positions, client_jobs = groups.setdefault(job.index, ([], []))
        positions.append(position)
        client_jobs.append(job)
    return [(index, positions, client_jobs)
            for index, (positions, client_jobs) in groups.items()]


class ExecutionBackend:
    """Abstract batch executor for client-local trainings."""

    #: Identifier used by :func:`make_backend` and the CLI.
    name: str = "backend"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        """Execute a batch of jobs and return updates in job order."""
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        Generic escape hatch for parallelizable non-training work (fleet
        profiling, evaluation sweeps).  The default runs serially;
        concurrency-capable backends override it.
        """
        return [fn(item) for item in items]

    def close(self) -> None:
        """Release worker resources (no-op for the serial backend)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.__class__.__name__}(name={self.name!r})"


class SerialBackend(ExecutionBackend):
    """Train clients one after the other in the calling thread."""

    name = "serial"

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return [clients[job.index].local_train(
            job.weights, mask=job.mask, local_epochs=job.local_epochs,
            base_cycle=job.base_cycle) for job in jobs]


class _PoolBackend(ExecutionBackend):
    """Shared machinery of the thread- and process-pool backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._pool = None

    def _make_pool(self):
        raise NotImplementedError

    @property
    def pool(self):
        """The lazily created worker pool."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _submit_job_groups(self, clients: Sequence[FLClient],
                           jobs: Sequence[TrainingJob],
                           worker: Callable) -> List[ClientUpdate]:
        """Fan the per-client job groups out to the pool, reorder results."""
        groups = _group_jobs(jobs)
        futures: List[Tuple[Future, int, List[int]]] = [
            (self.pool.submit(worker, clients[index], client_jobs),
             index, positions)
            for index, positions, client_jobs in groups
        ]
        results: List[Optional[ClientUpdate]] = [None] * len(jobs)
        try:
            for future, index, positions in futures:
                updates = self._collect(clients[index], future)
                for position, update in zip(positions, updates):
                    results[position] = update
        except BaseException:
            for future, _, _ in futures:
                future.cancel()
            raise
        return results  # type: ignore[return-value]

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        raise NotImplementedError

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        return list(self.pool.map(fn, items))


class ThreadPoolBackend(_PoolBackend):
    """Train distinct clients concurrently on worker threads.

    Clients mutate their own model replica and RNG in place exactly as in
    a serial run, so no state reconciliation is needed; only *distinct*
    clients run concurrently.
    """

    name = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers,
                                  thread_name_prefix="fl-train")

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs, _train_jobs_inplace)

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        return future.result()


class ProcessPoolBackend(_PoolBackend):
    """Train clients in worker processes.

    The client object is pickled to the worker; the updates and the
    client's post-training RNG state are shipped back, and the parent-side
    client is synchronized (RNG state restored, model weights set to the
    last update's weights) so subsequent cycles are bit-identical to a
    serial run.  Requires picklable clients — in particular the model,
    loss and dataset factories must be module-level callables, not
    closures.
    """

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def run_jobs(self, clients: Sequence[FLClient],
                 jobs: Sequence[TrainingJob]) -> List[ClientUpdate]:
        return self._submit_job_groups(clients, jobs,
                                       _train_jobs_in_subprocess)

    def _collect(self, client: FLClient,
                 future: Future) -> List[ClientUpdate]:
        updates, rng_state = future.result()
        # Mirror the in-place mutations a serial run would have performed.
        client.rng.bit_generator.state = rng_state
        if updates:
            client.model.set_weights(updates[-1].weights)
            client.model.clear_neuron_masks()
        return updates


#: Registry of backend constructors keyed by CLI/config name.
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadPoolBackend.name: ThreadPoolBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`make_backend` (and the CLI ``--backend``)."""
    return tuple(sorted(_BACKENDS))


def make_backend(spec: Union[None, str, ExecutionBackend] = None,
                 max_workers: Optional[int] = None) -> ExecutionBackend:
    """Resolve a backend specification into an :class:`ExecutionBackend`.

    Parameters
    ----------
    spec:
        ``None`` (serial), a backend name (``"serial"``, ``"thread"``,
        ``"process"``) or an already-constructed backend instance (passed
        through unchanged).
    max_workers:
        Worker count for the pool backends (``None`` = library default).
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {spec!r}; "
                f"available: {available_backends()}") from None
        if factory is SerialBackend:
            return SerialBackend()
        return factory(max_workers=max_workers)
    raise TypeError(f"cannot build an execution backend from {spec!r}")
